//! Event-driven simulation engine with delta cycles and blocking /
//! non-blocking assignment regions.

use crate::elab::{Design, LStmt, LTarget, Process, ProcessId, SignalId, SignalKind, Trigger};
use crate::eval::{case_matches, eval, ValueReader};
use crate::logic::{Logic, Tri};
use std::fmt;
use std::sync::Arc;
use uvllm_verilog::ast::Edge;

/// Maximum process executions inside one [`Simulator::settle`] call
/// before the engine reports an oscillating (unstable) design.
pub const MAX_ACTIVATIONS: usize = 50_000;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Combinational feedback did not stabilise.
    Unstable {
        /// Process activations performed before giving up.
        activations: usize,
    },
    /// A signal name was not found in the design.
    UnknownSignal(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unstable { activations } => {
                write!(f, "design did not stabilise after {activations} activations")
            }
            SimError::UnknownSignal(name) => write!(f, "unknown signal '{name}'"),
        }
    }
}

impl std::error::Error for SimError {}

/// One resolved write: `value` goes into `[lsb, lsb+width)` of `word` of
/// `signal`.
#[derive(Debug, Clone)]
struct Write {
    signal: SignalId,
    word: u64,
    lsb: u32,
    value: Logic,
}

/// An event-driven four-state simulator over an elaborated [`Design`].
///
/// The harness drives it imperatively: [`Simulator::poke`] input values,
/// [`Simulator::settle`] to propagate, read back with
/// [`Simulator::peek`], and advance [`Simulator::set_time`] between
/// cycles. Clocked logic reacts to edges produced by pokes.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// Shared so the event loop can borrow process bodies while
    /// mutating state — no per-activation body clone.
    design: Arc<Design>,
    /// Current value per signal per word.
    words: Vec<Vec<Logic>>,
    /// Combinational processes sensitive to each signal.
    comb_sens: Vec<Vec<ProcessId>>,
    /// Edge-triggered processes: (process, signal, edge).
    seq_sens: Vec<Vec<(ProcessId, Option<Edge>)>>,
    time: u64,
    /// Set when the initial blocks have been run.
    initialised: bool,
}

struct StateView<'a> {
    design: &'a Design,
    words: &'a [Vec<Logic>],
}

impl ValueReader for StateView<'_> {
    fn read(&self, id: SignalId) -> Logic {
        self.words[id.0 as usize][0]
    }
    fn read_word(&self, id: SignalId, index: u64) -> Logic {
        self.words[id.0 as usize]
            .get(index as usize)
            .copied()
            .unwrap_or_else(|| Logic::xs(self.design.signal(id).width))
    }
    fn word_count(&self, id: SignalId) -> u64 {
        self.words[id.0 as usize].len() as u64
    }
    fn width(&self, id: SignalId) -> u32 {
        self.design.signal(id).width
    }
}

impl Simulator {
    /// Builds a simulator over `design`, runs `initial` blocks and
    /// settles the combinational network once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if the design oscillates at time 0.
    pub fn new(design: &Design) -> Result<Self, SimError> {
        Simulator::from_arc(Arc::new(design.clone()))
    }

    /// Builds a simulator over an already-shared design without
    /// re-cloning it — the cheap path for cached elaborations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if the design oscillates at time 0.
    pub fn from_arc(design: Arc<Design>) -> Result<Self, SimError> {
        let nsignals = design.signals().len();
        let mut words = Vec::with_capacity(nsignals);
        for info in design.signals() {
            words.push(vec![Logic::xs(info.width); info.words as usize]);
        }
        let mut comb_sens = vec![Vec::new(); nsignals];
        let mut seq_sens = vec![Vec::new(); nsignals];
        for (i, p) in design.processes().iter().enumerate() {
            let pid = ProcessId(i as u32);
            match &p.trigger {
                Trigger::Comb(deps) => {
                    for d in deps {
                        comb_sens[d.0 as usize].push(pid);
                    }
                }
                Trigger::Seq(edges) => {
                    for (s, e) in edges {
                        seq_sens[s.0 as usize].push((pid, *e));
                    }
                }
                Trigger::Initial => {}
            }
        }
        let mut sim = Simulator { design, words, comb_sens, seq_sens, time: 0, initialised: false };
        sim.initialise()?;
        Ok(sim)
    }

    fn initialise(&mut self) -> Result<(), SimError> {
        let mut active: Vec<ProcessId> = Vec::new();
        // Run initial blocks, then every combinational process once so
        // nets acquire their driven values.
        for (i, p) in self.design.processes().iter().enumerate() {
            if matches!(p.trigger, Trigger::Initial) {
                active.push(ProcessId(i as u32));
            }
        }
        for (i, p) in self.design.processes().iter().enumerate() {
            if matches!(p.trigger, Trigger::Comb(_)) {
                active.push(ProcessId(i as u32));
            }
        }
        self.initialised = true;
        self.run_events(active)
    }

    /// The elaborated design being simulated.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Sets the simulation time (monotonically increased by harnesses).
    pub fn set_time(&mut self, time: u64) {
        self.time = time;
    }

    /// Reads the current value of `id`.
    pub fn peek(&self, id: SignalId) -> Logic {
        self.words[id.0 as usize][0]
    }

    /// Reads word `index` of an array signal.
    pub fn peek_word(&self, id: SignalId, index: u64) -> Logic {
        self.words[id.0 as usize]
            .get(index as usize)
            .copied()
            .unwrap_or_else(|| Logic::xs(self.design.signal(id).width))
    }

    /// Reads a signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for unknown names.
    pub fn peek_by_name(&self, name: &str) -> Result<Logic, SimError> {
        let id =
            self.design.signal_id(name).ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        Ok(self.peek(id))
    }

    /// Drives `id` to `value` and propagates the resulting events.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational oscillation.
    pub fn poke(&mut self, id: SignalId, value: Logic) -> Result<(), SimError> {
        let width = self.design.signal(id).width;
        let value = value.resize(width);
        let old = self.words[id.0 as usize][0];
        if old == value {
            return Ok(());
        }
        self.words[id.0 as usize][0] = value;
        let active = self.triggered_by(id, old, value);
        self.run_events(active)
    }

    /// Pokes a signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] or [`SimError::Unstable`].
    pub fn poke_by_name(&mut self, name: &str, value: Logic) -> Result<(), SimError> {
        let id =
            self.design.signal_id(name).ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        self.poke(id, value)
    }

    /// Propagates any pending activity until the design is quiescent.
    /// With the poke-driven API this is usually a no-op, but harnesses
    /// call it after batches of pokes for clarity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational oscillation.
    pub fn settle(&mut self) -> Result<(), SimError> {
        self.run_events(Vec::new())
    }

    /// Processes triggered by `signal` transitioning `old` → `new`.
    fn triggered_by(&self, signal: SignalId, old: Logic, new: Logic) -> Vec<ProcessId> {
        let mut active = Vec::new();
        for pid in &self.comb_sens[signal.0 as usize] {
            active.push(*pid);
        }
        let old_b = old.get_bit(0);
        let new_b = new.get_bit(0);
        let is1 = |l: &Logic| l.truthiness() == Tri::True;
        let is0 = |l: &Logic| l.to_u128() == Some(0);
        for (pid, edge) in &self.seq_sens[signal.0 as usize] {
            let fire = match edge {
                Some(Edge::Pos) => !is1(&old_b) && is1(&new_b),
                Some(Edge::Neg) => !is0(&old_b) && is0(&new_b),
                None => true,
            };
            if fire {
                active.push(*pid);
            }
        }
        active
    }

    /// Core event loop: runs `active` processes, applying blocking writes
    /// immediately and non-blocking writes at delta boundaries.
    ///
    /// Per IEEE 1364 event semantics, a running process does **not**
    /// observe events produced by its own execution — its event control
    /// is re-armed only after it suspends. This is what lets the common
    /// self-referential `always @(*)` idiom (e.g. a for-loop divider
    /// that resets and rebuilds its outputs) stabilise instead of
    /// re-triggering forever, and equally what makes genuinely missing
    /// sensitivity entries a real bug the simulator reproduces.
    fn run_events(&mut self, mut active: Vec<ProcessId>) -> Result<(), SimError> {
        let design = Arc::clone(&self.design);
        let mut activations = 0usize;
        let mut nba: Vec<Write> = Vec::new();
        // FIFO via cursor (no front removal); the queue is bounded by
        // the activation cap.
        let mut head = 0usize;
        loop {
            while head < active.len() {
                let pid = active[head];
                head += 1;
                if activations == MAX_ACTIVATIONS {
                    return Err(SimError::Unstable { activations });
                }
                activations += 1;
                let body = &design.processes()[pid.0 as usize].body;
                self.exec(body, &mut nba, &mut active, Some(pid));
            }
            if nba.is_empty() {
                return Ok(());
            }
            // Non-blocking assignment region: apply all queued writes,
            // collecting newly triggered processes. No process is
            // running here, so nothing is skipped.
            let queued = std::mem::take(&mut nba);
            for w in queued {
                self.apply_write(&w, &mut active, None);
            }
        }
    }

    fn view(&self) -> StateView<'_> {
        StateView { design: &self.design, words: &self.words }
    }

    fn exec(
        &mut self,
        stmt: &LStmt,
        nba: &mut Vec<Write>,
        active: &mut Vec<ProcessId>,
        current: Option<ProcessId>,
    ) {
        match stmt {
            LStmt::Block(stmts) => {
                for s in stmts {
                    self.exec(s, nba, active, current);
                }
            }
            LStmt::Assign { lhs, rhs, blocking, .. } => {
                let width = lhs.width(&self.design).max(1);
                let value = eval(&self.view(), rhs, width).resize(width);
                let mut writes = Vec::new();
                self.resolve_target(lhs, value, &mut writes);
                if *blocking {
                    for w in writes {
                        self.apply_write(&w, active, current);
                    }
                } else {
                    nba.extend(writes);
                }
            }
            LStmt::If { cond, then_branch, else_branch, .. } => {
                let c = eval(&self.view(), cond, cond.width);
                match c.truthiness() {
                    Tri::True => self.exec(then_branch, nba, active, current),
                    Tri::False => {
                        if let Some(e) = else_branch {
                            self.exec(e, nba, active, current);
                        }
                    }
                    // Unknown condition: neither branch executes. (A
                    // full IEEE implementation would merge; taking no
                    // branch keeps state X-conservative.)
                    Tri::Unknown => {}
                }
            }
            LStmt::Case { kind, expr, arms, default, .. } => {
                let sel = eval(&self.view(), expr, expr.width);
                for (labels, body) in arms {
                    for label in labels {
                        let lv = eval(&self.view(), label, label.width);
                        if case_matches(*kind, &sel, &lv) {
                            self.exec(body, nba, active, current);
                            return;
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec(d, nba, active, current);
                }
            }
            LStmt::Nop => {}
        }
    }

    /// Resolves a target into concrete writes, slicing `value` (already
    /// sized to the target's total width) most-significant-first across
    /// concatenations.
    fn resolve_target(&self, target: &LTarget, value: Logic, out: &mut Vec<Write>) {
        match target {
            LTarget::Whole(s) => {
                let w = self.design.signal(*s).width;
                out.push(Write { signal: *s, word: 0, lsb: 0, value: value.resize(w) });
            }
            LTarget::Bit(s, index) => {
                let idx = eval(&self.view(), index, index.width);
                if let Some(i) = idx.to_u128() {
                    if i < self.design.signal(*s).width as u128 {
                        out.push(Write {
                            signal: *s,
                            word: 0,
                            lsb: i as u32,
                            value: value.resize(1),
                        });
                    }
                }
                // X/Z or out-of-range index: write is dropped.
            }
            LTarget::Part(s, off, w) => {
                out.push(Write { signal: *s, word: 0, lsb: *off, value: value.resize(*w) });
            }
            LTarget::Word(s, index) => {
                let idx = eval(&self.view(), index, index.width);
                if let Some(i) = idx.to_u128() {
                    if (i as u64) < self.words[s.0 as usize].len() as u64 {
                        let w = self.design.signal(*s).width;
                        out.push(Write {
                            signal: *s,
                            word: i as u64,
                            lsb: 0,
                            value: value.resize(w),
                        });
                    }
                }
            }
            LTarget::Concat(parts) => {
                // Slice from the MSB side.
                let total: u32 = parts.iter().map(|p| p.width(&self.design)).sum();
                let mut consumed = 0;
                for p in parts {
                    let pw = p.width(&self.design);
                    let lsb = total - consumed - pw;
                    let slice = value.get_slice(lsb, pw);
                    self.resolve_target(p, slice, out);
                    consumed += pw;
                }
            }
        }
    }

    fn apply_write(&mut self, w: &Write, active: &mut Vec<ProcessId>, current: Option<ProcessId>) {
        let words = &mut self.words[w.signal.0 as usize];
        let Some(old) = words.get(w.word as usize).copied() else {
            return;
        };
        let updated = if w.lsb == 0 && w.value.width() == old.width() {
            w.value
        } else {
            old.with_slice(w.lsb, w.value)
        };
        if updated == old {
            return;
        }
        words[w.word as usize] = updated;
        // Array word writes do not produce scalar events (no process is
        // edge/level sensitive to a whole memory in this subset), but
        // combinational readers of the memory must re-run.
        let triggered = self.triggered_by(w.signal, old, updated);
        for pid in triggered {
            // A running process misses its own events (IEEE 1364).
            if Some(pid) != current {
                active.push(pid);
            }
        }
    }

    /// True for signals procedurally driven (regs); used by tests.
    pub fn is_var(&self, id: SignalId) -> bool {
        self.design.signal(id).kind == SignalKind::Var
    }

    /// Iterates processes (used by the DFG builder for cross-checks).
    pub fn processes(&self) -> &[Process] {
        self.design.processes()
    }
}

impl crate::backend::SimControl for Simulator {
    fn design(&self) -> &Design {
        Simulator::design(self)
    }
    fn time(&self) -> u64 {
        Simulator::time(self)
    }
    fn set_time(&mut self, time: u64) {
        Simulator::set_time(self, time);
    }
    fn peek(&self, id: SignalId) -> Logic {
        Simulator::peek(self, id)
    }
    fn peek_word(&self, id: SignalId, index: u64) -> Logic {
        Simulator::peek_word(self, id, index)
    }
    fn poke(&mut self, id: SignalId, value: Logic) -> Result<(), SimError> {
        Simulator::poke(self, id, value)
    }
    fn settle(&mut self) -> Result<(), SimError> {
        Simulator::settle(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use uvllm_verilog::parse;

    fn sim(src: &str) -> Simulator {
        let file = parse(src).unwrap();
        let top = file.top().unwrap().name.clone();
        let design = elaborate(&file, &top).unwrap();
        Simulator::new(&design).unwrap()
    }

    fn u(sim: &Simulator, name: &str) -> u128 {
        sim.peek_by_name(name).unwrap().to_u128().unwrap_or_else(|| {
            panic!("signal {name} is unknown: {}", sim.peek_by_name(name).unwrap())
        })
    }

    #[test]
    fn combinational_adder() {
        let mut s = sim("module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
             assign y = a + b;\nendmodule\n");
        s.poke_by_name("a", Logic::from_u128(8, 200)).unwrap();
        s.poke_by_name("b", Logic::from_u128(8, 100)).unwrap();
        assert_eq!(u(&s, "y"), 300);
    }

    #[test]
    fn concat_assign_carry() {
        let mut s =
            sim("module add(input [7:0] a, input [7:0] b, output cout, output [7:0] sum);\n\
             assign {cout, sum} = a + b;\nendmodule\n");
        s.poke_by_name("a", Logic::from_u128(8, 0xff)).unwrap();
        s.poke_by_name("b", Logic::from_u128(8, 0x02)).unwrap();
        assert_eq!(u(&s, "cout"), 1);
        assert_eq!(u(&s, "sum"), 0x01);
    }

    #[test]
    fn clocked_counter_with_async_reset() {
        let mut s = sim("module c(input clk, input rst_n, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\nend\nendmodule\n");
        s.poke_by_name("clk", Logic::bit(false)).unwrap();
        s.poke_by_name("rst_n", Logic::bit(false)).unwrap();
        assert_eq!(u(&s, "q"), 0);
        s.poke_by_name("rst_n", Logic::bit(true)).unwrap();
        for i in 1..=5u128 {
            s.poke_by_name("clk", Logic::bit(true)).unwrap();
            assert_eq!(u(&s, "q"), i % 16);
            s.poke_by_name("clk", Logic::bit(false)).unwrap();
        }
    }

    #[test]
    fn nonblocking_swap() {
        let mut s = sim("module swap(input clk, output reg a, output reg b);\n\
             initial begin\na = 1'b0;\nb = 1'b1;\nend\n\
             always @(posedge clk) begin\na <= b;\nb <= a;\nend\nendmodule\n");
        s.poke_by_name("clk", Logic::bit(false)).unwrap();
        assert_eq!(u(&s, "a"), 0);
        assert_eq!(u(&s, "b"), 1);
        s.poke_by_name("clk", Logic::bit(true)).unwrap();
        assert_eq!(u(&s, "a"), 1);
        assert_eq!(u(&s, "b"), 0);
    }

    #[test]
    fn blocking_in_comb_chains() {
        let mut s = sim("module m(input [3:0] a, output reg [3:0] y);\nreg [3:0] t;\n\
             always @(*) begin\nt = a + 4'd1;\ny = t + 4'd1;\nend\nendmodule\n");
        s.poke_by_name("a", Logic::from_u128(4, 3)).unwrap();
        assert_eq!(u(&s, "y"), 5);
    }

    #[test]
    fn memory_read_write() {
        let mut s = sim("module r(input clk, input we, input [3:0] addr, input [7:0] din,\n\
             output [7:0] dout);\nreg [7:0] mem [0:15];\n\
             always @(posedge clk) if (we) mem[addr] <= din;\n\
             assign dout = mem[addr];\nendmodule\n");
        s.poke_by_name("clk", Logic::bit(false)).unwrap();
        s.poke_by_name("we", Logic::bit(true)).unwrap();
        s.poke_by_name("addr", Logic::from_u128(4, 5)).unwrap();
        s.poke_by_name("din", Logic::from_u128(8, 0xAB)).unwrap();
        s.poke_by_name("clk", Logic::bit(true)).unwrap();
        assert_eq!(u(&s, "dout"), 0xAB);
        // Other addresses still X.
        s.poke_by_name("addr", Logic::from_u128(4, 6)).unwrap();
        assert!(s.peek_by_name("dout").unwrap().to_u128().is_none());
    }

    #[test]
    fn hierarchical_design_simulates() {
        let mut s = sim("module top(input a, input b, output y);\nwire w;\n\
             andg u1(.x(a), .y(b), .z(w));\nnotg u2(.i(w), .o(y));\nendmodule\n\
             module andg(input x, input y, output z);\nassign z = x & y;\nendmodule\n\
             module notg(input i, output o);\nassign o = ~i;\nendmodule\n");
        s.poke_by_name("a", Logic::bit(true)).unwrap();
        s.poke_by_name("b", Logic::bit(true)).unwrap();
        assert_eq!(u(&s, "y"), 0);
        s.poke_by_name("b", Logic::bit(false)).unwrap();
        assert_eq!(u(&s, "y"), 1);
    }

    #[test]
    fn x_feedback_settles_at_fixpoint() {
        // `assign y = ~y` starting from X reaches the X fixpoint — it
        // must NOT be reported as oscillation.
        let s = parse("module fx(output y);\nassign y = ~y;\nendmodule\n").unwrap();
        let design = elaborate(&s, "fx").unwrap();
        let sim = Simulator::new(&design).unwrap();
        assert!(sim.peek_by_name("y").unwrap().to_u128().is_none());
    }

    #[test]
    fn oscillation_detected() {
        // A cross-process combinational loop with defined values: each
        // block's case default resolves the initial X, after which the
        // two blocks chase each other forever. (A single self-reading
        // block would NOT oscillate — a running process misses its own
        // events, as in real simulators.)
        let s = parse(
            "module osc(output reg a, output reg b);\n\
             always @(*) begin\ncase (b)\n1'b0: a = 1'b1;\ndefault: a = 1'b0;\nendcase\nend\n\
             always @(*) begin\ncase (a)\n1'b0: b = 1'b0;\ndefault: b = 1'b1;\nendcase\nend\n\
             endmodule\n",
        )
        .unwrap();
        let design = elaborate(&s, "osc").unwrap();
        match Simulator::new(&design) {
            Err(SimError::Unstable { .. }) => {}
            other => panic!("expected unstable, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_sensitivity_is_honoured() {
        // `always @(a)` missing `b` — a classic functional bug the
        // simulator must reproduce faithfully, not paper over.
        let mut s = sim("module m(input a, input b, output reg y);\n\
             always @(a) y = a & b;\nendmodule\n");
        s.poke_by_name("a", Logic::bit(true)).unwrap();
        s.poke_by_name("b", Logic::bit(true)).unwrap();
        // b changed but the block is not sensitive to b; y reflects the
        // value from when a last changed (b was X then).
        assert!(s.peek_by_name("y").unwrap().to_u128().is_none());
        s.poke_by_name("a", Logic::bit(false)).unwrap();
        s.poke_by_name("a", Logic::bit(true)).unwrap();
        assert_eq!(u(&s, "y"), 1);
    }

    #[test]
    fn case_statement_execution() {
        let mut s = sim("module mx(input [1:0] s, input [3:0] a, input [3:0] b, input [3:0] c,\n\
             output reg [3:0] y);\nalways @(*) begin\ncase (s)\n\
             2'b00: y = a;\n2'b01: y = b;\n2'b10: y = c;\ndefault: y = 4'd0;\n\
             endcase\nend\nendmodule\n");
        s.poke_by_name("a", Logic::from_u128(4, 1)).unwrap();
        s.poke_by_name("b", Logic::from_u128(4, 2)).unwrap();
        s.poke_by_name("c", Logic::from_u128(4, 3)).unwrap();
        s.poke_by_name("s", Logic::from_u128(2, 0)).unwrap();
        assert_eq!(u(&s, "y"), 1);
        s.poke_by_name("s", Logic::from_u128(2, 2)).unwrap();
        assert_eq!(u(&s, "y"), 3);
        s.poke_by_name("s", Logic::from_u128(2, 3)).unwrap();
        assert_eq!(u(&s, "y"), 0);
    }

    #[test]
    fn part_select_write() {
        let mut s = sim("module p(input [3:0] lo, input [3:0] hi, output reg [7:0] y);\n\
             always @(*) begin\ny[3:0] = lo;\ny[7:4] = hi;\nend\nendmodule\n");
        s.poke_by_name("lo", Logic::from_u128(4, 0x5)).unwrap();
        s.poke_by_name("hi", Logic::from_u128(4, 0xA)).unwrap();
        assert_eq!(u(&s, "y"), 0xA5);
    }

    #[test]
    fn unknown_signal_errors() {
        let s = sim("module m(input a, output y);\nassign y = a;\nendmodule\n");
        assert!(matches!(s.peek_by_name("nope"), Err(SimError::UnknownSignal(_))));
    }
}
