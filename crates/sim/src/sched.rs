//! Event-driven simulation engine with delta cycles and blocking /
//! non-blocking assignment regions.
//!
//! The interpreter executes **precompiled process programs**
//! ([`crate::program`]): each body is lowered once at construction into
//! a flat op array with pre-resolved targets and precomputed widths,
//! and the scheduler keeps persistent scratch planes (the active event
//! set, the NBA queue, the write-staging buffer — cleared, never
//! dropped, between deltas), so a steady-state cycle performs **zero
//! heap allocations**. `tests/alloc_steady_state.rs` enforces that
//! bound on this kernel alongside the compiled one.

use crate::elab::{Design, Process, ProcessId, SignalId, SignalKind, Trigger};
use crate::eval::{case_matches, eval, eval_into, ValueReader};
use crate::logic::{Logic, Tri};
use crate::program::{lower_process, Dst, Op, ProcessProgram};
use std::fmt;
use std::sync::Arc;
use uvllm_verilog::ast::Edge;

/// Maximum process executions inside one [`Simulator::settle`] call
/// before the engine reports an oscillating (unstable) design.
pub const MAX_ACTIVATIONS: usize = 50_000;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Combinational feedback did not stabilise.
    Unstable {
        /// Process activations performed before giving up.
        activations: usize,
    },
    /// A signal name was not found in the design.
    UnknownSignal(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unstable { activations } => {
                write!(f, "design did not stabilise after {activations} activations")
            }
            SimError::UnknownSignal(name) => write!(f, "unknown signal '{name}'"),
        }
    }
}

impl std::error::Error for SimError {}

/// One resolved write: `value` goes into `[lsb, lsb+width)` of `word` of
/// `signal`. `Copy` (the value is two `u128` planes) so the NBA region
/// can drain its queue without moving the queue's buffer.
#[derive(Debug, Clone, Copy)]
struct Write {
    signal: SignalId,
    word: u64,
    lsb: u32,
    value: Logic,
}

/// An event-driven four-state simulator over an elaborated [`Design`].
///
/// The harness drives it imperatively: [`Simulator::poke`] input values,
/// [`Simulator::settle`] to propagate, read back with
/// [`Simulator::peek`], and advance [`Simulator::set_time`] between
/// cycles. Clocked logic reacts to edges produced by pokes.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// Shared so the event loop can borrow process bodies while
    /// mutating state — no per-activation body clone.
    design: Arc<Design>,
    /// Per-process flat programs, lowered once at construction and
    /// shared across clones (immutable after lowering).
    programs: Arc<[ProcessProgram]>,
    /// Current value per signal per word.
    words: Vec<Vec<Logic>>,
    /// Combinational processes sensitive to each signal.
    comb_sens: Vec<Vec<ProcessId>>,
    /// Edge-triggered processes: (process, signal, edge).
    seq_sens: Vec<Vec<(ProcessId, Option<Edge>)>>,
    /// Persistent active event set (FIFO via cursor). Cleared, never
    /// dropped, between runs so its capacity survives — pokes allocate
    /// nothing once the high-water mark is reached.
    active: Vec<ProcessId>,
    /// Persistent non-blocking-assignment queue (same rationale).
    nba: Vec<Write>,
    /// Persistent write-staging buffer for concatenated targets (all
    /// index expressions evaluate before any part applies).
    writes: Vec<Write>,
    time: u64,
    /// Set when the initial blocks have been run.
    initialised: bool,
    /// Registry handles, resolved once at construction (`sim.event.*`);
    /// the event loop flushes locally accumulated tallies through them
    /// in a handful of relaxed atomic adds per settle.
    metrics: &'static crate::metrics::EventKernelMetrics,
}

/// Per-drive tallies, accumulated in locals and flushed once.
#[derive(Debug, Default)]
struct EventTally {
    activations: u64,
    nba_commits: u64,
}

struct StateView<'a> {
    design: &'a Design,
    words: &'a [Vec<Logic>],
}

impl ValueReader for StateView<'_> {
    fn read(&self, id: SignalId) -> Logic {
        self.words[id.0 as usize][0]
    }
    fn read_word(&self, id: SignalId, index: u64) -> Logic {
        self.words[id.0 as usize]
            .get(index as usize)
            .copied()
            .unwrap_or_else(|| Logic::xs(self.design.signal(id).width))
    }
    fn word_count(&self, id: SignalId) -> u64 {
        self.words[id.0 as usize].len() as u64
    }
    fn width(&self, id: SignalId) -> u32 {
        self.design.signal(id).width
    }
}

impl Simulator {
    /// Builds a simulator over an owned `design`, runs `initial` blocks
    /// and settles the combinational network once. Callers holding a
    /// cached/shared elaboration use [`Simulator::from_arc`] instead —
    /// nothing on either path clones the design.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if the design oscillates at time 0.
    pub fn new(design: Design) -> Result<Self, SimError> {
        Simulator::from_arc(Arc::new(design))
    }

    /// Builds a simulator over an already-shared design without
    /// re-cloning it — the cheap path for cached elaborations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if the design oscillates at time 0.
    pub fn from_arc(design: Arc<Design>) -> Result<Self, SimError> {
        let nsignals = design.signals().len();
        let mut words = Vec::with_capacity(nsignals);
        for info in design.signals() {
            words.push(vec![Logic::xs(info.width); info.words as usize]);
        }
        let mut comb_sens = vec![Vec::new(); nsignals];
        let mut seq_sens = vec![Vec::new(); nsignals];
        for (i, p) in design.processes().iter().enumerate() {
            let pid = ProcessId(i as u32);
            match &p.trigger {
                Trigger::Comb(deps) => {
                    for d in deps {
                        comb_sens[d.0 as usize].push(pid);
                    }
                }
                Trigger::Seq(edges) => {
                    for (s, e) in edges {
                        seq_sens[s.0 as usize].push((pid, *e));
                    }
                }
                Trigger::Initial => {}
            }
        }
        let programs: Arc<[ProcessProgram]> =
            design.processes().iter().map(|p| lower_process(&design, &p.body)).collect();
        let mut sim = Simulator {
            design,
            programs,
            words,
            comb_sens,
            seq_sens,
            active: Vec::new(),
            nba: Vec::new(),
            writes: Vec::new(),
            time: 0,
            initialised: false,
            metrics: crate::metrics::event_kernel(),
        };
        sim.initialise()?;
        Ok(sim)
    }

    fn initialise(&mut self) -> Result<(), SimError> {
        let mut active = std::mem::take(&mut self.active);
        active.clear();
        // Run initial blocks, then every combinational process once so
        // nets acquire their driven values.
        for (i, p) in self.design.processes().iter().enumerate() {
            if matches!(p.trigger, Trigger::Initial) {
                active.push(ProcessId(i as u32));
            }
        }
        for (i, p) in self.design.processes().iter().enumerate() {
            if matches!(p.trigger, Trigger::Comb(_)) {
                active.push(ProcessId(i as u32));
            }
        }
        self.initialised = true;
        self.drive(active)
    }

    /// The elaborated design being simulated.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Sets the simulation time (monotonically increased by harnesses).
    pub fn set_time(&mut self, time: u64) {
        self.time = time;
    }

    /// Reads the current value of `id`.
    pub fn peek(&self, id: SignalId) -> Logic {
        self.words[id.0 as usize][0]
    }

    /// Reads word `index` of an array signal.
    pub fn peek_word(&self, id: SignalId, index: u64) -> Logic {
        self.words[id.0 as usize]
            .get(index as usize)
            .copied()
            .unwrap_or_else(|| Logic::xs(self.design.signal(id).width))
    }

    /// Reads a signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for unknown names.
    pub fn peek_by_name(&self, name: &str) -> Result<Logic, SimError> {
        let id =
            self.design.signal_id(name).ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        Ok(self.peek(id))
    }

    /// Drives `id` to `value` and propagates the resulting events.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational oscillation.
    pub fn poke(&mut self, id: SignalId, value: Logic) -> Result<(), SimError> {
        let width = self.design.signal(id).width;
        let value = value.resize(width);
        let old = self.words[id.0 as usize][0];
        if old == value {
            return Ok(());
        }
        self.words[id.0 as usize][0] = value;
        let mut active = std::mem::take(&mut self.active);
        active.clear();
        self.collect_triggered(id, old, value, None, &mut active);
        self.drive(active)
    }

    /// Pokes a signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] or [`SimError::Unstable`].
    pub fn poke_by_name(&mut self, name: &str, value: Logic) -> Result<(), SimError> {
        let id =
            self.design.signal_id(name).ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        self.poke(id, value)
    }

    /// Propagates any pending activity until the design is quiescent.
    /// With the poke-driven API this is usually a no-op, but harnesses
    /// call it after batches of pokes for clarity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational oscillation.
    pub fn settle(&mut self) -> Result<(), SimError> {
        let mut active = std::mem::take(&mut self.active);
        active.clear();
        self.drive(active)
    }

    /// Pushes the processes triggered by `signal` transitioning
    /// `old` → `new` onto `out`, skipping the running process (a
    /// process misses its own events, IEEE 1364).
    fn collect_triggered(
        &self,
        signal: SignalId,
        old: Logic,
        new: Logic,
        current: Option<ProcessId>,
        out: &mut Vec<ProcessId>,
    ) {
        for pid in &self.comb_sens[signal.0 as usize] {
            if Some(*pid) != current {
                out.push(*pid);
            }
        }
        let seq = &self.seq_sens[signal.0 as usize];
        if seq.is_empty() {
            return;
        }
        let old_b = old.get_bit(0);
        let new_b = new.get_bit(0);
        let is1 = |l: &Logic| l.truthiness() == Tri::True;
        let is0 = |l: &Logic| l.to_u128() == Some(0);
        for (pid, edge) in seq {
            let fire = match edge {
                Some(Edge::Pos) => !is1(&old_b) && is1(&new_b),
                Some(Edge::Neg) => !is0(&old_b) && is0(&new_b),
                None => true,
            };
            if fire && Some(*pid) != current {
                out.push(*pid);
            }
        }
    }

    /// Runs the event loop over a seeded active set using the
    /// persistent scratch queues. Every buffer is restored *cleared*
    /// (capacity intact): a successful run drains them, and an
    /// `Unstable` abort must not leave stale events or non-blocking
    /// writes for a later run.
    fn drive(&mut self, mut active: Vec<ProcessId>) -> Result<(), SimError> {
        let programs = Arc::clone(&self.programs);
        let mut nba = std::mem::take(&mut self.nba);
        let mut writes = std::mem::take(&mut self.writes);
        let mut tally = EventTally::default();
        let result = self.run_events(&programs, &mut active, &mut nba, &mut writes, &mut tally);
        // Flush the tallies: O(1) relaxed atomic adds per settle, no
        // per-activation shared-cache-line traffic across workers.
        let metrics = self.metrics;
        metrics.settles.inc();
        if tally.activations > 0 {
            metrics.activations.add(tally.activations);
        }
        if !active.is_empty() {
            metrics.events.add(active.len() as u64);
        }
        if tally.nba_commits > 0 {
            metrics.nba_commits.add(tally.nba_commits);
        }
        active.clear();
        nba.clear();
        writes.clear();
        self.active = active;
        self.nba = nba;
        self.writes = writes;
        result
    }

    /// Core event loop: runs `active` processes, applying blocking writes
    /// immediately and non-blocking writes at delta boundaries.
    ///
    /// Per IEEE 1364 event semantics, a running process does **not**
    /// observe events produced by its own execution — its event control
    /// is re-armed only after it suspends. This is what lets the common
    /// self-referential `always @(*)` idiom (e.g. a for-loop divider
    /// that resets and rebuilds its outputs) stabilise instead of
    /// re-triggering forever, and equally what makes genuinely missing
    /// sensitivity entries a real bug the simulator reproduces.
    fn run_events(
        &mut self,
        programs: &[ProcessProgram],
        active: &mut Vec<ProcessId>,
        nba: &mut Vec<Write>,
        writes: &mut Vec<Write>,
        tally: &mut EventTally,
    ) -> Result<(), SimError> {
        let mut activations = 0usize;
        // FIFO via cursor (no front removal); the queue is bounded by
        // the activation cap.
        let mut head = 0usize;
        let result = 'run: loop {
            while head < active.len() {
                let pid = active[head];
                head += 1;
                if activations == MAX_ACTIVATIONS {
                    break 'run Err(SimError::Unstable { activations });
                }
                activations += 1;
                self.exec_program(&programs[pid.0 as usize], nba, active, writes, Some(pid));
            }
            if nba.is_empty() {
                break 'run Ok(());
            }
            // Non-blocking assignment region: apply all queued writes,
            // collecting newly triggered processes. No process is
            // running here, so nothing is skipped; only `exec_program`
            // queues NBAs, so the list is stable while we iterate, and
            // clearing (not taking) it keeps its capacity.
            tally.nba_commits += nba.len() as u64;
            for w in nba.iter() {
                self.apply_write(w, active, None);
            }
            nba.clear();
        };
        tally.activations = activations as u64;
        result
    }

    fn view(&self) -> StateView<'_> {
        StateView { design: &self.design, words: &self.words }
    }

    /// Executes one precompiled process program as a program-counter
    /// loop. Assignment ops evaluate their right-hand side into a
    /// reused slot ([`eval_into`]) and stage writes either directly
    /// (single leaf) or through the persistent `writes` buffer
    /// (concatenated targets, where every index expression must
    /// evaluate before any part applies).
    fn exec_program(
        &mut self,
        program: &ProcessProgram,
        nba: &mut Vec<Write>,
        active: &mut Vec<ProcessId>,
        writes: &mut Vec<Write>,
        current: Option<ProcessId>,
    ) {
        let ops = &program.ops;
        let mut pc = 0usize;
        let mut value = Logic::zeros(1);
        while let Some(op) = ops.get(pc) {
            match op {
                Op::Assign { dst, rhs, width, blocking } => {
                    eval_into(&self.view(), rhs, *width, &mut value);
                    if let Some(w) = self.leaf_write(dst, value) {
                        if *blocking {
                            self.apply_write(&w, active, current);
                        } else {
                            nba.push(w);
                        }
                    }
                }
                Op::AssignConcat { parts, rhs, width, blocking } => {
                    eval_into(&self.view(), rhs, *width, &mut value);
                    debug_assert!(writes.is_empty(), "concat staging buffer leaked");
                    for (lsb, pw, dst) in parts {
                        if let Some(w) = self.leaf_write(dst, value.get_slice(*lsb, *pw)) {
                            writes.push(w);
                        }
                    }
                    if *blocking {
                        for w in writes.iter() {
                            self.apply_write(w, active, current);
                        }
                        writes.clear();
                    } else {
                        nba.append(writes);
                    }
                }
                Op::Branch { cond, on_false, on_unknown } => {
                    match eval(&self.view(), cond, cond.width).truthiness() {
                        Tri::True => {}
                        Tri::False => {
                            pc = *on_false as usize;
                            continue;
                        }
                        // Unknown condition: neither branch executes. (A
                        // full IEEE implementation would merge; taking no
                        // branch keeps state X-conservative.)
                        Tri::Unknown => {
                            pc = *on_unknown as usize;
                            continue;
                        }
                    }
                }
                Op::Jump { to } => {
                    pc = *to as usize;
                    continue;
                }
                Op::Case { kind, sel, arms, fallback } => {
                    let s = eval(&self.view(), sel, sel.width);
                    let mut target = *fallback;
                    'arms: for (labels, arm_start) in arms {
                        for label in labels {
                            let lv = eval(&self.view(), label, label.width);
                            if case_matches(*kind, &s, &lv) {
                                target = *arm_start;
                                break 'arms;
                            }
                        }
                    }
                    pc = target as usize;
                    continue;
                }
            }
            pc += 1;
        }
    }

    /// Resolves one pre-lowered leaf into a concrete write. `None` when
    /// a dynamic index is X/Z or out of range (the write is dropped).
    fn leaf_write(&self, dst: &Dst, value: Logic) -> Option<Write> {
        match dst {
            Dst::Whole { sig, width } => {
                Some(Write { signal: *sig, word: 0, lsb: 0, value: value.resize(*width) })
            }
            Dst::Part { sig, lsb, width } => {
                Some(Write { signal: *sig, word: 0, lsb: *lsb, value: value.resize(*width) })
            }
            Dst::Bit { sig, index, limit } => {
                let i = eval(&self.view(), index, index.width).to_u128()?;
                if i < *limit as u128 {
                    Some(Write { signal: *sig, word: 0, lsb: i as u32, value: value.resize(1) })
                } else {
                    None
                }
            }
            Dst::Word { sig, index, width, limit } => {
                let i = eval(&self.view(), index, index.width).to_u128()?;
                // The `as u64` truncation mirrors the compiled kernel's
                // word resolution exactly (equivalence over speed).
                if (i as u64) < *limit as u64 {
                    Some(Write {
                        signal: *sig,
                        word: i as u64,
                        lsb: 0,
                        value: value.resize(*width),
                    })
                } else {
                    None
                }
            }
        }
    }

    fn apply_write(&mut self, w: &Write, active: &mut Vec<ProcessId>, current: Option<ProcessId>) {
        let words = &mut self.words[w.signal.0 as usize];
        let Some(old) = words.get(w.word as usize).copied() else {
            return;
        };
        let updated = if w.lsb == 0 && w.value.width() == old.width() {
            w.value
        } else {
            let mut u = old;
            u.set_slice(w.lsb, w.value);
            u
        };
        if updated == old {
            return;
        }
        words[w.word as usize] = updated;
        // Array word writes do not produce scalar events (no process is
        // edge/level sensitive to a whole memory in this subset), but
        // combinational readers of the memory must re-run.
        self.collect_triggered(w.signal, old, updated, current, active);
    }

    /// True for signals procedurally driven (regs); used by tests.
    pub fn is_var(&self, id: SignalId) -> bool {
        self.design.signal(id).kind == SignalKind::Var
    }

    /// Iterates processes (used by the DFG builder for cross-checks).
    pub fn processes(&self) -> &[Process] {
        self.design.processes()
    }
}

impl crate::backend::SimControl for Simulator {
    fn design(&self) -> &Design {
        Simulator::design(self)
    }
    fn time(&self) -> u64 {
        Simulator::time(self)
    }
    fn set_time(&mut self, time: u64) {
        Simulator::set_time(self, time);
    }
    fn peek(&self, id: SignalId) -> Logic {
        Simulator::peek(self, id)
    }
    fn peek_word(&self, id: SignalId, index: u64) -> Logic {
        Simulator::peek_word(self, id, index)
    }
    fn poke(&mut self, id: SignalId, value: Logic) -> Result<(), SimError> {
        Simulator::poke(self, id, value)
    }
    fn settle(&mut self) -> Result<(), SimError> {
        Simulator::settle(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use uvllm_verilog::parse;

    fn sim(src: &str) -> Simulator {
        let file = parse(src).unwrap();
        let top = &file.top().unwrap().name;
        let design = elaborate(&file, top).unwrap();
        Simulator::new(design).unwrap()
    }

    fn u(sim: &Simulator, name: &str) -> u128 {
        sim.peek_by_name(name).unwrap().to_u128().unwrap_or_else(|| {
            panic!("signal {name} is unknown: {}", sim.peek_by_name(name).unwrap())
        })
    }

    #[test]
    fn combinational_adder() {
        let mut s = sim("module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
             assign y = a + b;\nendmodule\n");
        s.poke_by_name("a", Logic::from_u128(8, 200)).unwrap();
        s.poke_by_name("b", Logic::from_u128(8, 100)).unwrap();
        assert_eq!(u(&s, "y"), 300);
    }

    #[test]
    fn concat_assign_carry() {
        let mut s =
            sim("module add(input [7:0] a, input [7:0] b, output cout, output [7:0] sum);\n\
             assign {cout, sum} = a + b;\nendmodule\n");
        s.poke_by_name("a", Logic::from_u128(8, 0xff)).unwrap();
        s.poke_by_name("b", Logic::from_u128(8, 0x02)).unwrap();
        assert_eq!(u(&s, "cout"), 1);
        assert_eq!(u(&s, "sum"), 0x01);
    }

    #[test]
    fn clocked_counter_with_async_reset() {
        let mut s = sim("module c(input clk, input rst_n, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\nend\nendmodule\n");
        s.poke_by_name("clk", Logic::bit(false)).unwrap();
        s.poke_by_name("rst_n", Logic::bit(false)).unwrap();
        assert_eq!(u(&s, "q"), 0);
        s.poke_by_name("rst_n", Logic::bit(true)).unwrap();
        for i in 1..=5u128 {
            s.poke_by_name("clk", Logic::bit(true)).unwrap();
            assert_eq!(u(&s, "q"), i % 16);
            s.poke_by_name("clk", Logic::bit(false)).unwrap();
        }
    }

    #[test]
    fn nonblocking_swap() {
        let mut s = sim("module swap(input clk, output reg a, output reg b);\n\
             initial begin\na = 1'b0;\nb = 1'b1;\nend\n\
             always @(posedge clk) begin\na <= b;\nb <= a;\nend\nendmodule\n");
        s.poke_by_name("clk", Logic::bit(false)).unwrap();
        assert_eq!(u(&s, "a"), 0);
        assert_eq!(u(&s, "b"), 1);
        s.poke_by_name("clk", Logic::bit(true)).unwrap();
        assert_eq!(u(&s, "a"), 1);
        assert_eq!(u(&s, "b"), 0);
    }

    #[test]
    fn blocking_in_comb_chains() {
        let mut s = sim("module m(input [3:0] a, output reg [3:0] y);\nreg [3:0] t;\n\
             always @(*) begin\nt = a + 4'd1;\ny = t + 4'd1;\nend\nendmodule\n");
        s.poke_by_name("a", Logic::from_u128(4, 3)).unwrap();
        assert_eq!(u(&s, "y"), 5);
    }

    #[test]
    fn memory_read_write() {
        let mut s = sim("module r(input clk, input we, input [3:0] addr, input [7:0] din,\n\
             output [7:0] dout);\nreg [7:0] mem [0:15];\n\
             always @(posedge clk) if (we) mem[addr] <= din;\n\
             assign dout = mem[addr];\nendmodule\n");
        s.poke_by_name("clk", Logic::bit(false)).unwrap();
        s.poke_by_name("we", Logic::bit(true)).unwrap();
        s.poke_by_name("addr", Logic::from_u128(4, 5)).unwrap();
        s.poke_by_name("din", Logic::from_u128(8, 0xAB)).unwrap();
        s.poke_by_name("clk", Logic::bit(true)).unwrap();
        assert_eq!(u(&s, "dout"), 0xAB);
        // Other addresses still X.
        s.poke_by_name("addr", Logic::from_u128(4, 6)).unwrap();
        assert!(s.peek_by_name("dout").unwrap().to_u128().is_none());
    }

    #[test]
    fn hierarchical_design_simulates() {
        let mut s = sim("module top(input a, input b, output y);\nwire w;\n\
             andg u1(.x(a), .y(b), .z(w));\nnotg u2(.i(w), .o(y));\nendmodule\n\
             module andg(input x, input y, output z);\nassign z = x & y;\nendmodule\n\
             module notg(input i, output o);\nassign o = ~i;\nendmodule\n");
        s.poke_by_name("a", Logic::bit(true)).unwrap();
        s.poke_by_name("b", Logic::bit(true)).unwrap();
        assert_eq!(u(&s, "y"), 0);
        s.poke_by_name("b", Logic::bit(false)).unwrap();
        assert_eq!(u(&s, "y"), 1);
    }

    #[test]
    fn x_feedback_settles_at_fixpoint() {
        // `assign y = ~y` starting from X reaches the X fixpoint — it
        // must NOT be reported as oscillation.
        let s = parse("module fx(output y);\nassign y = ~y;\nendmodule\n").unwrap();
        let design = elaborate(&s, "fx").unwrap();
        let sim = Simulator::new(design).unwrap();
        assert!(sim.peek_by_name("y").unwrap().to_u128().is_none());
    }

    #[test]
    fn oscillation_detected() {
        // A cross-process combinational loop with defined values: each
        // block's case default resolves the initial X, after which the
        // two blocks chase each other forever. (A single self-reading
        // block would NOT oscillate — a running process misses its own
        // events, as in real simulators.)
        let s = parse(
            "module osc(output reg a, output reg b);\n\
             always @(*) begin\ncase (b)\n1'b0: a = 1'b1;\ndefault: a = 1'b0;\nendcase\nend\n\
             always @(*) begin\ncase (a)\n1'b0: b = 1'b0;\ndefault: b = 1'b1;\nendcase\nend\n\
             endmodule\n",
        )
        .unwrap();
        let design = elaborate(&s, "osc").unwrap();
        match Simulator::new(design) {
            Err(SimError::Unstable { .. }) => {}
            other => panic!("expected unstable, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_sensitivity_is_honoured() {
        // `always @(a)` missing `b` — a classic functional bug the
        // simulator must reproduce faithfully, not paper over.
        let mut s = sim("module m(input a, input b, output reg y);\n\
             always @(a) y = a & b;\nendmodule\n");
        s.poke_by_name("a", Logic::bit(true)).unwrap();
        s.poke_by_name("b", Logic::bit(true)).unwrap();
        // b changed but the block is not sensitive to b; y reflects the
        // value from when a last changed (b was X then).
        assert!(s.peek_by_name("y").unwrap().to_u128().is_none());
        s.poke_by_name("a", Logic::bit(false)).unwrap();
        s.poke_by_name("a", Logic::bit(true)).unwrap();
        assert_eq!(u(&s, "y"), 1);
    }

    #[test]
    fn case_statement_execution() {
        let mut s = sim("module mx(input [1:0] s, input [3:0] a, input [3:0] b, input [3:0] c,\n\
             output reg [3:0] y);\nalways @(*) begin\ncase (s)\n\
             2'b00: y = a;\n2'b01: y = b;\n2'b10: y = c;\ndefault: y = 4'd0;\n\
             endcase\nend\nendmodule\n");
        s.poke_by_name("a", Logic::from_u128(4, 1)).unwrap();
        s.poke_by_name("b", Logic::from_u128(4, 2)).unwrap();
        s.poke_by_name("c", Logic::from_u128(4, 3)).unwrap();
        s.poke_by_name("s", Logic::from_u128(2, 0)).unwrap();
        assert_eq!(u(&s, "y"), 1);
        s.poke_by_name("s", Logic::from_u128(2, 2)).unwrap();
        assert_eq!(u(&s, "y"), 3);
        s.poke_by_name("s", Logic::from_u128(2, 3)).unwrap();
        assert_eq!(u(&s, "y"), 0);
    }

    #[test]
    fn part_select_write() {
        let mut s = sim("module p(input [3:0] lo, input [3:0] hi, output reg [7:0] y);\n\
             always @(*) begin\ny[3:0] = lo;\ny[7:4] = hi;\nend\nendmodule\n");
        s.poke_by_name("lo", Logic::from_u128(4, 0x5)).unwrap();
        s.poke_by_name("hi", Logic::from_u128(4, 0xA)).unwrap();
        assert_eq!(u(&s, "y"), 0xA5);
    }

    #[test]
    fn unknown_signal_errors() {
        let s = sim("module m(input a, output y);\nassign y = a;\nendmodule\n");
        assert!(matches!(s.peek_by_name("nope"), Err(SimError::UnknownSignal(_))));
    }
}
