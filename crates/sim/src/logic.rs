//! Four-state logic values (`0`, `1`, `X`, `Z`) up to 128 bits wide.

use std::fmt;

/// Truth value of a four-state expression used in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely true (some bit is a known 1).
    True,
    /// Definitely false (all bits are known 0).
    False,
    /// Unknown (no known 1 and at least one X/Z bit).
    Unknown,
}

/// A four-state logic vector.
///
/// Bit *i* is encoded across two planes: `xz` bit set means the bit is
/// unknown — `val` then distinguishes X (`0`) from Z (`1`). When `xz` is
/// clear, `val` holds the ordinary binary value.
///
/// All operations mask their result to `width` bits; widths are capped at
/// 128 which is ample for the UVLLM benchmark designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Logic {
    width: u32,
    val: u128,
    xz: u128,
}

/// Returns a mask with the low `bits` bits set.
pub fn mask(bits: u32) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

impl Logic {
    /// All-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 128.
    pub fn zeros(width: u32) -> Self {
        assert!((1..=128).contains(&width), "logic width {width} out of range 1..=128");
        Logic { width, val: 0, xz: 0 }
    }

    /// All-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut l = Logic::zeros(width);
        l.val = mask(width);
        l
    }

    /// All-X value of the given width.
    pub fn xs(width: u32) -> Self {
        let mut l = Logic::zeros(width);
        l.xz = mask(width);
        l
    }

    /// All-Z value of the given width.
    pub fn zs(width: u32) -> Self {
        let mut l = Logic::zeros(width);
        l.xz = mask(width);
        l.val = mask(width);
        l
    }

    /// A known value from an integer, truncated to `width` bits.
    pub fn from_u128(width: u32, value: u128) -> Self {
        let mut l = Logic::zeros(width);
        l.val = value & mask(width);
        l
    }

    /// A single known bit.
    pub fn bit(value: bool) -> Self {
        Logic::from_u128(1, value as u128)
    }

    /// Builds a value from raw planes (masked to `width`).
    pub fn from_planes(width: u32, val: u128, xz: u128) -> Self {
        let mut l = Logic::zeros(width);
        l.val = val & mask(width);
        l.xz = xz & mask(width);
        l
    }

    /// Bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Value plane (bits where `xz` is set are not ordinary values).
    pub fn val(&self) -> u128 {
        self.val
    }

    /// Unknown plane.
    pub fn xz(&self) -> u128 {
        self.xz
    }

    /// True when no bit is X or Z.
    pub fn is_fully_known(&self) -> bool {
        self.xz == 0
    }

    /// The known integer value, or `None` if any bit is X/Z.
    pub fn to_u128(&self) -> Option<u128> {
        if self.is_fully_known() {
            Some(self.val)
        } else {
            None
        }
    }

    /// Converts to `u64`, or `None` when unknown or too wide.
    pub fn to_u64(&self) -> Option<u64> {
        self.to_u128().and_then(|v| u64::try_from(v).ok())
    }

    /// Zero-extends or truncates to `width`.
    pub fn resize(&self, width: u32) -> Logic {
        Logic::from_planes(width, self.val, self.xz)
    }

    /// Extracts bit `index` as a 1-bit value; out of range yields X.
    pub fn get_bit(&self, index: u32) -> Logic {
        if index >= self.width {
            return Logic::xs(1);
        }
        Logic::from_planes(1, self.val >> index, self.xz >> index)
    }

    /// Extracts `width` bits starting at `lsb`; out-of-range bits are X.
    pub fn get_slice(&self, lsb: u32, width: u32) -> Logic {
        if lsb >= self.width {
            return Logic::xs(width);
        }
        let avail = self.width - lsb;
        let mut out = Logic::from_planes(width, self.val >> lsb, self.xz >> lsb);
        if avail < width {
            // Bits beyond the source are X.
            let missing = mask(width) & !mask(avail);
            out.xz |= missing;
            out.val &= !missing;
        }
        out
    }

    /// Stores `value` (1 bit) at `index` in place; out-of-range writes
    /// are ignored. The in-place masked word ops are the kernels'
    /// write-application primitive — no temporary value is built.
    pub fn set_bit(&mut self, index: u32, value: Logic) {
        if index >= self.width {
            return;
        }
        let bit = 1u128 << index;
        self.val = (self.val & !bit) | (((value.val & 1) << index) & bit);
        self.xz = (self.xz & !bit) | (((value.xz & 1) << index) & bit);
    }

    /// Returns a copy with `value` (1 bit) stored at `index`; out-of-range
    /// writes are ignored.
    pub fn with_bit(&self, index: u32, value: Logic) -> Logic {
        let mut out = *self;
        out.set_bit(index, value);
        out
    }

    /// Stores `value` at bits `[lsb, lsb+value.width)` in place (masked
    /// word ops on both planes); out-of-range writes are ignored.
    pub fn set_slice(&mut self, lsb: u32, value: Logic) {
        if lsb >= self.width {
            return;
        }
        let w = value.width.min(self.width - lsb);
        let m = mask(w) << lsb;
        self.val = (self.val & !m) | ((value.val << lsb) & m);
        self.xz = (self.xz & !m) | ((value.xz << lsb) & m);
    }

    /// Returns a copy with `value` stored at bits `[lsb, lsb+value.width)`.
    pub fn with_slice(&self, lsb: u32, value: Logic) -> Logic {
        let mut out = *self;
        out.set_slice(lsb, value);
        out
    }

    /// Truthiness per IEEE 1364: true if any known 1 bit, false if all
    /// bits known 0, otherwise unknown.
    pub fn truthiness(&self) -> Tri {
        if self.val & !self.xz != 0 {
            Tri::True
        } else if self.xz == 0 {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// Concatenates `hi` above `lo` (`{hi, lo}`).
    ///
    /// The arena stores at most 128 bits: when `hi.width + lo.width`
    /// exceeds 128 the result keeps the low 128 bits and the
    /// overflowing MSBs of `hi` are dropped from *both* planes, so
    /// truncated X/Z designations never wrap around into `lo` (a
    /// `lo.width == 128` shift would otherwise panic in debug builds
    /// and wrap in release builds).
    pub fn concat(hi: Logic, lo: Logic) -> Logic {
        let width = (hi.width + lo.width).min(128);
        if lo.width >= 128 {
            return lo;
        }
        Logic::from_planes(width, (hi.val << lo.width) | lo.val, (hi.xz << lo.width) | lo.xz)
    }

    // ------------------------------------------------------------------
    // Arithmetic (any X/Z operand poisons the result)
    // ------------------------------------------------------------------

    fn poisoned(width: u32, operands: &[&Logic]) -> Option<Logic> {
        if operands.iter().any(|l| !l.is_fully_known()) {
            Some(Logic::xs(width))
        } else {
            None
        }
    }

    /// `self + other` at width `w`.
    pub fn add(&self, other: &Logic, w: u32) -> Logic {
        Logic::poisoned(w, &[self, other])
            .unwrap_or_else(|| Logic::from_u128(w, self.val.wrapping_add(other.val)))
    }

    /// `self - other` at width `w`.
    pub fn sub(&self, other: &Logic, w: u32) -> Logic {
        Logic::poisoned(w, &[self, other])
            .unwrap_or_else(|| Logic::from_u128(w, self.val.wrapping_sub(other.val)))
    }

    /// `self * other` at width `w`.
    pub fn mul(&self, other: &Logic, w: u32) -> Logic {
        Logic::poisoned(w, &[self, other])
            .unwrap_or_else(|| Logic::from_u128(w, self.val.wrapping_mul(other.val)))
    }

    /// `self / other` at width `w`; division by zero yields X.
    pub fn div(&self, other: &Logic, w: u32) -> Logic {
        if let Some(p) = Logic::poisoned(w, &[self, other]) {
            return p;
        }
        match self.val.checked_div(other.val) {
            Some(q) => Logic::from_u128(w, q),
            None => Logic::xs(w),
        }
    }

    /// `self % other` at width `w`; modulo by zero yields X.
    pub fn rem(&self, other: &Logic, w: u32) -> Logic {
        if let Some(p) = Logic::poisoned(w, &[self, other]) {
            return p;
        }
        if other.val == 0 {
            Logic::xs(w)
        } else {
            Logic::from_u128(w, self.val % other.val)
        }
    }

    /// `self ** other` at width `w`.
    pub fn pow(&self, other: &Logic, w: u32) -> Logic {
        if let Some(p) = Logic::poisoned(w, &[self, other]) {
            return p;
        }
        let mut acc: u128 = 1;
        for _ in 0..other.val.min(128) {
            acc = acc.wrapping_mul(self.val);
        }
        Logic::from_u128(w, acc)
    }

    /// Logical shift left at width `w`.
    ///
    /// The X/Z plane shifts in lockstep with the value plane, so a
    /// partially-known operand keeps its unknown bits at the shifted
    /// positions; bits pushed past the 128-bit arena fall off *both*
    /// planes (a dropped X designation must never poison lower bits).
    pub fn shl(&self, amount: &Logic, w: u32) -> Logic {
        if !amount.is_fully_known() {
            return Logic::xs(w);
        }
        if amount.val >= 128 {
            return Logic::zeros(w);
        }
        let sh = amount.val as u32;
        Logic::from_planes(w, self.val << sh, self.xz << sh)
    }

    /// Logical shift right at width `w`.
    pub fn shr(&self, amount: &Logic, w: u32) -> Logic {
        if !amount.is_fully_known() {
            return Logic::xs(w);
        }
        let sh = amount.val.min(128) as u32;
        if sh >= 128 {
            return Logic::zeros(w);
        }
        Logic::from_planes(w, self.val >> sh, self.xz >> sh)
    }

    /// Arithmetic shift right (sign bit of `self` replicated) at width `w`.
    ///
    /// The replicated sign bits occupy `[self.width - sh, self.width)`:
    /// the fill extends down from the *operand's* sign-bit position
    /// (IEEE 1364 `>>>` shifts the operand, then the context widens it),
    /// which for a narrow operand in a wide context is below the top of
    /// `w`. An X/Z sign bit fills with X.
    pub fn ashr(&self, amount: &Logic, w: u32) -> Logic {
        if !amount.is_fully_known() {
            return Logic::xs(w);
        }
        let sh = amount.val.min(self.width as u128) as u32;
        let sign = self.get_bit(self.width - 1);
        let mut out = self.shr(amount, w);
        if sh > 0 {
            let fill = (mask(sh) << (self.width - sh)) & mask(w);
            match sign.truthiness() {
                Tri::True => out.val |= fill,
                Tri::Unknown => {
                    out.xz |= fill;
                    out.val &= !fill;
                }
                Tri::False => {}
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Bitwise operations with four-state truth tables
    // ------------------------------------------------------------------

    /// Bitwise AND (`0 & X == 0`).
    pub fn bitand(&self, other: &Logic, w: u32) -> Logic {
        let a = self.resize(w);
        let b = other.resize(w);
        // Known-zero bits force 0 regardless of the other side.
        let zero = (!a.val & !a.xz) | (!b.val & !b.xz);
        let unknown = (a.xz | b.xz) & !zero;
        let val = a.val & b.val & !a.xz & !b.xz;
        Logic::from_planes(w, val & !unknown, unknown & mask(w) & !(zero & mask(w)))
    }

    /// Bitwise OR (`1 | X == 1`).
    pub fn bitor(&self, other: &Logic, w: u32) -> Logic {
        let a = self.resize(w);
        let b = other.resize(w);
        let one = (a.val & !a.xz) | (b.val & !b.xz);
        let unknown = (a.xz | b.xz) & !one;
        Logic::from_planes(w, one, unknown)
    }

    /// Bitwise XOR (any X poisons the bit).
    pub fn bitxor(&self, other: &Logic, w: u32) -> Logic {
        let a = self.resize(w);
        let b = other.resize(w);
        let unknown = a.xz | b.xz;
        Logic::from_planes(w, (a.val ^ b.val) & !unknown, unknown)
    }

    /// Bitwise XNOR.
    pub fn bitxnor(&self, other: &Logic, w: u32) -> Logic {
        self.bitxor(other, w).bitnot(w)
    }

    /// Bitwise NOT.
    pub fn bitnot(&self, w: u32) -> Logic {
        let a = self.resize(w);
        Logic::from_planes(w, !a.val & !a.xz, a.xz)
    }

    /// Two's-complement negation.
    pub fn neg(&self, w: u32) -> Logic {
        Logic::poisoned(w, &[self]).unwrap_or_else(|| Logic::from_u128(w, self.val.wrapping_neg()))
    }

    // ------------------------------------------------------------------
    // Comparisons and reductions (1-bit results)
    // ------------------------------------------------------------------

    /// Logical equality `==` (X if either side has unknowns that matter).
    pub fn log_eq(&self, other: &Logic) -> Logic {
        let w = self.width.max(other.width);
        let a = self.resize(w);
        let b = other.resize(w);
        if a.xz != 0 || b.xz != 0 {
            // A known mismatch on any bit yields definite 0.
            let known = !a.xz & !b.xz;
            if (a.val ^ b.val) & known != 0 {
                Logic::bit(false)
            } else {
                Logic::xs(1)
            }
        } else {
            Logic::bit(a.val == b.val)
        }
    }

    /// Logical inequality `!=`.
    pub fn log_ne(&self, other: &Logic) -> Logic {
        self.log_eq(other).bitnot(1)
    }

    /// Case equality `===` (X/Z compare literally).
    pub fn case_eq(&self, other: &Logic) -> Logic {
        let w = self.width.max(other.width);
        let a = self.resize(w);
        let b = other.resize(w);
        Logic::bit(a.val == b.val && a.xz == b.xz)
    }

    /// Unsigned relational comparison; X if either side unknown.
    pub fn cmp_lt(&self, other: &Logic) -> Logic {
        match (self.to_u128(), other.to_u128()) {
            (Some(a), Some(b)) => Logic::bit(a < b),
            _ => Logic::xs(1),
        }
    }

    /// Reduction AND.
    pub fn red_and(&self) -> Logic {
        if (!self.val & !self.xz) & mask(self.width) != 0 {
            Logic::bit(false)
        } else if self.xz != 0 {
            Logic::xs(1)
        } else {
            Logic::bit(true)
        }
    }

    /// Reduction OR.
    pub fn red_or(&self) -> Logic {
        if self.val & !self.xz != 0 {
            Logic::bit(true)
        } else if self.xz != 0 {
            Logic::xs(1)
        } else {
            Logic::bit(false)
        }
    }

    /// Reduction XOR.
    pub fn red_xor(&self) -> Logic {
        if self.xz != 0 {
            Logic::xs(1)
        } else {
            Logic::bit((self.val & mask(self.width)).count_ones() % 2 == 1)
        }
    }

    /// Three-valued logical AND.
    pub fn log_and(&self, other: &Logic) -> Logic {
        match (self.truthiness(), other.truthiness()) {
            (Tri::False, _) | (_, Tri::False) => Logic::bit(false),
            (Tri::True, Tri::True) => Logic::bit(true),
            _ => Logic::xs(1),
        }
    }

    /// Three-valued logical OR.
    pub fn log_or(&self, other: &Logic) -> Logic {
        match (self.truthiness(), other.truthiness()) {
            (Tri::True, _) | (_, Tri::True) => Logic::bit(true),
            (Tri::False, Tri::False) => Logic::bit(false),
            _ => Logic::xs(1),
        }
    }

    /// Three-valued logical NOT.
    pub fn log_not(&self) -> Logic {
        match self.truthiness() {
            Tri::True => Logic::bit(false),
            Tri::False => Logic::bit(true),
            Tri::Unknown => Logic::xs(1),
        }
    }

    /// Bitwise merge used for `cond ? a : b` with unknown condition:
    /// bits where both sides agree keep the value, others become X.
    pub fn merge(&self, other: &Logic, w: u32) -> Logic {
        let a = self.resize(w);
        let b = other.resize(w);
        let disagree = (a.val ^ b.val) | a.xz | b.xz;
        Logic::from_planes(w, a.val & !disagree, disagree)
    }

    /// Wildcard match used by `casez` (`z`/`?` bits in `label` match
    /// anything) and `casex` (X bits also match).
    pub fn wildcard_eq(&self, label: &Logic, x_wild: bool) -> bool {
        let w = self.width.max(label.width);
        let a = self.resize(w);
        let l = label.resize(w);
        // Label Z bits are wild; label X bits wild only for casex.
        let lbl_wild = (l.xz & l.val) | if x_wild { l.xz & !l.val } else { 0 };
        let sel_wild = if x_wild { a.xz } else { a.xz & a.val };
        let wild = lbl_wild | sel_wild;
        let known = !wild & mask(w);
        (a.val & known) == (l.val & known) && (a.xz & known) == (l.xz & known)
    }
}

impl fmt::Display for Logic {
    /// Renders in Verilog literal style, e.g. `8'h1a`, `4'b10xz`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.xz == 0 {
            let digits = self.width.div_ceil(4) as usize;
            write!(f, "{}'h{:0digits$x}", self.width, self.val)
        } else {
            write!(f, "{}'b", self.width)?;
            for i in (0..self.width).rev() {
                let v = (self.val >> i) & 1;
                let z = (self.xz >> i) & 1;
                let ch = match (z, v) {
                    (0, 0) => '0',
                    (0, 1) => '1',
                    (1, 0) => 'x',
                    _ => 'z',
                };
                write!(f, "{ch}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let l = Logic::from_u128(8, 0x1a);
        assert_eq!(l.width(), 8);
        assert_eq!(l.to_u128(), Some(0x1a));
        assert!(Logic::xs(4).to_u128().is_none());
        assert_eq!(Logic::from_u128(4, 0xff).val(), 0xf);
    }

    #[test]
    fn add_with_carry_context() {
        let a = Logic::from_u128(8, 200);
        let b = Logic::from_u128(8, 100);
        assert_eq!(a.add(&b, 9).to_u128(), Some(300));
        assert_eq!(a.add(&b, 8).to_u128(), Some(300 & 0xff));
    }

    #[test]
    fn x_poisons_arithmetic() {
        let a = Logic::xs(8);
        let b = Logic::from_u128(8, 5);
        assert!(a.add(&b, 8).to_u128().is_none());
        assert!(b.div(&Logic::zeros(8), 8).to_u128().is_none());
    }

    #[test]
    fn bitwise_short_circuit_with_x() {
        let x = Logic::xs(1);
        let zero = Logic::zeros(1);
        let one = Logic::ones(1);
        assert_eq!(zero.bitand(&x, 1), Logic::zeros(1));
        assert_eq!(one.bitor(&x, 1), Logic::ones(1));
        assert!(one.bitand(&x, 1).to_u128().is_none());
        assert!(zero.bitor(&x, 1).to_u128().is_none());
        assert!(one.bitxor(&x, 1).to_u128().is_none());
    }

    #[test]
    fn logical_ops_three_valued() {
        let x = Logic::xs(1);
        let t = Logic::ones(1);
        let f = Logic::zeros(1);
        assert_eq!(f.log_and(&x), Logic::bit(false));
        assert_eq!(t.log_or(&x), Logic::bit(true));
        assert!(t.log_and(&x).to_u128().is_none());
        assert_eq!(x.log_not().truthiness(), Tri::Unknown);
    }

    #[test]
    fn equality_semantics() {
        let a = Logic::from_u128(4, 0b1010);
        let b = Logic::from_u128(4, 0b1010);
        assert_eq!(a.log_eq(&b), Logic::bit(true));
        let x = Logic::from_planes(4, 0b1010, 0b0001);
        // Known bits match -> unknown result.
        assert!(a.log_eq(&x).to_u128().is_none());
        // Known bit mismatch -> definite false even with X elsewhere.
        let y = Logic::from_planes(4, 0b0010, 0b0001);
        assert_eq!(a.log_eq(&y), Logic::bit(false));
        // Case equality is literal.
        assert_eq!(x.case_eq(&x), Logic::bit(true));
        assert_eq!(a.case_eq(&x), Logic::bit(false));
    }

    #[test]
    fn slicing_and_insertion() {
        let v = Logic::from_u128(8, 0b1100_1010);
        assert_eq!(v.get_bit(1).to_u128(), Some(1));
        assert_eq!(v.get_slice(4, 4).to_u128(), Some(0b1100));
        let w = v.with_slice(0, Logic::from_u128(4, 0b0101));
        assert_eq!(w.to_u128(), Some(0b1100_0101));
        let w2 = v.with_bit(7, Logic::bit(false));
        assert_eq!(w2.to_u128(), Some(0b0100_1010));
        // Out-of-range access.
        assert!(v.get_bit(8).to_u128().is_none());
        assert_eq!(v.with_bit(8, Logic::bit(true)), v);
    }

    #[test]
    fn shifts() {
        let v = Logic::from_u128(8, 0b0000_1111);
        assert_eq!(v.shl(&Logic::from_u128(3, 2), 8).to_u128(), Some(0b0011_1100));
        assert_eq!(v.shr(&Logic::from_u128(3, 2), 8).to_u128(), Some(0b0000_0011));
        let neg = Logic::from_u128(8, 0b1000_0000);
        assert_eq!(neg.ashr(&Logic::from_u128(3, 3), 8).to_u128(), Some(0b1111_0000));
        assert!(v.shl(&Logic::xs(3), 8).to_u128().is_none());
    }

    #[test]
    fn reductions() {
        assert_eq!(Logic::ones(4).red_and(), Logic::bit(true));
        assert_eq!(Logic::from_u128(4, 0b1110).red_and(), Logic::bit(false));
        assert_eq!(Logic::zeros(4).red_or(), Logic::bit(false));
        assert_eq!(Logic::from_u128(4, 0b0111).red_xor(), Logic::bit(true));
        // X with a known-0 bit: reduction AND is still definitely 0.
        let x0 = Logic::from_planes(4, 0b0000, 0b1000);
        assert_eq!(x0.red_and(), Logic::bit(false));
        assert!(x0.red_or().to_u128().is_none());
    }

    #[test]
    fn concat_and_merge() {
        let hi = Logic::from_u128(4, 0xA);
        let lo = Logic::from_u128(4, 0x5);
        assert_eq!(Logic::concat(hi, lo).to_u128(), Some(0xA5));
        let a = Logic::from_u128(4, 0b1010);
        let b = Logic::from_u128(4, 0b1000);
        let m = a.merge(&b, 4);
        assert_eq!(m.get_bit(3).to_u128(), Some(1));
        assert!(m.get_bit(1).to_u128().is_none());
    }

    #[test]
    fn wildcard_matching() {
        let sel = Logic::from_u128(4, 0b1011);
        // casez: z/? in label is wild.
        let label = Logic::from_planes(4, 0b1011, 0b0011) // 10zz
            ;
        assert!(sel.wildcard_eq(&label, false));
        // casex: x in label also wild.
        let xlabel = Logic::from_planes(4, 0b1000, 0b0011); // 10xx
        assert!(!sel.wildcard_eq(&xlabel, false));
        assert!(sel.wildcard_eq(&xlabel, true));
    }

    #[test]
    fn display_format() {
        assert_eq!(Logic::from_u128(8, 0x1a).to_string(), "8'h1a");
        let x = Logic::from_planes(4, 0b1010, 0b0001);
        assert_eq!(x.to_string(), "4'b101x");
    }

    #[test]
    fn ternary_condition_merge_path() {
        let cond = Logic::xs(1);
        assert_eq!(cond.truthiness(), Tri::Unknown);
    }

    #[test]
    fn concat_at_the_width_cap() {
        // `lo` occupies the full arena: `hi` is dropped entirely (this
        // used to panic in debug builds via a 128-bit shift).
        let lo = Logic::from_u128(128, 0x1234);
        let c = Logic::concat(Logic::ones(8), lo);
        assert_eq!(c.width(), 128);
        assert_eq!(c.to_u128(), Some(0x1234));

        // Overflowing concat keeps the low 128 bits; `hi`'s dropped X
        // bits must not reappear anywhere in the result.
        let hi = Logic::from_planes(16, 0, 0xff00); // upper 8 bits X
        let lo = Logic::from_u128(120, 0xABCD);
        let c = Logic::concat(hi, lo);
        assert_eq!(c.width(), 128);
        assert_eq!(c.get_slice(0, 120).to_u128(), Some(0xABCD));
        // The 8 bits of `hi` that fit are its known-zero low bits.
        assert_eq!(c.get_slice(120, 8), Logic::zeros(8));
    }

    #[test]
    fn ashr_fills_from_operand_sign_position() {
        // 8-bit negative operand in a 16-bit context: the replicated
        // sign bits sit just below bit 8, not at the top of the context.
        let v = Logic::from_u128(8, 0x80);
        assert_eq!(v.ashr(&Logic::from_u128(4, 3), 16).to_u128(), Some(0x00F0));
        // Positive operand: plain logical shift.
        let p = Logic::from_u128(8, 0x40);
        assert_eq!(p.ashr(&Logic::from_u128(4, 3), 16).to_u128(), Some(0x08));
        // Unknown sign bit: the fill positions become X (not Z, not 1).
        let u = Logic::from_planes(8, 0, 0x80);
        let r = u.ashr(&Logic::from_u128(4, 2), 16);
        assert_eq!(r.get_slice(6, 2), Logic::xs(2));
        assert_eq!(r.get_slice(8, 8), Logic::zeros(8));
    }

    #[test]
    fn ashr_ieee_regressions() {
        // IEEE 1364 `>>>`: an all-ones (negative) operand stays all-ones
        // for every shift count, including past the width.
        let neg1 = Logic::from_u128(8, 0xFF);
        for k in 0..=10u128 {
            assert_eq!(neg1.ashr(&Logic::from_u128(8, k), 8).to_u128(), Some(0xFF), "sh={k}");
        }
        let min = Logic::from_u128(8, 0x80);
        assert_eq!(min.ashr(&Logic::from_u128(8, 7), 8).to_u128(), Some(0xFF));
        assert_eq!(min.ashr(&Logic::from_u128(8, 8), 8).to_u128(), Some(0xFF));
        // Shift counts saturate at the operand width.
        assert_eq!(min.ashr(&Logic::from_u128(8, 200), 8).to_u128(), Some(0xFF));
    }

    #[test]
    fn shl_preserves_x_plane_under_known_shift() {
        // 4'b10x0 << 2 keeps the X at its shifted position.
        let v = Logic::from_planes(4, 0b1000, 0b0010);
        let r = v.shl(&Logic::from_u128(3, 2), 8);
        assert_eq!(r.get_bit(5).to_u128(), Some(1));
        assert!(r.get_bit(3).to_u128().is_none());
        assert_eq!(r.get_slice(0, 3), Logic::zeros(3));
        // X bits pushed past the arena vanish instead of wrapping.
        let top_x = Logic::from_planes(128, 0, 1 << 127);
        assert_eq!(top_x.shl(&Logic::from_u128(8, 1), 128), Logic::zeros(128));
        // Shift counts >= 128 flush everything out, X included.
        assert_eq!(Logic::xs(128).shl(&Logic::from_u128(32, 500), 64), Logic::zeros(64));
    }
}
