//! The compiled levelized simulation kernel.
//!
//! [`CompiledSim`] executes a [`CompiledDesign`] behind the same
//! poke/settle/peek/waveform surface as the event-driven
//! [`crate::Simulator`] (both implement [`crate::SimControl`]), with a
//! different execution strategy:
//!
//! * state lives in two flat structure-of-arrays `u128` planes (value
//!   and X/Z) indexed by precompiled arena slots — no per-signal
//!   vectors, no `Logic` structs at rest;
//! * a poke marks sensitive combinational processes *dirty* and a
//!   settle sweep executes them in topological level order, so every
//!   process runs at most once per sweep instead of once per delta
//!   event (acyclic designs settle in a single sweep);
//! * expressions take a **two-state fast path**: while every value a
//!   statement reads is fully known (the overwhelmingly common case
//!   after reset), evaluation is plain masked `u128` arithmetic that
//!   never touches the X/Z truth tables. Any X/Z operand — or an
//!   X-producing operation such as division by zero or an out-of-range
//!   index — falls back to the shared four-state evaluator
//!   ([`crate::eval::eval`]), so the two kernels are waveform-identical
//!   by construction where values are known and by the differential
//!   test suite where they are not;
//! * processes marked two-state safe at **compile time**
//!   ([`CompiledDesign::two_state`]: no X-generating operation anywhere
//!   in the body) skip even the per-read X/Z probe whenever the arena
//!   currently holds zero unknown bits — the kernel keeps an exact
//!   count of X/Z-carrying slots, so the check is one integer compare
//!   per process activation instead of one branch per operand read;
//! * [`CompiledSim::reset_state`] rewinds the value arena to its
//!   post-construction snapshot in two `memcpy`s, so harnesses that run
//!   many campaigns over one design (the six metric runs of a campaign
//!   job) reuse one instance instead of recompiling/re-instantiating —
//!   see [`crate::cache::checkout_sim`].
//!
//! Blocking/non-blocking regions, edge detection, the
//! process-misses-its-own-events rule and the [`MAX_ACTIVATIONS`]
//! oscillation cap all mirror the event-driven engine exactly.

use crate::compile::CompiledDesign;
use crate::elab::{Design, LExpr, LExprKind, LStmt, LTarget, SignalId};
use crate::eval::{case_matches, eval, ValueReader};
use crate::logic::{mask, Logic, Tri};
use crate::sched::{SimError, MAX_ACTIVATIONS};
use std::sync::Arc;
use uvllm_verilog::ast::{BinaryOp, Edge, UnaryOp};

/// One resolved write (mirrors the event engine's write record).
#[derive(Debug, Clone)]
struct Write {
    signal: SignalId,
    word: u64,
    lsb: u32,
    value: Logic,
}

/// A compiled-kernel simulation over a [`CompiledDesign`].
#[derive(Debug, Clone)]
pub struct CompiledSim {
    cd: Arc<CompiledDesign>,
    /// Value plane per arena slot.
    val: Vec<u128>,
    /// X/Z plane per arena slot (bit set = unknown).
    xz: Vec<u128>,
    /// Snapshot of both planes right after time-zero initialisation —
    /// what [`CompiledSim::reset_state`] rewinds to. Shared across
    /// clones (the snapshot is immutable).
    init_val: Arc<[u128]>,
    init_xz: Arc<[u128]>,
    /// Exact number of arena slots whose X/Z plane is non-zero. When it
    /// is 0, compile-time-marked processes run fully unchecked.
    xz_slots: usize,
    init_xz_slots: usize,
    /// Dirty flag per process (combinational processes only).
    dirty: Vec<bool>,
    dirty_count: usize,
    /// Edge-triggered processes fired but not yet executed (FIFO).
    seq_fired: Vec<u32>,
    /// Spare buffer ping-ponged with `seq_fired` while a batch executes
    /// (capacity survives, so clock edges allocate nothing).
    seq_scratch: Vec<u32>,
    /// Reusable write buffer (assignments are the hot loop; resolving a
    /// target must not allocate in the steady state).
    scratch: Vec<Write>,
    /// Reusable non-blocking-assignment queue (same rationale).
    nba_scratch: Vec<Write>,
    time: u64,
    /// Registry handles, resolved once at construction
    /// (`sim.compiled.*`); [`CompiledSim::run`] flushes locally
    /// accumulated tallies through them per settle.
    metrics: &'static crate::metrics::CompiledKernelMetrics,
}

/// Per-settle tallies, accumulated in locals and flushed once.
#[derive(Debug, Default)]
struct RunTally {
    fast: u64,
    slow: u64,
    nba_commits: u64,
}

/// Four-state fallback view over the arena.
struct ArenaView<'a> {
    cd: &'a CompiledDesign,
    val: &'a [u128],
    xz: &'a [u128],
}

impl ValueReader for ArenaView<'_> {
    fn read(&self, id: SignalId) -> Logic {
        let slot = self.cd.slot(id);
        Logic::from_planes(self.cd.design().signal(id).width, self.val[slot], self.xz[slot])
    }
    fn read_word(&self, id: SignalId, index: u64) -> Logic {
        let info = self.cd.design().signal(id);
        if index < info.words as u64 {
            let slot = self.cd.slot(id) + index as usize;
            Logic::from_planes(info.width, self.val[slot], self.xz[slot])
        } else {
            Logic::xs(info.width)
        }
    }
    fn word_count(&self, id: SignalId) -> u64 {
        self.cd.design().signal(id).words as u64
    }
    fn width(&self, id: SignalId) -> u32 {
        self.cd.design().signal(id).width
    }
}

impl CompiledSim {
    /// Builds a simulation over an already-compiled design (the cheap
    /// path for cached compilations; fresh callers wrap their design in
    /// [`CompiledDesign::from_arc`] — nothing clones it).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if the design oscillates at time 0.
    pub fn from_compiled(cd: Arc<CompiledDesign>) -> Result<CompiledSim, SimError> {
        let mut val = Vec::with_capacity(cd.arena_len());
        let mut xz = Vec::with_capacity(cd.arena_len());
        let mut xz_slots = 0usize;
        for info in cd.design().signals() {
            for _ in 0..info.words {
                val.push(0);
                xz.push(mask(info.width));
                xz_slots += 1;
            }
        }
        let nprocs = cd.design().processes().len();
        let mut sim = CompiledSim {
            cd,
            val,
            xz,
            init_val: Arc::from(Vec::new()),
            init_xz: Arc::from(Vec::new()),
            xz_slots,
            init_xz_slots: 0,
            dirty: vec![false; nprocs],
            dirty_count: 0,
            seq_fired: Vec::new(),
            seq_scratch: Vec::new(),
            scratch: Vec::new(),
            nba_scratch: Vec::new(),
            time: 0,
            metrics: crate::metrics::compiled_kernel(),
        };
        sim.initialise()?;
        sim.init_val = Arc::from(sim.val.clone());
        sim.init_xz = Arc::from(sim.xz.clone());
        sim.init_xz_slots = sim.xz_slots;
        Ok(sim)
    }

    fn initialise(&mut self) -> Result<(), SimError> {
        let cd = Arc::clone(&self.cd);
        let mut nba = Vec::new();
        // Run initial blocks, then every combinational process once so
        // nets acquire their driven values (as the event engine does).
        for &pid in cd.initial_pids() {
            self.exec::<false>(
                &cd,
                &cd.design().processes()[pid as usize].body,
                &mut nba,
                Some(pid),
            );
        }
        for &pid in cd.comb_order() {
            self.mark_dirty(pid);
        }
        self.run(&cd, &mut nba)
    }

    /// Rewinds the simulation to the exact state it had right after
    /// construction (post `initial` blocks and time-zero settle): two
    /// plane copies, cleared scheduling queues, time 0. A reset
    /// instance is indistinguishable from a freshly built one — the
    /// contract that lets [`crate::cache::checkout_sim`] hand the same
    /// instance to run after run without breaking campaign determinism.
    pub fn reset_state(&mut self) {
        self.val.copy_from_slice(&self.init_val);
        self.xz.copy_from_slice(&self.init_xz);
        self.xz_slots = self.init_xz_slots;
        // Queues are empty after any completed run; a run that aborted
        // mid-settle (oscillation) can leave them populated.
        self.dirty.fill(false);
        self.dirty_count = 0;
        self.seq_fired.clear();
        self.seq_scratch.clear();
        self.nba_scratch.clear();
        self.time = 0;
    }

    /// The compiled design being simulated.
    pub fn compiled(&self) -> &CompiledDesign {
        &self.cd
    }

    /// The elaborated design being simulated.
    pub fn design(&self) -> &Design {
        self.cd.design()
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Sets the simulation time (monotonically increased by harnesses).
    pub fn set_time(&mut self, time: u64) {
        self.time = time;
    }

    /// Number of arena slots currently carrying X/Z bits (0 means every
    /// signal word is fully known — the two-state regime).
    pub fn unknown_slots(&self) -> usize {
        self.xz_slots
    }

    /// Reads the current value of `id`.
    pub fn peek(&self, id: SignalId) -> Logic {
        let slot = self.cd.slot(id);
        Logic::from_planes(self.cd.design().signal(id).width, self.val[slot], self.xz[slot])
    }

    /// Reads word `index` of an array signal (all-X when out of range).
    pub fn peek_word(&self, id: SignalId, index: u64) -> Logic {
        let info = self.cd.design().signal(id);
        if index < info.words as u64 {
            let slot = self.cd.slot(id) + index as usize;
            Logic::from_planes(info.width, self.val[slot], self.xz[slot])
        } else {
            Logic::xs(info.width)
        }
    }

    /// Stores both planes of one slot, keeping the unknown-slot count
    /// exact (the invariant behind the compile-time two-state path).
    #[inline]
    fn store(&mut self, slot: usize, val: u128, xz: u128) {
        self.xz_slots += (xz != 0) as usize;
        self.xz_slots -= (self.xz[slot] != 0) as usize;
        self.val[slot] = val;
        self.xz[slot] = xz;
    }

    /// Drives `id` to `value` and propagates until quiescent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational oscillation.
    pub fn poke(&mut self, id: SignalId, value: Logic) -> Result<(), SimError> {
        let info = self.cd.design().signal(id);
        let value = value.resize(info.width);
        let slot = self.cd.slot(id);
        let old = Logic::from_planes(info.width, self.val[slot], self.xz[slot]);
        if old == value {
            return Ok(());
        }
        self.store(slot, value.val(), value.xz());
        let cd = Arc::clone(&self.cd);
        self.mark_triggered(&cd, id, old, value, None);
        self.run_with_scratch(&cd)
    }

    /// Runs the delta-cycle driver with the reusable NBA queue. The
    /// queue is always restored *empty*: a successful run drains it,
    /// and an `Unstable` abort must not leave stale non-blocking
    /// writes to be applied by a later run (or by a rewound pooled
    /// instance).
    fn run_with_scratch(&mut self, cd: &Arc<CompiledDesign>) -> Result<(), SimError> {
        let mut nba = std::mem::take(&mut self.nba_scratch);
        let result = self.run(cd, &mut nba);
        nba.clear();
        self.nba_scratch = nba;
        result
    }

    /// Propagates pending activity until the design is quiescent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational oscillation.
    pub fn settle(&mut self) -> Result<(), SimError> {
        let cd = Arc::clone(&self.cd);
        self.run_with_scratch(&cd)
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    fn mark_dirty(&mut self, pid: u32) {
        if !self.dirty[pid as usize] {
            self.dirty[pid as usize] = true;
            self.dirty_count += 1;
        }
    }

    /// Executes one process body, choosing the evaluation regime per
    /// activation: compile-time-marked bodies run fully unchecked while
    /// the arena holds no unknown bits. Returns whether the unchecked
    /// two-state fast path was taken (tallied by the caller).
    #[inline]
    fn exec_process(&mut self, cd: &Arc<CompiledDesign>, pid: u32, nba: &mut Vec<Write>) -> bool {
        let body = &cd.design().processes()[pid as usize].body;
        let fast = self.xz_slots == 0 && cd.two_state(pid);
        if fast {
            self.exec::<true>(cd, body, nba, Some(pid));
        } else {
            self.exec::<false>(cd, body, nba, Some(pid));
        }
        fast
    }

    /// Delta-cycle driver: levelized combinational sweeps, then fired
    /// edge processes, then the non-blocking assignment region, looping
    /// until nothing is pending. The NBA queue is caller-provided
    /// scratch so the steady state allocates nothing.
    fn run(&mut self, cd: &Arc<CompiledDesign>, nba: &mut Vec<Write>) -> Result<(), SimError> {
        let mut tally = RunTally::default();
        let result = self.run_inner(cd, nba, &mut tally);
        // Flush the tallies: O(1) relaxed atomic adds per settle, no
        // per-activation shared-cache-line traffic across workers.
        let metrics = self.metrics;
        metrics.settles.inc();
        if tally.fast > 0 {
            metrics.fastpath_hits.add(tally.fast);
        }
        if tally.slow > 0 {
            metrics.fallback_hits.add(tally.slow);
        }
        if tally.nba_commits > 0 {
            metrics.nba_commits.add(tally.nba_commits);
        }
        result
    }

    fn run_inner(
        &mut self,
        cd: &Arc<CompiledDesign>,
        nba: &mut Vec<Write>,
        tally: &mut RunTally,
    ) -> Result<(), SimError> {
        let mut activations = 0usize;
        loop {
            while self.dirty_count > 0 {
                for &pid in cd.comb_order() {
                    if !self.dirty[pid as usize] {
                        continue;
                    }
                    self.dirty[pid as usize] = false;
                    self.dirty_count -= 1;
                    if activations == MAX_ACTIVATIONS {
                        return Err(SimError::Unstable { activations });
                    }
                    activations += 1;
                    if self.exec_process(cd, pid, nba) {
                        tally.fast += 1;
                    } else {
                        tally.slow += 1;
                    }
                }
            }
            if !self.seq_fired.is_empty() {
                // Swap in the spare buffer: processes executed from the
                // batch may fire further edge processes into the (now
                // empty) `seq_fired`; both capacities survive the swap.
                let mut batch =
                    std::mem::replace(&mut self.seq_fired, std::mem::take(&mut self.seq_scratch));
                for &pid in &batch {
                    if activations == MAX_ACTIVATIONS {
                        batch.clear();
                        self.seq_scratch = batch;
                        return Err(SimError::Unstable { activations });
                    }
                    activations += 1;
                    if self.exec_process(cd, pid, nba) {
                        tally.fast += 1;
                    } else {
                        tally.slow += 1;
                    }
                }
                batch.clear();
                self.seq_scratch = batch;
                continue;
            }
            if !nba.is_empty() {
                // Non-blocking region: apply queued writes; no process
                // is running, so nothing misses its own events. Only
                // `exec` queues NBAs, so the list is stable while we
                // iterate, and clearing (not taking) it keeps its
                // capacity for the next cycle.
                tally.nba_commits += nba.len() as u64;
                for w in nba.iter() {
                    self.apply_write(cd, w, None);
                }
                nba.clear();
                continue;
            }
            return Ok(());
        }
    }

    fn exec<const FAST: bool>(
        &mut self,
        cd: &Arc<CompiledDesign>,
        stmt: &LStmt,
        nba: &mut Vec<Write>,
        current: Option<u32>,
    ) {
        match stmt {
            LStmt::Block(stmts) => {
                for s in stmts {
                    self.exec::<FAST>(cd, s, nba, current);
                }
            }
            LStmt::Assign { lhs, rhs, blocking, .. } => {
                let width = lhs.width(cd.design()).max(1);
                let value = self.eval_any::<FAST>(rhs, width).resize(width);
                let mut writes = std::mem::take(&mut self.scratch);
                writes.clear();
                self.resolve_target::<FAST>(cd, lhs, value, &mut writes);
                if *blocking {
                    for w in &writes {
                        self.apply_write(cd, w, current);
                    }
                } else {
                    nba.append(&mut writes);
                }
                writes.clear();
                self.scratch = writes;
            }
            LStmt::If { cond, then_branch, else_branch, .. } => {
                match self.truthiness_of::<FAST>(cond) {
                    Tri::True => self.exec::<FAST>(cd, then_branch, nba, current),
                    Tri::False => {
                        if let Some(e) = else_branch {
                            self.exec::<FAST>(cd, e, nba, current);
                        }
                    }
                    // Unknown condition: neither branch (X-conservative,
                    // as in the event engine).
                    Tri::Unknown => {}
                }
            }
            LStmt::Case { kind, expr, arms, default, .. } => {
                let sel = self.eval_any::<FAST>(expr, expr.width);
                for (labels, body) in arms {
                    for label in labels {
                        let lv = self.eval_any::<FAST>(label, label.width);
                        if case_matches(*kind, &sel, &lv) {
                            self.exec::<FAST>(cd, body, nba, current);
                            return;
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec::<FAST>(cd, d, nba, current);
                }
            }
            LStmt::Nop => {}
        }
    }

    /// Resolves a target into concrete writes, slicing `value`
    /// most-significant-first across concatenations (mirrors the event
    /// engine).
    fn resolve_target<const FAST: bool>(
        &self,
        cd: &CompiledDesign,
        target: &LTarget,
        value: Logic,
        out: &mut Vec<Write>,
    ) {
        match target {
            LTarget::Whole(s) => {
                let w = cd.design().signal(*s).width;
                out.push(Write { signal: *s, word: 0, lsb: 0, value: value.resize(w) });
            }
            LTarget::Bit(s, index) => {
                if let Some(i) = self.eval_index::<FAST>(index) {
                    if i < cd.design().signal(*s).width as u128 {
                        out.push(Write {
                            signal: *s,
                            word: 0,
                            lsb: i as u32,
                            value: value.resize(1),
                        });
                    }
                }
                // X/Z or out-of-range index: write is dropped.
            }
            LTarget::Part(s, off, w) => {
                out.push(Write { signal: *s, word: 0, lsb: *off, value: value.resize(*w) });
            }
            LTarget::Word(s, index) => {
                if let Some(i) = self.eval_index::<FAST>(index) {
                    if (i as u64) < cd.design().signal(*s).words as u64 {
                        let w = cd.design().signal(*s).width;
                        out.push(Write {
                            signal: *s,
                            word: i as u64,
                            lsb: 0,
                            value: value.resize(w),
                        });
                    }
                }
            }
            LTarget::Concat(parts) => {
                let total: u32 = parts.iter().map(|p| p.width(cd.design())).sum();
                let mut consumed = 0;
                for p in parts {
                    let pw = p.width(cd.design());
                    let lsb = total - consumed - pw;
                    self.resolve_target::<FAST>(cd, p, value.get_slice(lsb, pw), out);
                    consumed += pw;
                }
            }
        }
    }

    fn apply_write(&mut self, cd: &Arc<CompiledDesign>, w: &Write, current: Option<u32>) {
        let info = cd.design().signal(w.signal);
        if w.word >= info.words as u64 {
            return;
        }
        let slot = cd.slot(w.signal) + w.word as usize;
        let old = Logic::from_planes(info.width, self.val[slot], self.xz[slot]);
        let updated = if w.lsb == 0 && w.value.width() == old.width() {
            w.value
        } else {
            let mut u = old;
            u.set_slice(w.lsb, w.value);
            u
        };
        if updated == old {
            return;
        }
        self.store(slot, updated.val(), updated.xz());
        self.mark_triggered(cd, w.signal, old, updated, current);
    }

    /// Dirties combinational dependents and fires edge-triggered
    /// processes for a `signal` transition, skipping the running process
    /// (a process misses its own events, IEEE 1364).
    fn mark_triggered(
        &mut self,
        cd: &Arc<CompiledDesign>,
        signal: SignalId,
        old: Logic,
        new: Logic,
        current: Option<u32>,
    ) {
        for &pid in cd.comb_sensitive(signal) {
            if Some(pid) != current {
                self.mark_dirty(pid);
            }
        }
        let seq = cd.seq_sensitive(signal);
        if seq.is_empty() {
            return;
        }
        let old_b = old.get_bit(0);
        let new_b = new.get_bit(0);
        let is1 = |l: &Logic| l.truthiness() == Tri::True;
        let is0 = |l: &Logic| l.to_u128() == Some(0);
        for (pid, edge) in seq {
            let fire = match edge {
                Some(Edge::Pos) => !is1(&old_b) && is1(&new_b),
                Some(Edge::Neg) => !is0(&old_b) && is0(&new_b),
                None => true,
            };
            if fire && Some(*pid) != current {
                self.seq_fired.push(*pid);
            }
        }
    }

    // ------------------------------------------------------------------
    // Expression evaluation: two-state fast path + four-state fallback
    // ------------------------------------------------------------------

    fn view(&self) -> ArenaView<'_> {
        ArenaView { cd: &self.cd, val: &self.val, xz: &self.xz }
    }

    /// Evaluates `e` at context width `ctx`. With `FAST` (compile-time
    /// two-state process, arena fully known) the X/Z probes compile
    /// away entirely; otherwise the two-state path is attempted and any
    /// unknown falls back to the four-state evaluator.
    fn eval_any<const FAST: bool>(&self, e: &LExpr, ctx: u32) -> Logic {
        debug_assert!(!FAST || self.xz_slots == 0, "FAST eval outside the two-state regime");
        let w = ctx.max(e.width).max(1);
        match self.eval2::<FAST>(e, ctx) {
            Some(v) => Logic::from_u128(w, v),
            None => eval(&self.view(), e, ctx),
        }
    }

    /// Evaluates a (self-determined) index expression to a known value.
    fn eval_index<const FAST: bool>(&self, index: &LExpr) -> Option<u128> {
        self.eval2::<FAST>(index, index.width)
            .or_else(|| eval(&self.view(), index, index.width).to_u128())
    }

    /// Truthiness of a condition without materialising a `Logic` on the
    /// fast path.
    fn truthiness_of<const FAST: bool>(&self, cond: &LExpr) -> Tri {
        match self.eval2::<FAST>(cond, cond.width) {
            Some(0) => Tri::False,
            Some(_) => Tri::True,
            None => eval(&self.view(), cond, cond.width).truthiness(),
        }
    }

    /// Fully-known slot read: `None` when any bit is X/Z. With
    /// `UNCHECKED` the probe is elided — sound only inside a
    /// compile-time-marked process while [`CompiledSim::unknown_slots`]
    /// is zero.
    #[inline]
    fn read2<const UNCHECKED: bool>(&self, s: SignalId, word: usize) -> Option<u128> {
        let slot = self.cd.slot(s) + word;
        if !UNCHECKED && self.xz[slot] != 0 {
            return None;
        }
        debug_assert_eq!(self.xz[slot], 0, "unchecked read of an X/Z slot");
        Some(self.val[slot])
    }

    /// The two-state fast path: masked `u128` evaluation mirroring
    /// [`eval`]'s width semantics exactly. Returns `None` as soon as any
    /// operand carries X/Z bits or an operation would produce X (the
    /// caller then re-evaluates four-state). With `UNCHECKED` the
    /// per-read probes vanish and — for bodies the compiler marked
    /// two-state safe — the `None` arms are statically unreachable.
    fn eval2<const UNCHECKED: bool>(&self, e: &LExpr, ctx: u32) -> Option<u128> {
        let w = ctx.max(e.width).max(1);
        Some(match &e.kind {
            LExprKind::Const(l) => {
                if l.xz() != 0 {
                    return None;
                }
                l.val()
            }
            LExprKind::Sig(s) => self.read2::<UNCHECKED>(*s, 0)?,
            LExprKind::Word(s, index) => {
                let i = self.eval2::<UNCHECKED>(index, index.width)?;
                if i >= self.cd.design().signal(*s).words as u128 {
                    return None;
                }
                self.read2::<UNCHECKED>(*s, i as usize)?
            }
            LExprKind::BitSel(s, index) => {
                let i = self.eval2::<UNCHECKED>(index, index.width)?;
                if i >= self.cd.design().signal(*s).width as u128 {
                    return None;
                }
                (self.read2::<UNCHECKED>(*s, 0)? >> i) & 1
            }
            LExprKind::PartSel(s, off) => {
                // Out-of-range slice bits are X: punt to four-state.
                if off + e.width > self.cd.design().signal(*s).width {
                    return None;
                }
                (self.read2::<UNCHECKED>(*s, 0)? >> off) & mask(e.width)
            }
            LExprKind::Unary(op, a) => match op {
                UnaryOp::LogNot => (self.eval2::<UNCHECKED>(a, a.width)? == 0) as u128,
                UnaryOp::BitNot => !self.eval2::<UNCHECKED>(a, w)? & mask(w),
                UnaryOp::Neg => self.eval2::<UNCHECKED>(a, w)?.wrapping_neg() & mask(w),
                UnaryOp::Plus => self.eval2::<UNCHECKED>(a, w)?,
                UnaryOp::RedAnd => {
                    (self.eval2::<UNCHECKED>(a, a.width)? == mask(a.width.max(1))) as u128
                }
                UnaryOp::RedOr => (self.eval2::<UNCHECKED>(a, a.width)? != 0) as u128,
                UnaryOp::RedXor => {
                    (self.eval2::<UNCHECKED>(a, a.width)?.count_ones() % 2 == 1) as u128
                }
                UnaryOp::RedNand => {
                    (self.eval2::<UNCHECKED>(a, a.width)? != mask(a.width.max(1))) as u128
                }
                UnaryOp::RedNor => (self.eval2::<UNCHECKED>(a, a.width)? == 0) as u128,
                UnaryOp::RedXnor => {
                    (self.eval2::<UNCHECKED>(a, a.width)?.count_ones() % 2 == 0) as u128
                }
            },
            LExprKind::Binary(op, a, b) => self.eval2_binary::<UNCHECKED>(*op, a, b, w)?,
            LExprKind::Ternary(c, t, f) => {
                if self.eval2::<UNCHECKED>(c, c.width)? != 0 {
                    self.eval2::<UNCHECKED>(t, w)?
                } else {
                    self.eval2::<UNCHECKED>(f, w)?
                }
            }
            LExprKind::Concat(items) => {
                // Word-parallel for any total width, including the
                // truncating >128-bit case: `Logic::concat` keeps the
                // low 128 bits (an item of width 128 displaces the
                // accumulated high bits entirely), and shifting the
                // u128 accumulator reproduces exactly that — high bits
                // fall off the top, wide datapaths stay on the fast
                // path instead of re-evaluating four-state.
                let mut acc = 0u128;
                for item in items {
                    let iw = item.width.max(1);
                    let v = self.eval2::<UNCHECKED>(item, item.width)? & mask(iw);
                    acc = if iw >= 128 { v } else { (acc << iw) | v };
                }
                acc & mask(w)
            }
        })
    }

    fn eval2_binary<const UNCHECKED: bool>(
        &self,
        op: BinaryOp,
        a: &LExpr,
        b: &LExpr,
        w: u32,
    ) -> Option<u128> {
        use BinaryOp::*;
        Some(match op {
            Add => {
                self.eval2::<UNCHECKED>(a, w)?.wrapping_add(self.eval2::<UNCHECKED>(b, w)?)
                    & mask(w)
            }
            Sub => {
                self.eval2::<UNCHECKED>(a, w)?.wrapping_sub(self.eval2::<UNCHECKED>(b, w)?)
                    & mask(w)
            }
            Mul => {
                self.eval2::<UNCHECKED>(a, w)?.wrapping_mul(self.eval2::<UNCHECKED>(b, w)?)
                    & mask(w)
            }
            Div => {
                let y = self.eval2::<UNCHECKED>(b, w)?;
                if y == 0 {
                    return None; // division by zero is X
                }
                (self.eval2::<UNCHECKED>(a, w)? / y) & mask(w)
            }
            Mod => {
                let y = self.eval2::<UNCHECKED>(b, w)?;
                if y == 0 {
                    return None;
                }
                (self.eval2::<UNCHECKED>(a, w)? % y) & mask(w)
            }
            Pow => {
                let x = self.eval2::<UNCHECKED>(a, w)?;
                let y = self.eval2::<UNCHECKED>(b, b.width)?;
                let mut acc: u128 = 1;
                for _ in 0..y.min(128) {
                    acc = acc.wrapping_mul(x);
                }
                acc & mask(w)
            }
            Shl => {
                let x = self.eval2::<UNCHECKED>(a, w)?;
                let sh = self.eval2::<UNCHECKED>(b, b.width)?;
                if sh >= 128 {
                    0
                } else {
                    (x << sh) & mask(w)
                }
            }
            Shr => {
                let x = self.eval2::<UNCHECKED>(a, w)?;
                let sh = self.eval2::<UNCHECKED>(b, b.width)?;
                if sh >= 128 {
                    0
                } else {
                    x >> sh
                }
            }
            AShr => {
                // The operand is context-sized to `w` first, so its
                // sign bit is bit `w - 1` (mirrors `Logic::ashr`).
                let x = self.eval2::<UNCHECKED>(a, w)?;
                let sh = self.eval2::<UNCHECKED>(b, b.width)?;
                let shifted = if sh >= 128 { 0 } else { x >> sh };
                let eff = sh.min(w as u128) as u32;
                if eff > 0 && (x >> (w - 1)) & 1 == 1 {
                    (shifted | (mask(eff) << (w - eff))) & mask(w)
                } else {
                    shifted
                }
            }
            Lt | Le | Gt | Ge => {
                let ow = a.width.max(b.width);
                let x = self.eval2::<UNCHECKED>(a, ow)?;
                let y = self.eval2::<UNCHECKED>(b, ow)?;
                (match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    _ => x >= y,
                }) as u128
            }
            Eq | CaseEq => {
                let ow = a.width.max(b.width);
                (self.eval2::<UNCHECKED>(a, ow)? == self.eval2::<UNCHECKED>(b, ow)?) as u128
            }
            Ne | CaseNe => {
                let ow = a.width.max(b.width);
                (self.eval2::<UNCHECKED>(a, ow)? != self.eval2::<UNCHECKED>(b, ow)?) as u128
            }
            LogAnd => {
                ((self.eval2::<UNCHECKED>(a, a.width)? != 0)
                    && (self.eval2::<UNCHECKED>(b, b.width)? != 0)) as u128
            }
            LogOr => {
                ((self.eval2::<UNCHECKED>(a, a.width)? != 0)
                    || (self.eval2::<UNCHECKED>(b, b.width)? != 0)) as u128
            }
            BitAnd => self.eval2::<UNCHECKED>(a, w)? & self.eval2::<UNCHECKED>(b, w)?,
            BitOr => self.eval2::<UNCHECKED>(a, w)? | self.eval2::<UNCHECKED>(b, w)?,
            BitXor => self.eval2::<UNCHECKED>(a, w)? ^ self.eval2::<UNCHECKED>(b, w)?,
            BitXnor => !(self.eval2::<UNCHECKED>(a, w)? ^ self.eval2::<UNCHECKED>(b, w)?) & mask(w),
        })
    }
}

impl crate::backend::SimControl for CompiledSim {
    fn design(&self) -> &Design {
        CompiledSim::design(self)
    }
    fn time(&self) -> u64 {
        CompiledSim::time(self)
    }
    fn set_time(&mut self, time: u64) {
        CompiledSim::set_time(self, time);
    }
    fn peek(&self, id: SignalId) -> Logic {
        CompiledSim::peek(self, id)
    }
    fn peek_word(&self, id: SignalId, index: u64) -> Logic {
        CompiledSim::peek_word(self, id, index)
    }
    fn poke(&mut self, id: SignalId, value: Logic) -> Result<(), SimError> {
        CompiledSim::poke(self, id, value)
    }
    fn settle(&mut self) -> Result<(), SimError> {
        CompiledSim::settle(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimControl;
    use crate::elab::elaborate;
    use crate::sched::Simulator;
    use uvllm_verilog::parse;

    fn compiled(design: &Arc<Design>) -> Result<CompiledSim, SimError> {
        CompiledSim::from_compiled(Arc::new(CompiledDesign::from_arc(Arc::clone(design))))
    }

    fn both(src: &str) -> (Simulator, CompiledSim) {
        let file = parse(src).unwrap();
        let top = &file.top().unwrap().name;
        let design = Arc::new(elaborate(&file, top).unwrap());
        (Simulator::from_arc(Arc::clone(&design)).unwrap(), compiled(&design).unwrap())
    }

    /// Pokes both kernels identically and asserts every signal word
    /// matches afterwards.
    fn poke_both(ev: &mut Simulator, cp: &mut CompiledSim, name: &str, v: Logic) {
        ev.poke_by_name(name, v).unwrap();
        SimControl::poke_by_name(cp, name, v).unwrap();
        assert_signals_match(ev, cp);
    }

    fn assert_signals_match(ev: &Simulator, cp: &CompiledSim) {
        for (i, info) in ev.design().signals().iter().enumerate() {
            let id = SignalId(i as u32);
            for word in 0..info.words as u64 {
                assert_eq!(
                    ev.peek_word(id, word),
                    cp.peek_word(id, word),
                    "signal {} word {word} diverged",
                    info.name
                );
            }
        }
    }

    #[test]
    fn combinational_chain_matches_event_engine() {
        let (mut ev, mut cp) = both(
            "module m(input [7:0] a, input [7:0] b, output [8:0] s, output [7:0] n);\n\
             assign s = a + b;\nassign n = ~a;\nendmodule\n",
        );
        assert_signals_match(&ev, &cp);
        poke_both(&mut ev, &mut cp, "a", Logic::from_u128(8, 200));
        poke_both(&mut ev, &mut cp, "b", Logic::from_u128(8, 100));
        assert_eq!(cp.peek(cp.design().signal_id("s").unwrap()).to_u128(), Some(300));
    }

    #[test]
    fn clocked_counter_matches_event_engine() {
        let (mut ev, mut cp) = both(
            "module c(input clk, input rst_n, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\nend\nendmodule\n",
        );
        poke_both(&mut ev, &mut cp, "clk", Logic::bit(false));
        poke_both(&mut ev, &mut cp, "rst_n", Logic::bit(false));
        poke_both(&mut ev, &mut cp, "rst_n", Logic::bit(true));
        for _ in 0..9 {
            poke_both(&mut ev, &mut cp, "clk", Logic::bit(true));
            poke_both(&mut ev, &mut cp, "clk", Logic::bit(false));
        }
        assert_eq!(cp.peek(cp.design().signal_id("q").unwrap()).to_u128(), Some(9));
    }

    #[test]
    fn memory_and_x_propagation_match() {
        let (mut ev, mut cp) = both(
            "module r(input clk, input we, input [3:0] addr, input [7:0] din,\n\
             output [7:0] dout);\nreg [7:0] mem [0:15];\n\
             always @(posedge clk) if (we) mem[addr] <= din;\n\
             assign dout = mem[addr];\nendmodule\n",
        );
        poke_both(&mut ev, &mut cp, "clk", Logic::bit(false));
        poke_both(&mut ev, &mut cp, "we", Logic::bit(true));
        poke_both(&mut ev, &mut cp, "addr", Logic::from_u128(4, 5));
        poke_both(&mut ev, &mut cp, "din", Logic::from_u128(8, 0xAB));
        poke_both(&mut ev, &mut cp, "clk", Logic::bit(true));
        assert_eq!(SimControl::peek_by_name(&cp, "dout").unwrap().to_u128(), Some(0xAB));
        // Unwritten word: both kernels read X.
        poke_both(&mut ev, &mut cp, "addr", Logic::from_u128(4, 6));
        assert!(SimControl::peek_by_name(&cp, "dout").unwrap().to_u128().is_none());
    }

    #[test]
    fn truncating_concat_is_word_parallel_two_state() {
        // Wide (>128-bit) concats truncate at the IR's 128-bit cap; the
        // fast path must reproduce that word-parallel instead of
        // bailing to four-state, and the processes must be marked
        // two-state safe so the per-read probe is skipped too.
        let src = "module w(input [63:0] a, input [63:0] b, input [63:0] c,\n\
                   input [127:0] d, output [127:0] y, output [63:0] z,\n\
                   output [127:0] e);\n\
                   assign y = {a, b, c};\n\
                   assign z = {a, b, c} >> 64;\n\
                   assign e = {d, a};\nendmodule\n";
        let file = parse(src).unwrap();
        let design = Arc::new(elaborate(&file, "w").unwrap());
        let cd = CompiledDesign::from_arc(Arc::clone(&design));
        for pid in 0..design.processes().len() as u32 {
            assert!(cd.two_state(pid), "truncating concat must stay two-state safe (pid {pid})");
        }
        let (mut ev, mut cp) = both(src);
        let av = 0xA5A5_5A5A_DEAD_BEEFu128;
        let bv = 0x0123_4567_89AB_CDEFu128;
        let cv = 0xFEDC_BA98_7654_3210u128;
        let dv = 0xFFFF_0000_FFFF_0000_1234_5678_9ABC_DEF0u128;
        poke_both(&mut ev, &mut cp, "a", Logic::from_u128(64, av));
        poke_both(&mut ev, &mut cp, "b", Logic::from_u128(64, bv));
        poke_both(&mut ev, &mut cp, "c", Logic::from_u128(64, cv));
        poke_both(&mut ev, &mut cp, "d", Logic::from_u128(128, dv));
        // {a, b, c} keeps the low 128 bits: {b, c}.
        let y = SimControl::peek_by_name(&cp, "y").unwrap();
        assert_eq!(y.to_u128(), Some((bv << 64) | cv));
        assert_eq!(SimControl::peek_by_name(&cp, "z").unwrap().to_u128(), Some(bv));
        // A 128-bit item displaces everything above it: {d, a} keeps
        // {d[63:0], a}.
        let e = SimControl::peek_by_name(&cp, "e").unwrap();
        assert_eq!(e.to_u128(), Some(((dv & super::mask(64)) << 64) | av));
        // X operands still fall back four-state, identically.
        poke_both(&mut ev, &mut cp, "c", Logic::xs(64));
        assert!(SimControl::peek_by_name(&cp, "y").unwrap().to_u128().is_none());
        poke_both(&mut ev, &mut cp, "c", Logic::from_u128(64, 7));
        assert_eq!(SimControl::peek_by_name(&cp, "y").unwrap().to_u128(), Some((bv << 64) | 7));
    }

    #[test]
    fn incomplete_sensitivity_matches_event_engine() {
        // The compiled kernel must reproduce missing-sensitivity bugs,
        // not paper over them with read-set levelization.
        let (mut ev, mut cp) =
            both("module m(input a, input b, output reg y);\nalways @(a) y = a & b;\nendmodule\n");
        poke_both(&mut ev, &mut cp, "a", Logic::bit(true));
        poke_both(&mut ev, &mut cp, "b", Logic::bit(true));
        assert!(SimControl::peek_by_name(&cp, "y").unwrap().to_u128().is_none());
        poke_both(&mut ev, &mut cp, "a", Logic::bit(false));
        poke_both(&mut ev, &mut cp, "a", Logic::bit(true));
        assert_eq!(SimControl::peek_by_name(&cp, "y").unwrap().to_u128(), Some(1));
    }

    #[test]
    fn x_feedback_settles_like_event_engine() {
        let file = parse("module fx(output y);\nassign y = ~y;\nendmodule\n").unwrap();
        let design = Arc::new(elaborate(&file, "fx").unwrap());
        let cp = compiled(&design).unwrap();
        assert!(SimControl::peek_by_name(&cp, "y").unwrap().to_u128().is_none());
    }

    #[test]
    fn oscillation_reports_unstable_at_the_cap() {
        let file = parse(
            "module osc(output reg a, output reg b);\n\
             always @(*) begin\ncase (b)\n1'b0: a = 1'b1;\ndefault: a = 1'b0;\nendcase\nend\n\
             always @(*) begin\ncase (a)\n1'b0: b = 1'b0;\ndefault: b = 1'b1;\nendcase\nend\n\
             endmodule\n",
        )
        .unwrap();
        let design = Arc::new(elaborate(&file, "osc").unwrap());
        match compiled(&design) {
            Err(SimError::Unstable { activations }) => {
                assert_eq!(activations, MAX_ACTIVATIONS);
            }
            other => panic!("expected unstable, got {other:?}"),
        }
        match Simulator::from_arc(design) {
            Err(SimError::Unstable { activations }) => {
                assert_eq!(activations, MAX_ACTIVATIONS);
            }
            other => panic!("expected unstable, got {other:?}"),
        }
    }

    #[test]
    fn nonblocking_swap_matches() {
        let (mut ev, mut cp) = both(
            "module swap(input clk, output reg a, output reg b);\n\
             initial begin\na = 1'b0;\nb = 1'b1;\nend\n\
             always @(posedge clk) begin\na <= b;\nb <= a;\nend\nendmodule\n",
        );
        assert_eq!(SimControl::peek_by_name(&cp, "a").unwrap().to_u128(), Some(0));
        poke_both(&mut ev, &mut cp, "clk", Logic::bit(true));
        assert_eq!(SimControl::peek_by_name(&cp, "a").unwrap().to_u128(), Some(1));
        assert_eq!(SimControl::peek_by_name(&cp, "b").unwrap().to_u128(), Some(0));
    }

    #[test]
    fn fast_path_falls_back_on_division_by_zero() {
        let (mut ev, mut cp) = both(
            "module d(input [7:0] a, input [7:0] b, output [7:0] q);\n\
             assign q = a / b;\nendmodule\n",
        );
        poke_both(&mut ev, &mut cp, "a", Logic::from_u128(8, 42));
        poke_both(&mut ev, &mut cp, "b", Logic::from_u128(8, 0));
        assert!(SimControl::peek_by_name(&cp, "q").unwrap().to_u128().is_none());
        poke_both(&mut ev, &mut cp, "b", Logic::from_u128(8, 6));
        assert_eq!(SimControl::peek_by_name(&cp, "q").unwrap().to_u128(), Some(7));
    }

    #[test]
    fn unknown_slot_count_tracks_pokes() {
        let (_, mut cp) = both(
            "module m(input [7:0] a, input [7:0] b, output [8:0] s);\n\
             assign s = a + b;\nendmodule\n",
        );
        // Everything starts X: a, b and s.
        assert_eq!(cp.unknown_slots(), 3);
        SimControl::poke_by_name(&mut cp, "a", Logic::from_u128(8, 1)).unwrap();
        assert_eq!(cp.unknown_slots(), 2, "a known; s still X (X + known = X)");
        SimControl::poke_by_name(&mut cp, "b", Logic::from_u128(8, 2)).unwrap();
        assert_eq!(cp.unknown_slots(), 0, "whole arena known");
        SimControl::poke_by_name(&mut cp, "a", Logic::xs(8)).unwrap();
        assert_eq!(cp.unknown_slots(), 2, "X propagates back through the adder");
    }

    #[test]
    fn two_state_marking_is_conservative() {
        let file = parse(
            "module m(input [7:0] a, input [7:0] b, output [8:0] s, output [7:0] q,\n\
             output [7:0] r);\nassign s = a + b;\nassign q = a / b;\nassign r = a % b;\n\
             endmodule\n",
        )
        .unwrap();
        let design = Arc::new(elaborate(&file, "m").unwrap());
        let cd = CompiledDesign::from_arc(Arc::clone(&design));
        let marks: Vec<bool> =
            (0..design.processes().len() as u32).map(|p| cd.two_state(p)).collect();
        assert_eq!(marks.iter().filter(|m| **m).count(), 1, "only the adder is X-free: {marks:?}");
    }

    #[test]
    fn reset_state_restores_the_post_construction_snapshot() {
        let src = "module c(input clk, input rst_n, input en, output reg [3:0] q, output tc);\n\
                   assign tc = (q == 4'd11);\n\
                   always @(posedge clk or negedge rst_n) begin\n\
                   if (!rst_n) q <= 4'd0; else if (en) q <= q + 4'd1;\nend\nendmodule\n";
        let file = parse(src).unwrap();
        let design = Arc::new(elaborate(&file, "c").unwrap());
        let fresh = compiled(&design).unwrap();
        let mut used = compiled(&design).unwrap();
        // Drive it somewhere interesting, then rewind.
        SimControl::poke_by_name(&mut used, "rst_n", Logic::bit(true)).unwrap();
        SimControl::poke_by_name(&mut used, "en", Logic::bit(true)).unwrap();
        for _ in 0..5 {
            SimControl::poke_by_name(&mut used, "clk", Logic::bit(true)).unwrap();
            SimControl::poke_by_name(&mut used, "clk", Logic::bit(false)).unwrap();
        }
        used.set_time(500);
        assert_ne!(used.unknown_slots(), fresh.unknown_slots());
        used.reset_state();
        assert_eq!(used.time(), 0);
        assert_eq!(used.unknown_slots(), fresh.unknown_slots());
        for (i, info) in design.signals().iter().enumerate() {
            let id = SignalId(i as u32);
            for word in 0..info.words as u64 {
                assert_eq!(
                    used.peek_word(id, word),
                    fresh.peek_word(id, word),
                    "signal {} word {word} not rewound",
                    info.name
                );
            }
        }
        // And the rewound instance behaves identically to a fresh one.
        let mut replay = compiled(&design).unwrap();
        for sim in [&mut used, &mut replay] {
            SimControl::poke_by_name(sim, "rst_n", Logic::bit(true)).unwrap();
            SimControl::poke_by_name(sim, "en", Logic::bit(true)).unwrap();
            for _ in 0..3 {
                SimControl::poke_by_name(sim, "clk", Logic::bit(true)).unwrap();
                SimControl::poke_by_name(sim, "clk", Logic::bit(false)).unwrap();
            }
        }
        assert_eq!(
            SimControl::peek_by_name(&used, "q").unwrap(),
            SimControl::peek_by_name(&replay, "q").unwrap()
        );
    }
}
