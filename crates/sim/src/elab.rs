//! Elaboration: lowers a parsed [`SourceFile`] into an executable
//! [`Design`].
//!
//! Elaboration resolves parameters and ranges to constants, unrolls
//! bounded `for` loops, flattens module hierarchy (child instances are
//! inlined with `inst.` name prefixes and port connections become
//! continuous assignments), resolves identifiers to dense [`SignalId`]s
//! and computes self-determined widths for every expression node.

use crate::logic::{mask, Logic};
use std::collections::HashMap;
use std::fmt;
use uvllm_verilog::ast::*;
use uvllm_verilog::span::Span;
use uvllm_verilog::SourceFile;

/// Maximum `for`-loop iterations unrolled before elaboration fails.
pub const MAX_UNROLL: u64 = 4096;

/// Dense index of a signal in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub u32);

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Storage class of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// `wire` — driven by continuous assignments / port connections.
    Net,
    /// `reg` / `integer` — written by procedural code.
    Var,
}

/// Metadata for one elaborated signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalInfo {
    /// Hierarchical name (`u0.sum` for signals inside instances).
    pub name: String,
    pub width: u32,
    pub kind: SignalKind,
    /// Number of array words; 1 for scalars and plain vectors.
    pub words: u32,
    /// Declared LSB index (for `[7:4]` style ranges).
    pub lsb: u32,
    /// Array low index for memories (`mem [2:17]` has `array_lo == 2`).
    pub array_lo: u32,
    /// True for top-level input ports.
    pub is_input: bool,
    /// True for top-level output ports.
    pub is_output: bool,
}

/// A lowered expression with its self-determined width.
#[derive(Debug, Clone, PartialEq)]
pub struct LExpr {
    pub kind: LExprKind,
    pub width: u32,
}

/// Lowered expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum LExprKind {
    Const(Logic),
    Sig(SignalId),
    /// Array word read `mem[addr]`.
    Word(SignalId, Box<LExpr>),
    /// Dynamic bit select `v[i]` (index is bit offset after LSB shift).
    BitSel(SignalId, Box<LExpr>),
    /// Constant part select: `(signal, lsb_offset)`, width in `LExpr`.
    PartSel(SignalId, u32),
    Unary(UnaryOp, Box<LExpr>),
    Binary(BinaryOp, Box<LExpr>, Box<LExpr>),
    Ternary(Box<LExpr>, Box<LExpr>, Box<LExpr>),
    /// Concatenation, most-significant first.
    Concat(Vec<LExpr>),
}

/// A lowered assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LTarget {
    Whole(SignalId),
    /// Dynamic bit select (index is bit offset after LSB shift).
    Bit(SignalId, LExpr),
    /// Constant part select `(signal, lsb_offset, width)`.
    Part(SignalId, u32, u32),
    /// Array word write.
    Word(SignalId, LExpr),
    /// Concatenated targets, most-significant first.
    Concat(Vec<LTarget>),
}

impl LTarget {
    /// Total bit width written by this target.
    pub fn width(&self, design: &Design) -> u32 {
        match self {
            LTarget::Whole(s) => design.signal(*s).width,
            LTarget::Bit(_, _) => 1,
            LTarget::Part(_, _, w) => *w,
            LTarget::Word(s, _) => design.signal(*s).width,
            LTarget::Concat(parts) => parts.iter().map(|p| p.width(design)).sum(),
        }
    }

    /// Signals written by this target.
    pub fn signals(&self) -> Vec<SignalId> {
        match self {
            LTarget::Whole(s)
            | LTarget::Bit(s, _)
            | LTarget::Part(s, _, _)
            | LTarget::Word(s, _) => {
                vec![*s]
            }
            LTarget::Concat(parts) => parts.iter().flat_map(|p| p.signals()).collect(),
        }
    }
}

/// A lowered statement. Spans point back at the *original* source so the
/// localization engine can report suspicious lines.
#[derive(Debug, Clone, PartialEq)]
pub enum LStmt {
    Block(Vec<LStmt>),
    Assign {
        lhs: LTarget,
        rhs: LExpr,
        blocking: bool,
        span: Span,
    },
    If {
        cond: LExpr,
        then_branch: Box<LStmt>,
        else_branch: Option<Box<LStmt>>,
        span: Span,
    },
    Case {
        kind: CaseKind,
        expr: LExpr,
        arms: Vec<(Vec<LExpr>, LStmt)>,
        default: Option<Box<LStmt>>,
        span: Span,
    },
    Nop,
}

/// Trigger condition of a process.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Combinational: run when any of these signals changes.
    Comb(Vec<SignalId>),
    /// Sequential: run on the listed edges (`None` edge = any change).
    Seq(Vec<(SignalId, Option<Edge>)>),
    /// Run once at time zero.
    Initial,
}

/// Index of a process in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub u32);

/// An executable process.
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    pub trigger: Trigger,
    pub body: LStmt,
    /// Span of the originating item (always block / assign / connection).
    pub span: Span,
}

/// A fully elaborated, executable design.
///
/// Equality is structural (same signals, processes and port lists in
/// the same order) — the invariant behind the netlist pass-idempotence
/// tests: a pass pipeline at fixpoint leaves the design `==` to itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Name of the top module.
    pub top: String,
    signals: Vec<SignalInfo>,
    by_name: HashMap<String, SignalId>,
    processes: Vec<Process>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
}

impl Design {
    /// All signals.
    pub fn signals(&self) -> &[SignalInfo] {
        &self.signals
    }

    /// Metadata for `id`.
    pub fn signal(&self, id: SignalId) -> &SignalInfo {
        &self.signals[id.0 as usize]
    }

    /// Looks up a signal by (hierarchical) name.
    pub fn signal_id(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// All processes.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// Top-level input ports.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Top-level output ports.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    // ------------------------------------------------------------------
    // Builder / mutation API — the surface the netlist pass framework
    // and the Yosys-JSON importer rewrite designs through. Signal ids
    // are append-only (passes may orphan a signal but never renumber
    // one), so every `SignalId` held by an expression stays valid.
    // ------------------------------------------------------------------

    /// An empty design with no signals or processes: the starting point
    /// for programmatic construction (e.g. importing third-party RTL).
    pub fn new_empty(top: impl Into<String>) -> Design {
        Design {
            top: top.into(),
            signals: Vec::new(),
            by_name: HashMap::new(),
            processes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Appends a signal, enforcing elaboration's invariants (unique
    /// name, width 1..=128, at least one word). Top-level port flags on
    /// `info` register the signal in [`Design::inputs`] /
    /// [`Design::outputs`] in call order.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and out-of-range widths with a message.
    pub fn add_signal(&mut self, info: SignalInfo) -> Result<SignalId, String> {
        if self.by_name.contains_key(&info.name) {
            return Err(format!("duplicate declaration of '{}'", info.name));
        }
        if info.width == 0 || info.width > 128 {
            return Err(format!(
                "signal '{}' width {} out of supported range 1..=128",
                info.name, info.width
            ));
        }
        if info.words == 0 {
            return Err(format!("signal '{}' needs at least one word", info.name));
        }
        let id = SignalId(self.signals.len() as u32);
        self.by_name.insert(info.name.clone(), id);
        if info.is_input {
            self.inputs.push(id);
        }
        if info.is_output {
            self.outputs.push(id);
        }
        self.signals.push(info);
        Ok(id)
    }

    /// Appends a process and returns its id.
    pub fn add_process(&mut self, process: Process) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(process);
        id
    }

    /// Mutable process list, for rewrite passes. Removing a process is
    /// allowed (process ids are not referenced by the IR); signals must
    /// only ever be added, via [`Design::add_signal`].
    pub fn processes_mut(&mut self) -> &mut Vec<Process> {
        &mut self.processes
    }
}

/// Elaboration failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ElabError {
    pub message: String,
    pub span: Span,
}

impl ElabError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        ElabError { message: message.into(), span }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.message)
    }
}

impl std::error::Error for ElabError {}

/// Elaborates `file` with `top` as the root module.
///
/// # Errors
///
/// Fails on undeclared identifiers, non-constant ranges, unknown child
/// modules, unsupported constructs and loop-unroll overflow.
pub fn elaborate(file: &SourceFile, top: &str) -> Result<Design, ElabError> {
    let top_module = file
        .module(top)
        .ok_or_else(|| ElabError::new(format!("top module '{top}' not found"), Span::default()))?;
    let mut ctx = Elab {
        file,
        design: Design {
            top: top.to_string(),
            signals: Vec::new(),
            by_name: HashMap::new(),
            processes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        },
        depth: 0,
    };
    ctx.module(top_module, "", &HashMap::new(), true)?;
    Ok(ctx.design)
}

struct Elab<'a> {
    file: &'a SourceFile,
    design: Design,
    depth: u32,
}

/// Per-module lowering scope.
struct Scope {
    /// Hierarchical prefix, e.g. `"u0."`.
    prefix: String,
    /// Parameter and loop-variable constants.
    consts: HashMap<String, i64>,
}

impl Scope {
    fn resolve(&self, design: &Design, name: &str) -> Option<SignalId> {
        design.signal_id(&format!("{}{}", self.prefix, name))
    }
}

impl<'a> Elab<'a> {
    fn module(
        &mut self,
        module: &Module,
        prefix: &str,
        param_overrides: &HashMap<String, i64>,
        is_top: bool,
    ) -> Result<(), ElabError> {
        self.depth += 1;
        if self.depth > 16 {
            return Err(ElabError::new("module nesting exceeds 16 levels", module.span));
        }
        let mut scope = Scope { prefix: prefix.to_string(), consts: HashMap::new() };

        // Resolve parameters first (headers and body, in order).
        for item in &module.items {
            if let Item::Param(p) = item {
                for (name, value) in &p.params {
                    let v = match param_overrides.get(name) {
                        Some(v) if !p.local => *v,
                        _ => const_eval(value, &scope.consts, p.span)?,
                    };
                    scope.consts.insert(name.clone(), v);
                }
            }
        }

        // Declare ports.
        for port in &module.ports {
            let width = range_width(&port.range, &scope.consts)?;
            let lsb = range_lsb(&port.range, &scope.consts)?;
            let kind = if port.net == NetKind::Reg { SignalKind::Var } else { SignalKind::Net };
            let id = self.declare(
                &scope,
                &port.name,
                width,
                kind,
                1,
                lsb,
                0,
                is_top && port.dir == PortDir::Input,
                is_top && port.dir == PortDir::Output,
                port.span,
            )?;
            if is_top {
                match port.dir {
                    PortDir::Input => self.design.inputs.push(id),
                    PortDir::Output => self.design.outputs.push(id),
                    PortDir::Inout => {
                        return Err(ElabError::new("inout ports are not supported", port.span))
                    }
                }
            }
        }

        // Declare nets, regs, integers.
        for item in &module.items {
            match item {
                Item::Net(d) => {
                    let width = range_width(&d.range, &scope.consts)?;
                    let lsb = range_lsb(&d.range, &scope.consts)?;
                    for decl in &d.decls {
                        if scope.resolve(&self.design, &decl.name).is_some() {
                            // Port re-declaration (`output reg q;` + `reg q;`).
                            continue;
                        }
                        let (words, array_lo) = match &decl.array {
                            Some(r) => {
                                let a = const_eval(&r.msb, &scope.consts, r.span)?;
                                let b = const_eval(&r.lsb, &scope.consts, r.span)?;
                                let lo = a.min(b);
                                let hi = a.max(b);
                                ((hi - lo + 1) as u32, lo as u32)
                            }
                            None => (1, 0),
                        };
                        let kind =
                            if d.kind == NetKind::Reg { SignalKind::Var } else { SignalKind::Net };
                        self.declare(
                            &scope, &decl.name, width, kind, words, lsb, array_lo, false, false,
                            decl.span,
                        )?;
                    }
                }
                Item::Integer(d) => {
                    for name in &d.names {
                        if scope.resolve(&self.design, name).is_none() {
                            self.declare(
                                &scope,
                                name,
                                32,
                                SignalKind::Var,
                                1,
                                0,
                                0,
                                false,
                                false,
                                d.span,
                            )?;
                        }
                    }
                }
                _ => {}
            }
        }

        // Wire initialisers become continuous assigns; reg initialisers
        // become initial blocks.
        for item in &module.items {
            if let Item::Net(d) = item {
                for decl in &d.decls {
                    if let Some(init) = &decl.init {
                        let id = scope.resolve(&self.design, &decl.name).expect("just declared");
                        let rhs = self.lower_expr(init, &scope, d.span)?;
                        let body = LStmt::Assign {
                            lhs: LTarget::Whole(id),
                            rhs: rhs.clone(),
                            blocking: true,
                            span: decl.span,
                        };
                        let trigger = if d.kind == NetKind::Wire {
                            Trigger::Comb(expr_signals(&rhs))
                        } else {
                            Trigger::Initial
                        };
                        self.design.processes.push(Process { trigger, body, span: decl.span });
                    }
                }
            }
        }

        // Lower behavioural items.
        for item in &module.items {
            match item {
                Item::Assign(a) => {
                    let lhs = self.lower_lvalue(&a.lhs, &scope, a.span)?;
                    let rhs = self.lower_expr(&a.rhs, &scope, a.span)?;
                    let deps = expr_signals(&rhs);
                    self.design.processes.push(Process {
                        trigger: Trigger::Comb(deps),
                        body: LStmt::Assign { lhs, rhs, blocking: true, span: a.span },
                        span: a.span,
                    });
                }
                Item::Always(a) => {
                    let mut scope_consts = scope.consts.clone();
                    let body = self.lower_stmt(&a.body, &scope, &mut scope_consts)?;
                    self.check_procedural_targets(&body, a.span)?;
                    let trigger = match &a.sensitivity {
                        Sensitivity::Star => Trigger::Comb(stmt_read_signals(&body)),
                        Sensitivity::List(items) => {
                            let any_edge = items.iter().any(|i| i.edge.is_some());
                            if any_edge {
                                let mut edges = Vec::new();
                                for i in items {
                                    let id = scope.resolve(&self.design, &i.signal).ok_or_else(
                                        || {
                                            ElabError::new(
                                                format!(
                                                    "undeclared signal '{}' in sensitivity list",
                                                    i.signal
                                                ),
                                                i.span,
                                            )
                                        },
                                    )?;
                                    edges.push((id, i.edge));
                                }
                                Trigger::Seq(edges)
                            } else {
                                let mut deps = Vec::new();
                                for i in items {
                                    let id = scope.resolve(&self.design, &i.signal).ok_or_else(
                                        || {
                                            ElabError::new(
                                                format!(
                                                    "undeclared signal '{}' in sensitivity list",
                                                    i.signal
                                                ),
                                                i.span,
                                            )
                                        },
                                    )?;
                                    deps.push(id);
                                }
                                Trigger::Comb(deps)
                            }
                        }
                    };
                    self.design.processes.push(Process { trigger, body, span: a.span });
                }
                Item::Initial(i) => {
                    let mut scope_consts = scope.consts.clone();
                    let body = self.lower_stmt(&i.body, &scope, &mut scope_consts)?;
                    self.check_procedural_targets(&body, i.span)?;
                    self.design.processes.push(Process {
                        trigger: Trigger::Initial,
                        body,
                        span: i.span,
                    });
                }
                Item::Instance(inst) => self.instance(inst, &scope)?,
                _ => {}
            }
        }
        self.depth -= 1;
        Ok(())
    }

    /// Rejects procedural writes to nets, as IEEE 1364 compilers do —
    /// this is what makes the `output reg` → `output` mutation (Table I,
    /// Declare/Type Misuse) an actual error instead of a silent no-op.
    fn check_procedural_targets(&self, body: &LStmt, span: Span) -> Result<(), ElabError> {
        for sig in stmt_written_signals(body) {
            let info = self.design.signal(sig);
            if info.kind != SignalKind::Var {
                return Err(ElabError::new(
                    format!("procedural assignment to wire '{}' (declare it as reg)", info.name),
                    span,
                ));
            }
        }
        Ok(())
    }

    fn instance(&mut self, inst: &Instance, scope: &Scope) -> Result<(), ElabError> {
        let child = self
            .file
            .module(&inst.module)
            .ok_or_else(|| ElabError::new(format!("unknown module '{}'", inst.module), inst.span))?
            .clone();
        // Resolve parameter overrides.
        let mut overrides = HashMap::new();
        let child_params: Vec<String> = child
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Param(p) if !p.local => {
                    Some(p.params.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>())
                }
                _ => None,
            })
            .flatten()
            .collect();
        for (idx, conn) in inst.params.iter().enumerate() {
            let value = match &conn.expr {
                Some(e) => const_eval(e, &scope.consts, conn.span)?,
                None => continue,
            };
            let name = match &conn.port {
                Some(n) => n.clone(),
                None => child_params.get(idx).cloned().ok_or_else(|| {
                    ElabError::new("too many positional parameter overrides", conn.span)
                })?,
            };
            overrides.insert(name, value);
        }

        let child_prefix = format!("{}{}.", scope.prefix, inst.name);
        self.module(&child, &child_prefix, &overrides, false)?;

        // Port connections become continuous assignments.
        for (idx, conn) in inst.conns.iter().enumerate() {
            let port = match &conn.port {
                Some(name) => child.port(name).cloned().ok_or_else(|| {
                    ElabError::new(
                        format!("module '{}' has no port '{}'", inst.module, name),
                        conn.span,
                    )
                })?,
                None => child.ports.get(idx).cloned().ok_or_else(|| {
                    ElabError::new(
                        format!("too many positional connections for '{}'", inst.module),
                        conn.span,
                    )
                })?,
            };
            let Some(expr) = &conn.expr else { continue };
            let child_id = self
                .design
                .signal_id(&format!("{child_prefix}{}", port.name))
                .expect("child port declared");
            match port.dir {
                PortDir::Input => {
                    let rhs = self.lower_expr(expr, scope, conn.span)?;
                    let deps = expr_signals(&rhs);
                    self.design.processes.push(Process {
                        trigger: Trigger::Comb(deps),
                        body: LStmt::Assign {
                            lhs: LTarget::Whole(child_id),
                            rhs,
                            blocking: true,
                            span: conn.span,
                        },
                        span: conn.span,
                    });
                }
                PortDir::Output => {
                    let lhs = self.expr_as_target(expr, scope, conn.span)?;
                    let width = self.design.signal(child_id).width;
                    self.design.processes.push(Process {
                        trigger: Trigger::Comb(vec![child_id]),
                        body: LStmt::Assign {
                            lhs,
                            rhs: LExpr { kind: LExprKind::Sig(child_id), width },
                            blocking: true,
                            span: conn.span,
                        },
                        span: conn.span,
                    });
                }
                PortDir::Inout => {
                    return Err(ElabError::new("inout ports are not supported", conn.span))
                }
            }
        }
        Ok(())
    }

    /// Interprets a port-connection expression as an assignment target
    /// (for output ports).
    fn expr_as_target(
        &mut self,
        expr: &Expr,
        scope: &Scope,
        span: Span,
    ) -> Result<LTarget, ElabError> {
        match expr {
            Expr::Ident(name) => {
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), span))?;
                Ok(LTarget::Whole(id))
            }
            Expr::Index(base, index) => {
                let Expr::Ident(name) = base.as_ref() else {
                    return Err(ElabError::new("unsupported output connection", span));
                };
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), span))?;
                let info = self.design.signal(id).clone();
                let idx = self.lower_expr(index, scope, span)?;
                let idx = offset_index(idx, info.lsb);
                Ok(LTarget::Bit(id, idx))
            }
            Expr::Part(base, msb, lsb) => {
                let Expr::Ident(name) = base.as_ref() else {
                    return Err(ElabError::new("unsupported output connection", span));
                };
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), span))?;
                let info = self.design.signal(id).clone();
                let m = const_eval(msb, &scope.consts, span)?;
                let l = const_eval(lsb, &scope.consts, span)?;
                let (off, w) = part_offset(m, l, info.lsb, span)?;
                Ok(LTarget::Part(id, off, w))
            }
            Expr::Concat(items) => {
                let mut parts = Vec::new();
                for item in items {
                    parts.push(self.expr_as_target(item, scope, span)?);
                }
                Ok(LTarget::Concat(parts))
            }
            _ => {
                Err(ElabError::new("output port connections must be assignable expressions", span))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn declare(
        &mut self,
        scope: &Scope,
        name: &str,
        width: u32,
        kind: SignalKind,
        words: u32,
        lsb: u32,
        array_lo: u32,
        is_input: bool,
        is_output: bool,
        span: Span,
    ) -> Result<SignalId, ElabError> {
        let full = format!("{}{}", scope.prefix, name);
        if self.design.by_name.contains_key(&full) {
            return Err(ElabError::new(format!("duplicate declaration of '{full}'"), span));
        }
        if width == 0 || width > 128 {
            return Err(ElabError::new(
                format!("signal '{full}' width {width} out of supported range 1..=128"),
                span,
            ));
        }
        let id = SignalId(self.design.signals.len() as u32);
        self.design.signals.push(SignalInfo {
            name: full.clone(),
            width,
            kind,
            words,
            lsb,
            array_lo,
            is_input,
            is_output,
        });
        self.design.by_name.insert(full, id);
        Ok(id)
    }

    fn lower_stmt(
        &mut self,
        stmt: &Stmt,
        scope: &Scope,
        consts: &mut HashMap<String, i64>,
    ) -> Result<LStmt, ElabError> {
        match stmt {
            Stmt::Block(b) => {
                let mut out = Vec::with_capacity(b.stmts.len());
                for s in &b.stmts {
                    out.push(self.lower_stmt(s, scope, consts)?);
                }
                Ok(LStmt::Block(out))
            }
            Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
                let blocking = matches!(stmt, Stmt::Blocking(_));
                // Writes to loop variables inside unrolled bodies are
                // evaluated at elaboration time when possible.
                if let LValue::Ident(name, _) = &a.lhs {
                    if consts.contains_key(name) {
                        let v = const_eval_with(&a.rhs, consts, a.span)?;
                        consts.insert(name.clone(), v);
                        return Ok(LStmt::Nop);
                    }
                }
                let lhs = self.lower_lvalue_in(&a.lhs, scope, consts, a.span)?;
                let rhs = self.lower_expr_in(&a.rhs, scope, consts, a.span)?;
                Ok(LStmt::Assign { lhs, rhs, blocking, span: a.span })
            }
            Stmt::If(i) => {
                let cond = self.lower_expr_in(&i.cond, scope, consts, i.span)?;
                let then_branch = Box::new(self.lower_stmt(&i.then_branch, scope, consts)?);
                let else_branch = match &i.else_branch {
                    Some(e) => Some(Box::new(self.lower_stmt(e, scope, consts)?)),
                    None => None,
                };
                Ok(LStmt::If { cond, then_branch, else_branch, span: i.span })
            }
            Stmt::Case(c) => {
                let expr = self.lower_expr_in(&c.expr, scope, consts, c.span)?;
                let mut arms = Vec::with_capacity(c.arms.len());
                for arm in &c.arms {
                    let mut labels = Vec::with_capacity(arm.labels.len());
                    for l in &arm.labels {
                        labels.push(self.lower_expr_in(l, scope, consts, arm.span)?);
                    }
                    arms.push((labels, self.lower_stmt(&arm.body, scope, consts)?));
                }
                let default = match &c.default {
                    Some(d) => Some(Box::new(self.lower_stmt(d, scope, consts)?)),
                    None => None,
                };
                Ok(LStmt::Case { kind: c.kind, expr, arms, default, span: c.span })
            }
            Stmt::For(f) => {
                let LValue::Ident(var, _) = &f.init.0 else {
                    return Err(ElabError::new("for-loop variable must be a plain name", f.span));
                };
                let init = const_eval_with(&f.init.1, consts, f.span)?;
                consts.insert(var.clone(), init);
                let mut body = Vec::new();
                let mut iters: u64 = 0;
                loop {
                    let c = const_eval_with(&f.cond, consts, f.span)?;
                    if c == 0 {
                        break;
                    }
                    iters += 1;
                    if iters > MAX_UNROLL {
                        return Err(ElabError::new(
                            format!("for loop exceeds {MAX_UNROLL} unrolled iterations"),
                            f.span,
                        ));
                    }
                    body.push(self.lower_stmt(&f.body, scope, consts)?);
                    let next = const_eval_with(&f.step.1, consts, f.span)?;
                    consts.insert(var.clone(), next);
                }
                consts.remove(var);
                Ok(LStmt::Block(body))
            }
            // System tasks have no behavioural effect in this subset.
            Stmt::SysCall(_) | Stmt::Null(_) => Ok(LStmt::Nop),
        }
    }

    fn lower_lvalue(
        &mut self,
        lv: &LValue,
        scope: &Scope,
        span: Span,
    ) -> Result<LTarget, ElabError> {
        let consts = scope.consts.clone();
        self.lower_lvalue_in(lv, scope, &consts, span)
    }

    fn lower_lvalue_in(
        &mut self,
        lv: &LValue,
        scope: &Scope,
        consts: &HashMap<String, i64>,
        span: Span,
    ) -> Result<LTarget, ElabError> {
        match lv {
            LValue::Ident(name, sp) => {
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), *sp))?;
                Ok(LTarget::Whole(id))
            }
            LValue::Index(name, index, sp) => {
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), *sp))?;
                let info = self.design.signal(id).clone();
                let idx = self.lower_expr_in(index, scope, consts, span)?;
                if info.words > 1 {
                    Ok(LTarget::Word(id, offset_index(idx, info.array_lo)))
                } else {
                    Ok(LTarget::Bit(id, offset_index(idx, info.lsb)))
                }
            }
            LValue::Part(name, msb, lsb, sp) => {
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), *sp))?;
                let info = self.design.signal(id).clone();
                let m = const_eval_with(msb, consts, *sp)?;
                let l = const_eval_with(lsb, consts, *sp)?;
                let (off, w) = part_offset(m, l, info.lsb, *sp)?;
                Ok(LTarget::Part(id, off, w))
            }
            LValue::Concat(parts, _) => {
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    out.push(self.lower_lvalue_in(p, scope, consts, span)?);
                }
                Ok(LTarget::Concat(out))
            }
        }
    }

    fn lower_expr(&mut self, e: &Expr, scope: &Scope, span: Span) -> Result<LExpr, ElabError> {
        let consts = scope.consts.clone();
        self.lower_expr_in(e, scope, &consts, span)
    }

    fn lower_expr_in(
        &mut self,
        e: &Expr,
        scope: &Scope,
        consts: &HashMap<String, i64>,
        span: Span,
    ) -> Result<LExpr, ElabError> {
        Ok(match e {
            Expr::Number(n) => {
                let width = n.width.unwrap_or(32);
                LExpr { kind: LExprKind::Const(Logic::from_planes(width, n.value, n.xz)), width }
            }
            Expr::Ident(name) => {
                if let Some(v) = consts.get(name) {
                    return Ok(LExpr {
                        kind: LExprKind::Const(Logic::from_u128(32, *v as u128 & mask(32))),
                        width: 32,
                    });
                }
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), span))?;
                let info = self.design.signal(id);
                if info.words > 1 {
                    return Err(ElabError::new(format!("memory '{name}' must be indexed"), span));
                }
                LExpr { kind: LExprKind::Sig(id), width: info.width }
            }
            Expr::Unary(op, inner) => {
                let e = self.lower_expr_in(inner, scope, consts, span)?;
                let width = match op {
                    UnaryOp::LogNot
                    | UnaryOp::RedAnd
                    | UnaryOp::RedOr
                    | UnaryOp::RedXor
                    | UnaryOp::RedNand
                    | UnaryOp::RedNor
                    | UnaryOp::RedXnor => 1,
                    _ => e.width,
                };
                LExpr { kind: LExprKind::Unary(*op, Box::new(e)), width }
            }
            Expr::Binary(op, a, b) => {
                let la = self.lower_expr_in(a, scope, consts, span)?;
                let lb = self.lower_expr_in(b, scope, consts, span)?;
                let width = match op {
                    BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
                    | BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::CaseEq
                    | BinaryOp::CaseNe
                    | BinaryOp::LogAnd
                    | BinaryOp::LogOr => 1,
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr | BinaryOp::Pow => la.width,
                    _ => la.width.max(lb.width),
                };
                LExpr { kind: LExprKind::Binary(*op, Box::new(la), Box::new(lb)), width }
            }
            Expr::Ternary(c, t, f) => {
                let lc = self.lower_expr_in(c, scope, consts, span)?;
                let lt = self.lower_expr_in(t, scope, consts, span)?;
                let lf = self.lower_expr_in(f, scope, consts, span)?;
                let width = lt.width.max(lf.width);
                LExpr { kind: LExprKind::Ternary(Box::new(lc), Box::new(lt), Box::new(lf)), width }
            }
            Expr::Index(base, index) => {
                let Expr::Ident(name) = base.as_ref() else {
                    return Err(ElabError::new("only named signals can be indexed", span));
                };
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), span))?;
                let info = self.design.signal(id).clone();
                let idx = self.lower_expr_in(index, scope, consts, span)?;
                if info.words > 1 {
                    LExpr {
                        kind: LExprKind::Word(id, Box::new(offset_index(idx, info.array_lo))),
                        width: info.width,
                    }
                } else {
                    LExpr {
                        kind: LExprKind::BitSel(id, Box::new(offset_index(idx, info.lsb))),
                        width: 1,
                    }
                }
            }
            Expr::Part(base, msb, lsb) => {
                let Expr::Ident(name) = base.as_ref() else {
                    return Err(ElabError::new("only named signals can be part-selected", span));
                };
                let id = scope
                    .resolve(&self.design, name)
                    .ok_or_else(|| ElabError::new(format!("undeclared signal '{name}'"), span))?;
                let info = self.design.signal(id).clone();
                let m = const_eval_with(msb, consts, span)?;
                let l = const_eval_with(lsb, consts, span)?;
                let (off, w) = part_offset(m, l, info.lsb, span)?;
                LExpr { kind: LExprKind::PartSel(id, off), width: w }
            }
            Expr::Concat(items) => {
                let mut out = Vec::with_capacity(items.len());
                let mut width = 0;
                for item in items {
                    let e = self.lower_expr_in(item, scope, consts, span)?;
                    width += e.width;
                    out.push(e);
                }
                LExpr { kind: LExprKind::Concat(out), width: width.min(128) }
            }
            Expr::Repeat(count, items) => {
                let n = const_eval_with(count, consts, span)?;
                if !(0..=128).contains(&n) {
                    return Err(ElabError::new(
                        format!("replication count {n} out of range"),
                        span,
                    ));
                }
                let mut out = Vec::new();
                let mut width = 0;
                for _ in 0..n {
                    for item in items {
                        let e = self.lower_expr_in(item, scope, consts, span)?;
                        width += e.width;
                        out.push(e);
                    }
                }
                if out.is_empty() {
                    LExpr { kind: LExprKind::Const(Logic::zeros(1)), width: 1 }
                } else {
                    LExpr { kind: LExprKind::Concat(out), width: width.min(128) }
                }
            }
        })
    }
}

/// Shifts a lowered index expression down by a declared LSB offset.
fn offset_index(idx: LExpr, lsb: u32) -> LExpr {
    if lsb == 0 {
        return idx;
    }
    let w = idx.width;
    LExpr {
        kind: LExprKind::Binary(
            BinaryOp::Sub,
            Box::new(idx),
            Box::new(LExpr { kind: LExprKind::Const(Logic::from_u128(w, lsb as u128)), width: w }),
        ),
        width: w,
    }
}

/// Computes `(bit_offset, width)` for a `[msb:lsb]` part select against a
/// signal declared with LSB index `decl_lsb`.
fn part_offset(msb: i64, lsb: i64, decl_lsb: u32, span: Span) -> Result<(u32, u32), ElabError> {
    if msb < lsb {
        return Err(ElabError::new(format!("reversed part select [{msb}:{lsb}]"), span));
    }
    let off = lsb - decl_lsb as i64;
    if off < 0 {
        return Err(ElabError::new(
            format!("part select [{msb}:{lsb}] below declared range"),
            span,
        ));
    }
    Ok((off as u32, (msb - lsb + 1) as u32))
}

fn range_width(range: &Option<Range>, consts: &HashMap<String, i64>) -> Result<u32, ElabError> {
    match range {
        None => Ok(1),
        Some(r) => {
            let m = const_eval(&r.msb, consts, r.span)?;
            let l = const_eval(&r.lsb, consts, r.span)?;
            let w = (m - l).abs() + 1;
            if !(1..=128).contains(&w) {
                Err(ElabError::new(format!("range width {w} out of range 1..=128"), r.span))
            } else {
                Ok(w as u32)
            }
        }
    }
}

fn range_lsb(range: &Option<Range>, consts: &HashMap<String, i64>) -> Result<u32, ElabError> {
    match range {
        None => Ok(0),
        Some(r) => {
            let m = const_eval(&r.msb, consts, r.span)?;
            let l = const_eval(&r.lsb, consts, r.span)?;
            Ok(m.min(l).max(0) as u32)
        }
    }
}

/// Evaluates a constant expression with the given name environment.
pub fn const_eval(e: &Expr, consts: &HashMap<String, i64>, span: Span) -> Result<i64, ElabError> {
    const_eval_with(e, consts, span)
}

fn const_eval_with(e: &Expr, consts: &HashMap<String, i64>, span: Span) -> Result<i64, ElabError> {
    Ok(match e {
        Expr::Number(n) => {
            if n.xz != 0 {
                return Err(ElabError::new("X/Z literal in constant expression", span));
            }
            n.value as i64
        }
        Expr::Ident(name) => *consts
            .get(name)
            .ok_or_else(|| ElabError::new(format!("'{name}' is not a constant"), span))?,
        Expr::Unary(op, inner) => {
            let v = const_eval_with(inner, consts, span)?;
            match op {
                UnaryOp::Neg => -v,
                UnaryOp::Plus => v,
                UnaryOp::LogNot => (v == 0) as i64,
                UnaryOp::BitNot => !v,
                _ => {
                    return Err(ElabError::new(
                        "reduction operators are not constant-foldable here",
                        span,
                    ))
                }
            }
        }
        Expr::Binary(op, a, b) => {
            let x = const_eval_with(a, consts, span)?;
            let y = const_eval_with(b, consts, span)?;
            match op {
                BinaryOp::Add => x.wrapping_add(y),
                BinaryOp::Sub => x.wrapping_sub(y),
                BinaryOp::Mul => x.wrapping_mul(y),
                BinaryOp::Div => {
                    if y == 0 {
                        return Err(ElabError::new("constant division by zero", span));
                    }
                    x / y
                }
                BinaryOp::Mod => {
                    if y == 0 {
                        return Err(ElabError::new("constant modulo by zero", span));
                    }
                    x % y
                }
                BinaryOp::Pow => {
                    let mut acc = 1i64;
                    for _ in 0..y.clamp(0, 63) {
                        acc = acc.wrapping_mul(x);
                    }
                    acc
                }
                BinaryOp::Shl => x.wrapping_shl(y.clamp(0, 63) as u32),
                BinaryOp::Shr | BinaryOp::AShr => x.wrapping_shr(y.clamp(0, 63) as u32),
                BinaryOp::Lt => (x < y) as i64,
                BinaryOp::Le => (x <= y) as i64,
                BinaryOp::Gt => (x > y) as i64,
                BinaryOp::Ge => (x >= y) as i64,
                BinaryOp::Eq | BinaryOp::CaseEq => (x == y) as i64,
                BinaryOp::Ne | BinaryOp::CaseNe => (x != y) as i64,
                BinaryOp::LogAnd => ((x != 0) && (y != 0)) as i64,
                BinaryOp::LogOr => ((x != 0) || (y != 0)) as i64,
                BinaryOp::BitAnd => x & y,
                BinaryOp::BitOr => x | y,
                BinaryOp::BitXor => x ^ y,
                BinaryOp::BitXnor => !(x ^ y),
            }
        }
        Expr::Ternary(c, t, f) => {
            if const_eval_with(c, consts, span)? != 0 {
                const_eval_with(t, consts, span)?
            } else {
                const_eval_with(f, consts, span)?
            }
        }
        _ => return Err(ElabError::new("expression is not constant", span)),
    })
}

/// Collects every signal read by a lowered expression.
pub fn expr_signals(e: &LExpr) -> Vec<SignalId> {
    let mut out = Vec::new();
    collect_expr_signals(e, &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_expr_signals(e: &LExpr, out: &mut Vec<SignalId>) {
    match &e.kind {
        LExprKind::Const(_) => {}
        LExprKind::Sig(s) => out.push(*s),
        LExprKind::Word(s, i) | LExprKind::BitSel(s, i) => {
            out.push(*s);
            collect_expr_signals(i, out);
        }
        LExprKind::PartSel(s, _) => out.push(*s),
        LExprKind::Unary(_, a) => collect_expr_signals(a, out),
        LExprKind::Binary(_, a, b) => {
            collect_expr_signals(a, out);
            collect_expr_signals(b, out);
        }
        LExprKind::Ternary(c, t, f) => {
            collect_expr_signals(c, out);
            collect_expr_signals(t, out);
            collect_expr_signals(f, out);
        }
        LExprKind::Concat(items) => {
            for i in items {
                collect_expr_signals(i, out);
            }
        }
    }
}

/// Collects every signal read anywhere in a lowered statement (used to
/// infer `@(*)` sensitivity).
pub fn stmt_read_signals(s: &LStmt) -> Vec<SignalId> {
    let mut out = Vec::new();
    collect_stmt_reads(s, &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_stmt_reads(s: &LStmt, out: &mut Vec<SignalId>) {
    match s {
        LStmt::Block(stmts) => {
            for s in stmts {
                collect_stmt_reads(s, out);
            }
        }
        LStmt::Assign { lhs, rhs, .. } => {
            collect_expr_signals(rhs, out);
            // Index expressions in the target are also reads.
            collect_target_reads(lhs, out);
        }
        LStmt::If { cond, then_branch, else_branch, .. } => {
            collect_expr_signals(cond, out);
            collect_stmt_reads(then_branch, out);
            if let Some(e) = else_branch {
                collect_stmt_reads(e, out);
            }
        }
        LStmt::Case { expr, arms, default, .. } => {
            collect_expr_signals(expr, out);
            for (labels, body) in arms {
                for l in labels {
                    collect_expr_signals(l, out);
                }
                collect_stmt_reads(body, out);
            }
            if let Some(d) = default {
                collect_stmt_reads(d, out);
            }
        }
        LStmt::Nop => {}
    }
}

fn collect_target_reads(t: &LTarget, out: &mut Vec<SignalId>) {
    match t {
        LTarget::Whole(_) | LTarget::Part(_, _, _) => {}
        LTarget::Bit(_, i) | LTarget::Word(_, i) => collect_expr_signals(i, out),
        LTarget::Concat(parts) => {
            for p in parts {
                collect_target_reads(p, out);
            }
        }
    }
}

/// Collects every signal written anywhere in a lowered statement.
pub fn stmt_written_signals(s: &LStmt) -> Vec<SignalId> {
    let mut out = Vec::new();
    collect_stmt_writes(s, &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_stmt_writes(s: &LStmt, out: &mut Vec<SignalId>) {
    match s {
        LStmt::Block(stmts) => {
            for s in stmts {
                collect_stmt_writes(s, out);
            }
        }
        LStmt::Assign { lhs, .. } => out.extend(lhs.signals()),
        LStmt::If { then_branch, else_branch, .. } => {
            collect_stmt_writes(then_branch, out);
            if let Some(e) = else_branch {
                collect_stmt_writes(e, out);
            }
        }
        LStmt::Case { arms, default, .. } => {
            for (_, body) in arms {
                collect_stmt_writes(body, out);
            }
            if let Some(d) = default {
                collect_stmt_writes(d, out);
            }
        }
        LStmt::Nop => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_verilog::parse;

    fn elab(src: &str) -> Design {
        let file = parse(src).unwrap();
        let top = &file.top().unwrap().name;
        elaborate(&file, top).unwrap()
    }

    #[test]
    fn elaborates_simple_module() {
        let d = elab(
            "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
             assign y = a + b;\nendmodule\n",
        );
        assert_eq!(d.inputs().len(), 2);
        assert_eq!(d.outputs().len(), 1);
        assert_eq!(d.signal(d.signal_id("y").unwrap()).width, 9);
        assert_eq!(d.processes().len(), 1);
    }

    #[test]
    fn parameter_resolution() {
        let d = elab(
            "module p #(parameter W = 8)(input [W-1:0] d, output [W-1:0] q);\n\
             assign q = d;\nendmodule\n",
        );
        assert_eq!(d.signal(d.signal_id("d").unwrap()).width, 8);
    }

    #[test]
    fn hierarchy_is_flattened() {
        let d = elab(
            "module top(input a, output y);\nwire w;\n\
             inv u1(.in(a), .out(w));\ninv u2(.in(w), .out(y));\nendmodule\n\
             module inv(input in, output out);\nassign out = ~in;\nendmodule\n",
        );
        assert!(d.signal_id("u1.in").is_some());
        assert!(d.signal_id("u2.out").is_some());
        // 2 child assigns + 4 port connection processes.
        assert_eq!(d.processes().len(), 6);
    }

    #[test]
    fn parameter_override_through_instance() {
        let d = elab(
            "module top(input [3:0] a, output [3:0] y);\n\
             pass #(.W(4)) u(.d(a), .q(y));\nendmodule\n\
             module pass #(parameter W = 8)(input [W-1:0] d, output [W-1:0] q);\n\
             assign q = d;\nendmodule\n",
        );
        assert_eq!(d.signal(d.signal_id("u.d").unwrap()).width, 4);
    }

    #[test]
    fn for_loop_unrolls() {
        let d = elab(
            "module f(input [7:0] d, output reg [7:0] q);\ninteger i;\n\
             always @(*) begin\nfor (i = 0; i < 8; i = i + 1) q[i] = d[7 - i];\nend\nendmodule\n",
        );
        let p = &d.processes()[0];
        match &p.body {
            LStmt::Block(stmts) => match &stmts[0] {
                LStmt::Block(unrolled) => assert_eq!(unrolled.len(), 8),
                other => panic!("expected unrolled block, got {other:?}"),
            },
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn runaway_loop_fails() {
        let file = parse(
            "module f(output reg q);\ninteger i;\nalways @(*) begin\n\
             for (i = 0; i < 100000; i = i + 1) q = 1'b0;\nend\nendmodule\n",
        )
        .unwrap();
        assert!(elaborate(&file, "f").is_err());
    }

    #[test]
    fn undeclared_signal_fails() {
        let file =
            parse("module m(input a, output y);\nassign y = a & missing;\nendmodule\n").unwrap();
        let err = elaborate(&file, "m").unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn memory_declaration() {
        let d = elab(
            "module r(input clk, input [3:0] addr, input [7:0] din, input we,\n\
             output [7:0] dout);\nreg [7:0] mem [0:15];\n\
             always @(posedge clk) if (we) mem[addr] <= din;\n\
             assign dout = mem[addr];\nendmodule\n",
        );
        let mem = d.signal(d.signal_id("mem").unwrap());
        assert_eq!(mem.width, 8);
        assert_eq!(mem.words, 16);
    }

    #[test]
    fn star_sensitivity_is_inferred() {
        let d = elab(
            "module m(input a, input b, input s, output reg y);\n\
             always @(*) begin\nif (s) y = a; else y = b;\nend\nendmodule\n",
        );
        match &d.processes()[0].trigger {
            Trigger::Comb(deps) => {
                assert_eq!(deps.len(), 3, "expects a, b, s in sensitivity");
            }
            other => panic!("expected comb, got {other:?}"),
        }
    }

    #[test]
    fn edge_sensitivity() {
        let d = elab(
            "module m(input clk, input rst_n, output reg q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
             if (!rst_n) q <= 1'b0; else q <= 1'b1;\nend\nendmodule\n",
        );
        match &d.processes()[0].trigger {
            Trigger::Seq(edges) => {
                assert_eq!(edges.len(), 2);
                assert_eq!(edges[0].1, Some(Edge::Pos));
                assert_eq!(edges[1].1, Some(Edge::Neg));
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn nonzero_lsb_range() {
        let d = elab("module m(input [8:1] a, output [8:1] y);\nassign y = a;\nendmodule\n");
        let a = d.signal(d.signal_id("a").unwrap());
        assert_eq!(a.width, 8);
        assert_eq!(a.lsb, 1);
    }

    #[test]
    fn port_redeclaration_tolerated() {
        // `input a; wire a;` is legal Verilog (net re-declaration of a
        // port); elaboration keeps the port's signal.
        let d = elab("module m(input a, output y);\nwire a;\nassign y = a;\nendmodule\n");
        assert!(d.signal_id("a").is_some());
        assert_eq!(d.signals().len(), 2);
    }

    #[test]
    fn port_width_mismatch_tolerated() {
        // Connecting a 1-bit literal to a 2-bit port elaborates (zero
        // extension happens at evaluation) — required by the Port
        // Mismatch error class.
        let d = elab(
            "module top(input a, output [1:0] y);\n\
             sub u(.i({a, 1'b1}), .o(y));\nendmodule\n\
             module sub(input [1:0] i, output [1:0] o);\nassign o = i;\nendmodule\n",
        );
        assert!(d.signal_id("u.i").is_some());
    }
}
