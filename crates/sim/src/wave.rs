//! Waveform capture: per-cycle snapshots of scalar signal values.
//!
//! The UVLLM localization engine (Algorithm 2) queries waveforms for
//! input values at mismatch timestamps, so the recorder favours simple
//! time-indexed snapshots over VCD-style change lists.

use crate::backend::SimControl;
use crate::elab::SignalId;
use crate::logic::Logic;
use std::collections::HashMap;

/// A recorded waveform: one snapshot of every scalar signal per capture.
#[derive(Debug, Clone, Default)]
pub struct Waveform {
    /// Signal names in snapshot order.
    names: Vec<String>,
    ids: Vec<SignalId>,
    index: HashMap<String, usize>,
    /// Capture timestamps (monotonically non-decreasing).
    times: Vec<u64>,
    /// `frames[t][s]` = value of signal `s` at capture `t`.
    frames: Vec<Vec<Logic>>,
}

impl Waveform {
    /// Creates an empty waveform recorder for `sim`'s design (works on
    /// either kernel via [`SimControl`]).
    pub fn new<S: SimControl + ?Sized>(sim: &S) -> Self {
        let mut names = Vec::new();
        let mut ids = Vec::new();
        let mut index = HashMap::new();
        for (id, _) in sim.scalar_values() {
            let name = sim.design().signal(id).name.clone();
            index.insert(name.clone(), names.len());
            names.push(name);
            ids.push(id);
        }
        Waveform { names, ids, index, times: Vec::new(), frames: Vec::new() }
    }

    /// Records the current state of `sim` at its current time.
    ///
    /// Called once per checked cycle; reads the pre-resolved signal ids
    /// directly so the only allocation is the frame itself.
    pub fn capture<S: SimControl + ?Sized>(&mut self, sim: &S) {
        self.times.push(sim.time());
        let mut frame = Vec::with_capacity(self.ids.len());
        for id in &self.ids {
            frame.push(sim.peek(*id));
        }
        self.frames.push(frame);
    }

    /// Number of captures taken.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Recorded signal names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Signal ids in the same order as [`Waveform::names`].
    pub fn ids(&self) -> &[SignalId] {
        &self.ids
    }

    /// Capture timestamps.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Value of `name` at the last capture with `time' <= time`.
    pub fn value_at(&self, name: &str, time: u64) -> Option<Logic> {
        let sig = *self.index.get(name)?;
        let frame = match self.times.binary_search(&time) {
            Ok(mut i) => {
                // Multiple captures can share a timestamp; take the last.
                while i + 1 < self.times.len() && self.times[i + 1] == time {
                    i += 1;
                }
                i
            }
            Err(0) => return None,
            Err(i) => i - 1,
        };
        self.frames.get(frame).map(|f| f[sig])
    }

    /// Value of `name` at capture index `idx`.
    pub fn value_at_index(&self, name: &str, idx: usize) -> Option<Logic> {
        let sig = *self.index.get(name)?;
        self.frames.get(idx).map(|f| f[sig])
    }

    /// All values of `name` across captures.
    pub fn series(&self, name: &str) -> Option<Vec<(u64, Logic)>> {
        let sig = *self.index.get(name)?;
        Some(self.times.iter().zip(&self.frames).map(|(t, f)| (*t, f[sig])).collect())
    }

    /// Exports the waveform as a standard VCD document, viewable in
    /// GTKWave and friends. Each capture becomes one `#time` block.
    pub fn to_vcd(&self, top: &str) -> String {
        let mut out = String::new();
        out.push_str("$version uvllm-sim $end\n$timescale 1ns $end\n");
        out.push_str(&format!("$scope module {top} $end\n"));
        // VCD id codes: printable ASCII starting at '!'.
        let id = |i: usize| -> String {
            let mut n = i;
            let mut s = String::new();
            loop {
                s.push((b'!' + (n % 94) as u8) as char);
                n /= 94;
                if n == 0 {
                    break;
                }
            }
            s
        };
        let widths: Vec<u32> = self
            .frames
            .first()
            .map(|f| f.iter().map(|l| l.width()).collect())
            .unwrap_or_else(|| vec![1; self.names.len()]);
        for (i, name) in self.names.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(1);
            // Hierarchical separators are not legal in VCD identifiers.
            let clean = name.replace('.', "_");
            out.push_str(&format!("$var wire {w} {} {clean} $end\n", id(i)));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last: Vec<Option<Logic>> = vec![None; self.names.len()];
        for (t, frame) in self.times.iter().zip(&self.frames) {
            out.push_str(&format!("#{t}\n"));
            for (i, v) in frame.iter().enumerate() {
                if last[i] == Some(*v) {
                    continue;
                }
                last[i] = Some(*v);
                if v.width() == 1 {
                    out.push_str(&format!("{}{}\n", bit_char(*v, 0), id(i)));
                } else {
                    out.push('b');
                    for bit in (0..v.width()).rev() {
                        out.push(bit_char(*v, bit));
                    }
                    out.push_str(&format!(" {}\n", id(i)));
                }
            }
        }
        out
    }

    /// Snapshot of every signal at the last capture with `time' <= time`,
    /// as a name → value map (used for dynamic slicing).
    pub fn snapshot_at(&self, time: u64) -> HashMap<String, Logic> {
        let frame = match self.times.binary_search(&time) {
            Ok(mut i) => {
                while i + 1 < self.times.len() && self.times[i + 1] == time {
                    i += 1;
                }
                Some(i)
            }
            Err(0) => None,
            Err(i) => Some(i - 1),
        };
        match frame {
            Some(f) => self.names.iter().cloned().zip(self.frames[f].iter().copied()).collect(),
            None => HashMap::new(),
        }
    }
}

/// The VCD character for bit `index` of `v`.
fn bit_char(v: Logic, index: u32) -> char {
    let b = v.get_bit(index);
    match (b.xz() & 1, b.val() & 1) {
        (0, 0) => '0',
        (0, 1) => '1',
        (1, 0) => 'x',
        _ => 'z',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use crate::sched::Simulator;
    use uvllm_verilog::parse;

    fn counter_sim() -> Simulator {
        let file = parse(
            "module c(input clk, input rst_n, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\nend\nendmodule\n",
        )
        .unwrap();
        let d = elaborate(&file, "c").unwrap();
        Simulator::new(d).unwrap()
    }

    #[test]
    fn records_and_queries_series() {
        let mut sim = counter_sim();
        let mut wave = Waveform::new(&sim);
        sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
        sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
        for t in 0..4u64 {
            sim.set_time(t * 10);
            sim.poke_by_name("clk", Logic::bit(true)).unwrap();
            wave.capture(&sim);
            sim.poke_by_name("clk", Logic::bit(false)).unwrap();
        }
        assert_eq!(wave.len(), 4);
        assert_eq!(wave.value_at("q", 0).unwrap().to_u128(), Some(1));
        assert_eq!(wave.value_at("q", 30).unwrap().to_u128(), Some(4));
        // Query between captures resolves to the earlier one.
        assert_eq!(wave.value_at("q", 15).unwrap().to_u128(), Some(2));
        // Query before the first capture.
        assert!(wave.value_at("q", u64::MAX).is_some());
        let series = wave.series("q").unwrap();
        assert_eq!(series.len(), 4);
    }

    #[test]
    fn snapshot_contains_all_scalars() {
        let mut sim = counter_sim();
        let mut wave = Waveform::new(&sim);
        sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
        sim.set_time(5);
        wave.capture(&sim);
        let snap = wave.snapshot_at(5);
        assert!(snap.contains_key("clk"));
        assert!(snap.contains_key("q"));
        assert_eq!(snap["q"].to_u128(), Some(0));
    }

    #[test]
    fn vcd_export_is_wellformed() {
        let mut sim = counter_sim();
        let mut wave = Waveform::new(&sim);
        sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
        sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
        for t in 0..3u64 {
            sim.set_time(t * 10);
            sim.poke_by_name("clk", Logic::bit(true)).unwrap();
            wave.capture(&sim);
            sim.poke_by_name("clk", Logic::bit(false)).unwrap();
        }
        let vcd = wave.to_vcd("c");
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#20"));
        // Unchanged signals are not re-emitted.
        let q_lines = vcd.lines().filter(|l| l.starts_with('b')).count();
        assert!(q_lines >= 3, "q changes every cycle: {vcd}");
    }

    #[test]
    fn unknown_name_yields_none() {
        let sim = counter_sim();
        let wave = Waveform::new(&sim);
        assert!(wave.value_at("zz", 0).is_none());
        assert!(wave.is_empty());
    }
}
