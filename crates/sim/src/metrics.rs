//! Registry handles for the simulation layer, resolved once and shared.
//!
//! Kernel instrumentation follows the `uvllm-obs` contract: each
//! simulator instance captures its kernel's handle struct at
//! construction, accumulates tallies in locals inside the settle loop,
//! and flushes them as a handful of relaxed atomic adds per settle —
//! so the steady-state cycle loop stays allocation-free and the
//! per-activation path stays atomic-free.

use std::sync::OnceLock;
use uvllm_obs::{registry, Counter};

/// Event-kernel counters (`sim.event.*`).
#[derive(Debug)]
pub(crate) struct EventKernelMetrics {
    /// Settle sweeps driven ([`crate::sched::Simulator`] event-loop
    /// entries: pokes that triggered work, plus explicit settles).
    pub settles: &'static Counter,
    /// Process activations executed.
    pub activations: &'static Counter,
    /// Events enqueued into the active set (triggered process
    /// scheduling, including sweep seeds).
    pub events: &'static Counter,
    /// Non-blocking assignments committed at delta boundaries.
    pub nba_commits: &'static Counter,
}

/// Compiled-kernel counters (`sim.compiled.*`).
#[derive(Debug)]
pub(crate) struct CompiledKernelMetrics {
    /// Delta-cycle driver entries ([`crate::kernel::CompiledSim`]).
    pub settles: &'static Counter,
    /// Process activations that ran the unchecked two-state fast path.
    pub fastpath_hits: &'static Counter,
    /// Process activations that ran the four-state fallback.
    pub fallback_hits: &'static Counter,
    /// Non-blocking assignments committed at delta boundaries.
    pub nba_commits: &'static Counter,
}

/// Cache and instance-pool counters (`sim.elab_cache.*`, `sim.pool.*`).
#[derive(Debug)]
pub(crate) struct CacheMetrics {
    pub elab_hits: &'static Counter,
    pub elab_misses: &'static Counter,
    pub elab_evictions: &'static Counter,
    pub pool_checkouts: &'static Counter,
    pub pool_reuses: &'static Counter,
    /// `reset_state` rewinds performed on reused pooled instances.
    pub pool_resets: &'static Counter,
}

pub(crate) fn event_kernel() -> &'static EventKernelMetrics {
    static METRICS: OnceLock<EventKernelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EventKernelMetrics {
        settles: registry().counter("sim.event.settles"),
        activations: registry().counter("sim.event.activations"),
        events: registry().counter("sim.event.events"),
        nba_commits: registry().counter("sim.event.nba_commits"),
    })
}

pub(crate) fn compiled_kernel() -> &'static CompiledKernelMetrics {
    static METRICS: OnceLock<CompiledKernelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CompiledKernelMetrics {
        settles: registry().counter("sim.compiled.settles"),
        fastpath_hits: registry().counter("sim.compiled.fastpath_hits"),
        fallback_hits: registry().counter("sim.compiled.fallback_hits"),
        nba_commits: registry().counter("sim.compiled.nba_commits"),
    })
}

pub(crate) fn cache() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        elab_hits: registry().counter("sim.elab_cache.hits"),
        elab_misses: registry().counter("sim.elab_cache.misses"),
        elab_evictions: registry().counter("sim.elab_cache.evictions"),
        pool_checkouts: registry().counter("sim.pool.checkouts"),
        pool_reuses: registry().counter("sim.pool.reuses"),
        pool_resets: registry().counter("sim.pool.resets"),
    })
}
