//! Precompiled process programs for the event-driven kernel.
//!
//! At [`crate::Simulator`] construction every process body is lowered
//! **once** from the [`LStmt`] tree into a flat array of [`Op`]s:
//! assignment targets are pre-resolved (signal, constant LSB offsets,
//! word-count limits), assignment context widths are precomputed, and
//! `if`/`case` control flow becomes patched jump offsets. A process
//! activation is then a program-counter loop over the ops — no tree
//! recursion, no per-activation `LTarget::width` walks, and no heap
//! allocation (write staging goes through the scheduler's persistent
//! scratch buffers; expression values are plain `Copy` [`crate::Logic`]
//! structs that never touch the heap).
//!
//! Concatenated targets are flattened at lowering time: nested
//! `LTarget::Concat` trees collapse into one MSB-first list of leaves,
//! each carrying the absolute slice LSB and width it takes from the
//! evaluated right-hand side. Slicing composes exactly — an inner
//! concat's slice-of-a-slice is the same bits as the precomputed
//! absolute slice — so the flattened writes are bit-identical to the
//! old recursive resolution.

use crate::elab::{Design, LExpr, LStmt, LTarget, SignalId};
use uvllm_verilog::ast::CaseKind;

/// A leaf assignment destination with everything pre-resolved. Dynamic
/// bit/word selects keep their lowered index expression (evaluated per
/// write, self-determined, exactly as the tree walker did).
#[derive(Debug, Clone)]
pub(crate) enum Dst {
    /// Whole signal of `width` bits.
    Whole { sig: SignalId, width: u32 },
    /// Constant part select `[lsb, lsb+width)`.
    Part { sig: SignalId, lsb: u32, width: u32 },
    /// Dynamic bit select; `limit` is the signal width (X/Z or
    /// out-of-range indices drop the write).
    Bit { sig: SignalId, index: LExpr, limit: u32 },
    /// Dynamic array-word write of `width` bits; `limit` is the word
    /// count.
    Word { sig: SignalId, index: LExpr, width: u32, limit: u32 },
}

/// One flat instruction of a [`ProcessProgram`].
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Evaluate `rhs` at context `width` and write through `dst`.
    Assign { dst: Dst, rhs: LExpr, width: u32, blocking: bool },
    /// Concatenated target: `rhs` is evaluated once at `width` (the
    /// concat's total), then sliced most-significant-first into the
    /// leaves; each entry is `(slice_lsb, slice_width, leaf)`.
    AssignConcat { parts: Vec<(u32, u32, Dst)>, rhs: LExpr, width: u32, blocking: bool },
    /// `if`: a true condition falls through into the then-block, false
    /// jumps to `on_false` (the else-block or past the statement), and
    /// an unknown condition jumps to `on_unknown` (past both branches —
    /// X-conservative, neither branch executes).
    Branch { cond: LExpr, on_false: u32, on_unknown: u32 },
    /// Unconditional jump (end of a then-block or case arm).
    Jump { to: u32 },
    /// `case`/`casez`/`casex` dispatch: labels are scanned in source
    /// order and the first match jumps to its arm; no match jumps to
    /// `fallback` (the default arm, or past the statement).
    Case { kind: CaseKind, sel: LExpr, arms: Vec<(Vec<LExpr>, u32)>, fallback: u32 },
}

/// A process body lowered to a flat op array. Execution lives in
/// [`crate::Simulator`]; this module only builds the representation.
#[derive(Debug, Clone)]
pub(crate) struct ProcessProgram {
    pub(crate) ops: Vec<Op>,
}

/// Lowers one process body.
pub(crate) fn lower_process(design: &Design, body: &LStmt) -> ProcessProgram {
    let mut ops = Vec::new();
    lower_stmt(design, body, &mut ops);
    ProcessProgram { ops }
}

fn lower_stmt(design: &Design, stmt: &LStmt, ops: &mut Vec<Op>) {
    match stmt {
        LStmt::Block(stmts) => {
            for s in stmts {
                lower_stmt(design, s, ops);
            }
        }
        LStmt::Nop => {}
        LStmt::Assign { lhs, rhs, blocking, .. } => {
            let width = lhs.width(design).max(1);
            match lhs {
                LTarget::Concat(targets) => {
                    let mut parts = Vec::new();
                    flatten_concat(design, targets, 0, width, &mut parts);
                    ops.push(Op::AssignConcat {
                        parts,
                        rhs: rhs.clone(),
                        width,
                        blocking: *blocking,
                    });
                }
                leaf => ops.push(Op::Assign {
                    dst: lower_leaf(design, leaf),
                    rhs: rhs.clone(),
                    width,
                    blocking: *blocking,
                }),
            }
        }
        LStmt::If { cond, then_branch, else_branch, .. } => {
            let branch_at = ops.len();
            ops.push(Op::Branch { cond: cond.clone(), on_false: 0, on_unknown: 0 });
            lower_stmt(design, then_branch, ops);
            let (on_false, end) = match else_branch {
                Some(e) => {
                    let jump_at = ops.len();
                    ops.push(Op::Jump { to: 0 });
                    let else_start = ops.len() as u32;
                    lower_stmt(design, e, ops);
                    let end = ops.len() as u32;
                    patch_jump(ops, jump_at, end);
                    (else_start, end)
                }
                None => {
                    let end = ops.len() as u32;
                    (end, end)
                }
            };
            if let Op::Branch { on_false: f, on_unknown: u, .. } = &mut ops[branch_at] {
                *f = on_false;
                *u = end;
            }
        }
        LStmt::Case { kind, expr, arms, default, .. } => {
            let case_at = ops.len();
            ops.push(Op::Case { kind: *kind, sel: expr.clone(), arms: Vec::new(), fallback: 0 });
            let mut lowered_arms = Vec::with_capacity(arms.len());
            let mut arm_ends = Vec::with_capacity(arms.len());
            for (labels, body) in arms {
                lowered_arms.push((labels.clone(), ops.len() as u32));
                lower_stmt(design, body, ops);
                arm_ends.push(ops.len());
                ops.push(Op::Jump { to: 0 });
            }
            let fallback = ops.len() as u32;
            if let Some(d) = default {
                lower_stmt(design, d, ops);
            }
            let end = ops.len() as u32;
            for jump_at in arm_ends {
                patch_jump(ops, jump_at, end);
            }
            if let Op::Case { arms: a, fallback: f, .. } = &mut ops[case_at] {
                *a = lowered_arms;
                *f = fallback;
            }
        }
    }
}

fn patch_jump(ops: &mut [Op], at: usize, to: u32) {
    if let Op::Jump { to: t } = &mut ops[at] {
        *t = to;
    }
}

fn lower_leaf(design: &Design, target: &LTarget) -> Dst {
    match target {
        LTarget::Whole(s) => Dst::Whole { sig: *s, width: design.signal(*s).width },
        LTarget::Part(s, lsb, w) => Dst::Part { sig: *s, lsb: *lsb, width: *w },
        LTarget::Bit(s, index) => {
            Dst::Bit { sig: *s, index: index.clone(), limit: design.signal(*s).width }
        }
        LTarget::Word(s, index) => {
            let info = design.signal(*s);
            Dst::Word { sig: *s, index: index.clone(), width: info.width, limit: info.words }
        }
        LTarget::Concat(_) => unreachable!("concats are flattened by the caller"),
    }
}

/// Flattens a (possibly nested) concat target covering bits
/// `[base, base+total)` of the evaluated value into MSB-first leaves,
/// giving each leaf the absolute LSB of the slice it writes.
fn flatten_concat(
    design: &Design,
    targets: &[LTarget],
    base: u32,
    total: u32,
    out: &mut Vec<(u32, u32, Dst)>,
) {
    let mut consumed = 0u32;
    for t in targets {
        let pw = t.width(design);
        let lsb = base + total - consumed - pw;
        match t {
            LTarget::Concat(inner) => flatten_concat(design, inner, lsb, pw, out),
            leaf => out.push((lsb, pw, lower_leaf(design, leaf))),
        }
        consumed += pw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use uvllm_verilog::parse;

    fn program_for(src: &str, process: usize) -> ProcessProgram {
        let file = parse(src).unwrap();
        let top = &file.top().unwrap().name;
        let design = elaborate(&file, top).unwrap();
        lower_process(&design, &design.processes()[process].body)
    }

    #[test]
    fn straight_line_body_is_one_op_per_assign() {
        let p = program_for(
            "module m(input [3:0] a, output reg [3:0] x, output reg [3:0] y);\n\
             always @(*) begin\nx = a + 4'd1;\ny = x + 4'd1;\nend\nendmodule\n",
            0,
        );
        assert_eq!(p.ops.len(), 2);
        assert!(p.ops.iter().all(|op| matches!(
            op,
            Op::Assign { dst: Dst::Whole { width: 4, .. }, width: 4, blocking: true, .. }
        )));
    }

    #[test]
    fn if_else_patches_all_three_exits() {
        let p = program_for(
            "module m(input s, input a, input b, output reg y);\n\
             always @(*) begin\nif (s) y = a; else y = b;\nend\nendmodule\n",
            0,
        );
        // Branch, then-assign, jump-over-else, else-assign.
        assert_eq!(p.ops.len(), 4);
        let Op::Branch { on_false, on_unknown, .. } = &p.ops[0] else {
            panic!("expected branch, got {:?}", p.ops[0]);
        };
        assert_eq!(*on_false, 3, "false jumps to the else assign");
        assert_eq!(*on_unknown, 4, "unknown skips both branches");
        let Op::Jump { to } = &p.ops[2] else {
            panic!("expected jump, got {:?}", p.ops[2]);
        };
        assert_eq!(*to, 4, "then-block exits past the else");
    }

    #[test]
    fn case_arms_jump_past_the_default() {
        let p = program_for(
            "module m(input [1:0] s, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
             always @(*) begin\ncase (s)\n2'b00: y = a;\n2'b01: y = b;\n\
             default: y = 4'd0;\nendcase\nend\nendmodule\n",
            0,
        );
        // Case, arm0, jump, arm1, jump, default.
        assert_eq!(p.ops.len(), 6);
        let Op::Case { arms, fallback, .. } = &p.ops[0] else {
            panic!("expected case, got {:?}", p.ops[0]);
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].1, 1);
        assert_eq!(arms[1].1, 3);
        assert_eq!(*fallback, 5, "no match lands on the default arm");
        for at in [2usize, 4] {
            let Op::Jump { to } = &p.ops[at] else {
                panic!("expected jump at {at}");
            };
            assert_eq!(*to, 6, "arms exit past the default");
        }
    }

    #[test]
    fn concat_target_is_flattened_with_absolute_lsbs() {
        let p = program_for(
            "module m(input [7:0] a, input [7:0] b, output reg c, output reg [7:0] s);\n\
             always @(*) {c, s} = a + b;\nendmodule\n",
            0,
        );
        assert_eq!(p.ops.len(), 1);
        let Op::AssignConcat { parts, width, .. } = &p.ops[0] else {
            panic!("expected concat assign, got {:?}", p.ops[0]);
        };
        assert_eq!(*width, 9);
        // MSB-first: c takes bit 8, s takes bits [0, 8).
        assert_eq!(parts.len(), 2);
        assert_eq!((parts[0].0, parts[0].1), (8, 1));
        assert_eq!((parts[1].0, parts[1].1), (0, 8));
    }

    #[test]
    fn nested_concat_collapses_to_one_leaf_list() {
        let p = program_for(
            "module m(input [5:0] v, output reg a, output reg [1:0] b, output reg [2:0] c);\n\
             always @(*) {a, {b, c}} = v;\nendmodule\n",
            0,
        );
        let Op::AssignConcat { parts, width: 6, .. } = &p.ops[0] else {
            panic!("expected 6-bit concat assign, got {:?}", p.ops[0]);
        };
        let lsbs: Vec<(u32, u32)> = parts.iter().map(|(l, w, _)| (*l, *w)).collect();
        assert_eq!(lsbs, vec![(5, 1), (3, 2), (0, 3)], "absolute slices, MSB-first");
    }

    #[test]
    fn unrolled_loops_lower_flat() {
        let p = program_for(
            "module f(input [7:0] d, output reg [7:0] q);\ninteger i;\n\
             always @(*) begin\nfor (i = 0; i < 8; i = i + 1) q[i] = d[7 - i];\nend\nendmodule\n",
            0,
        );
        assert_eq!(p.ops.len(), 8, "eight unrolled bit assigns");
        assert!(p.ops.iter().all(|op| matches!(op, Op::Assign { dst: Dst::Bit { .. }, .. })));
    }
}
