//! Process-wide, content-addressed elaboration cache.
//!
//! Parsing + elaboration is pure — the resulting [`Design`] depends only
//! on the source text and the top-module name — so identical sources can
//! share one elaboration. Large verification campaigns hit the same
//! texts constantly: every job re-checks its candidate under both
//! metrics (HR and FR), all methods of one benchmark instance share the
//! mutated source, and successful repairs converge on the golden text
//! itself. The campaign engine pre-warms this cache with each design's
//! golden source so per-design elaboration happens exactly once per
//! worker set.
//!
//! Concurrency: the map lock is held only for bookkeeping; elaboration
//! itself runs outside it. A thread that begins elaborating a key
//! leaves an in-flight marker, and other threads wanting the same key
//! block on its condvar instead of elaborating again — "exactly once"
//! without serialising unrelated work across the worker pool.
//!
//! Entries are `Arc`-shared and the map is capacity-capped (wholesale
//! eviction of ready entries at [`ELAB_CACHE_CAPACITY`]) so unbounded
//! candidate streams cannot exhaust memory. Results (including parse/
//! elaboration failures) are cached; since elaboration is deterministic
//! the cache is invisible to callers except in speed.
//!
//! **Pass configuration.** Every cache layer (elaboration, compilation,
//! instance pool) keys on the active [`OptProfile`] label in addition
//! to `(source, top)`: an optimized and an unoptimized variant of the
//! same text are distinct entries and distinct pooled instances, so a
//! mixed-profile process can never hand one caller the other's design.
//! The profile's transform runs once per miss, right after elaboration,
//! and its label is the cache discriminator — profiles with the same
//! label **must** denote the same transform.

use crate::compile::CompiledDesign;
use crate::elab::{elaborate, Design};
use crate::kernel::CompiledSim;
use crate::sched::SimError;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Ready-entry cap; reaching it clears the ready entries (simple, and
/// far above the working set of a campaign round).
pub const ELAB_CACHE_CAPACITY: usize = 4096;

/// `(source, top, opt label)` — the content address of one design
/// variant. The empty label is the identity (no passes).
type Key = (String, String, String);
type CachedResult = Result<Arc<Design>, String>;

/// A design rewrite applied between elaboration and the kernels.
pub type DesignTransform = Arc<dyn Fn(&mut Design) + Send + Sync>;

/// A named post-elaboration pass configuration.
///
/// The label keys every cache layer; the transform is what a cache miss
/// runs on the freshly elaborated design. [`OptProfile::none`] (the
/// default) is the identity with the empty label — exactly the
/// pre-pass-framework behaviour.
#[derive(Clone, Default)]
pub struct OptProfile {
    label: String,
    transform: Option<DesignTransform>,
}

impl OptProfile {
    /// The identity profile: no passes, empty cache label.
    pub fn none() -> OptProfile {
        OptProfile::default()
    }

    /// A named transform. The label becomes part of the cache key, so
    /// it must uniquely identify the transform's behaviour.
    ///
    /// # Panics
    ///
    /// Panics on an empty label — that is reserved for the identity.
    pub fn new(label: impl Into<String>, transform: DesignTransform) -> OptProfile {
        let label = label.into();
        assert!(!label.is_empty(), "optimization profile label must be non-empty");
        OptProfile { label, transform: Some(transform) }
    }

    /// The cache-key label (empty for the identity profile).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// True for the identity profile.
    pub fn is_identity(&self) -> bool {
        self.transform.is_none()
    }

    /// Applies the transform (no-op for the identity profile).
    pub fn apply(&self, design: &mut Design) {
        if let Some(transform) = &self.transform {
            transform(design);
        }
    }
}

impl fmt::Debug for OptProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OptProfile")
            .field("label", &self.label)
            .field("transform", &self.transform.as_ref().map(|_| "..."))
            .finish()
    }
}

fn default_opt() -> &'static Mutex<OptProfile> {
    static DEFAULT: OnceLock<Mutex<OptProfile>> = OnceLock::new();
    DEFAULT.get_or_init(|| Mutex::new(OptProfile::none()))
}

/// Sets the process-default pass configuration used by the label-less
/// entry points ([`elaborate_source_cached`], [`compile_source_cached`],
/// [`checkout_sim`]) — the lever the campaign CLI's `--opt-level` pulls
/// without threading a profile through every layer. Variants never
/// collide regardless: the label is part of every cache key.
pub fn set_default_opt_profile(profile: OptProfile) {
    *default_opt().lock().expect("default opt profile poisoned") = profile;
}

/// The current process-default pass configuration.
pub fn default_opt_profile() -> OptProfile {
    default_opt().lock().expect("default opt profile poisoned").clone()
}

/// A slot another thread is currently elaborating; waiters park on the
/// condvar until the result lands.
struct InFlight {
    slot: Mutex<Option<CachedResult>>,
    ready: Condvar,
}

enum Entry {
    Ready(CachedResult),
    Pending(Arc<InFlight>),
}

struct Inner {
    map: HashMap<Key, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Counters describing cache effectiveness (see [`stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElabCacheStats {
    /// Lookups served from the cache (including waits on an elaboration
    /// already in flight on another thread).
    pub hits: u64,
    /// Lookups that elaborated fresh (equals the number of distinct
    /// (source, top) pairs seen, absent evictions).
    pub misses: u64,
    /// Wholesale evictions triggered by the capacity cap.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

fn inner() -> &'static Mutex<Inner> {
    static CACHE: OnceLock<Mutex<Inner>> = OnceLock::new();
    CACHE
        .get_or_init(|| Mutex::new(Inner { map: HashMap::new(), hits: 0, misses: 0, evictions: 0 }))
}

/// Parses and elaborates `src` with `top` as root, memoised process-wide,
/// under the process-default [`OptProfile`].
///
/// # Errors
///
/// Returns the parse or elaboration error message (also memoised).
pub fn elaborate_source_cached(src: &str, top: &str) -> CachedResult {
    elaborate_source_opt(src, top, &default_opt_profile())
}

/// [`elaborate_source_cached`] under an explicit pass configuration:
/// the profile's transform runs once on each miss and its label keys
/// the entry, so variants of one text never alias.
///
/// # Errors
///
/// Returns the parse or elaboration error message (also memoised).
pub fn elaborate_source_opt(src: &str, top: &str, opt: &OptProfile) -> CachedResult {
    let key = (src.to_string(), top.to_string(), opt.label().to_string());
    let flight: Arc<InFlight>;
    {
        let mut cache = inner().lock().expect("elab cache poisoned");
        match cache.map.get(&key) {
            Some(Entry::Ready(result)) => {
                let result = result.clone();
                cache.hits += 1;
                crate::metrics::cache().elab_hits.inc();
                return result;
            }
            Some(Entry::Pending(in_flight)) => {
                // Another thread is elaborating this exact key: wait for
                // its result instead of duplicating the work.
                let in_flight = Arc::clone(in_flight);
                cache.hits += 1;
                crate::metrics::cache().elab_hits.inc();
                drop(cache);
                let mut slot = in_flight.slot.lock().expect("in-flight slot poisoned");
                while slot.is_none() {
                    slot = in_flight.ready.wait(slot).expect("in-flight slot poisoned");
                }
                return slot.clone().expect("checked above");
            }
            None => {
                flight = Arc::new(InFlight { slot: Mutex::new(None), ready: Condvar::new() });
                cache.misses += 1;
                crate::metrics::cache().elab_misses.inc();
                cache.map.insert(key.clone(), Entry::Pending(Arc::clone(&flight)));
            }
        }
    }

    // Elaborate outside the map lock: unrelated keys proceed in
    // parallel across the worker pool.
    let result: CachedResult = {
        let parsed = {
            let _span = uvllm_obs::Span::enter("parse");
            uvllm_verilog::parse(src).map_err(|e| e.to_string())
        };
        parsed
            .and_then(|file| {
                let _span = uvllm_obs::Span::enter("elab");
                elaborate(&file, top).map_err(|e| e.to_string())
            })
            .map(|mut design| {
                if !opt.is_identity() {
                    let _span = uvllm_obs::Span::enter("optimize");
                    opt.apply(&mut design);
                }
                Arc::new(design)
            })
    };

    {
        let mut cache = inner().lock().expect("elab cache poisoned");
        if cache.map.len() >= ELAB_CACHE_CAPACITY {
            // Evict ready entries only; in-flight markers must survive
            // or their waiters would hang.
            cache.map.retain(|_, entry| matches!(entry, Entry::Pending(_)));
            cache.evictions += 1;
            crate::metrics::cache().elab_evictions.inc();
        }
        cache.map.insert(key, Entry::Ready(result.clone()));
    }
    let mut slot = flight.slot.lock().expect("in-flight slot poisoned");
    *slot = Some(result.clone());
    flight.ready.notify_all();
    drop(slot);
    result
}

type CompiledResult = Result<Arc<CompiledDesign>, String>;

fn compiled_inner() -> &'static Mutex<HashMap<Key, CompiledResult>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, CompiledResult>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Parses, elaborates **and compiles** `src` for the levelized kernel,
/// memoised process-wide.
///
/// The front half (parse + elaborate) shares [`elaborate_source_cached`]
/// — including its in-flight dedup — so the elaboration is still done
/// exactly once per distinct text; compilation itself is fast and
/// idempotent, so a plain capacity-capped memo map suffices for the
/// back half.
///
/// # Errors
///
/// Returns the parse or elaboration error message (also memoised).
pub fn compile_source_cached(src: &str, top: &str) -> CompiledResult {
    compile_source_opt(src, top, &default_opt_profile())
}

/// [`compile_source_cached`] under an explicit pass configuration.
///
/// # Errors
///
/// Returns the parse or elaboration error message (also memoised).
pub fn compile_source_opt(src: &str, top: &str, opt: &OptProfile) -> CompiledResult {
    let key = (src.to_string(), top.to_string(), opt.label().to_string());
    if let Some(hit) = compiled_inner().lock().expect("compile cache poisoned").get(&key) {
        return hit.clone();
    }
    let result: CompiledResult = elaborate_source_opt(src, top, opt)
        .map(|design| Arc::new(CompiledDesign::from_arc(design)));
    let mut cache = compiled_inner().lock().expect("compile cache poisoned");
    if cache.len() >= ELAB_CACHE_CAPACITY {
        cache.clear();
    }
    cache.insert(key, result.clone());
    result
}

// ----------------------------------------------------------------------
// Resettable compiled-simulation instances
// ----------------------------------------------------------------------

/// Retained instances per distinct (source, top) key. A campaign worker
/// runs one job at a time, so a handful of parked instances per text
/// covers bursts where several workers hit the same candidate.
pub const SIM_POOL_PER_KEY: usize = 8;

/// Why [`checkout_sim`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckoutError {
    /// The source did not parse/elaborate (memoised message).
    Build(String),
    /// The design built but oscillated during time-zero settling.
    Sim(SimError),
}

impl fmt::Display for CheckoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckoutError::Build(m) => write!(f, "{m}"),
            CheckoutError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckoutError {}

/// Counters describing instance-pool effectiveness (see
/// [`sim_pool_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimPoolStats {
    /// Successful checkouts handed to callers.
    pub checkouts: u64,
    /// Checkouts served by rewinding a parked instance instead of
    /// instantiating a fresh one.
    pub reuses: u64,
    /// Instances currently parked across all keys.
    pub parked: usize,
}

struct PoolInner {
    map: HashMap<Key, Vec<CompiledSim>>,
    checkouts: u64,
    reuses: u64,
}

fn pool_inner() -> &'static Mutex<PoolInner> {
    static POOL: OnceLock<Mutex<PoolInner>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(PoolInner { map: HashMap::new(), checkouts: 0, reuses: 0 }))
}

/// A compiled simulation checked out of the process-wide instance pool:
/// derefs to [`CompiledSim`] and parks the instance back in the pool on
/// drop, where the next [`checkout_sim`] of the same text rewinds it
/// ([`CompiledSim::reset_state`]) instead of re-instantiating.
pub struct PooledSim {
    sim: Option<CompiledSim>,
    key: Option<Key>,
}

impl PooledSim {
    /// Wraps an instance that is not pool-managed (dropped normally).
    pub fn detached(sim: CompiledSim) -> PooledSim {
        PooledSim { sim: Some(sim), key: None }
    }
}

impl Deref for PooledSim {
    type Target = CompiledSim;
    fn deref(&self) -> &CompiledSim {
        self.sim.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledSim {
    fn deref_mut(&mut self) -> &mut CompiledSim {
        self.sim.as_mut().expect("present until drop")
    }
}

impl fmt::Debug for PooledSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledSim").field("pooled", &self.key.is_some()).finish()
    }
}

impl Clone for PooledSim {
    /// The clone is an independent instance of the same key; both park
    /// back into the pool on drop (capacity-capped).
    fn clone(&self) -> PooledSim {
        PooledSim { sim: self.sim.clone(), key: self.key.clone() }
    }
}

impl Drop for PooledSim {
    fn drop(&mut self) {
        if let (Some(sim), Some(key)) = (self.sim.take(), self.key.take()) {
            let mut pool = pool_inner().lock().expect("sim pool poisoned");
            if pool.map.len() >= ELAB_CACHE_CAPACITY && !pool.map.contains_key(&key) {
                pool.map.clear();
            }
            let parked = pool.map.entry(key).or_default();
            if parked.len() < SIM_POOL_PER_KEY {
                parked.push(sim);
            }
        }
    }
}

/// Checks a compiled simulation for `src` out of the process-wide pool:
/// compilation is memoised ([`compile_source_cached`]) and instances
/// are reused across checkouts via [`CompiledSim::reset_state`] — the
/// campaign's metric runs over one candidate text cost two `memcpy`s
/// each instead of an arena rebuild plus a time-zero settle.
///
/// # Errors
///
/// [`CheckoutError::Build`] when the source does not parse/elaborate;
/// [`CheckoutError::Sim`] when the design oscillates at time zero
/// (such designs are never pooled — each checkout re-reports).
pub fn checkout_sim(src: &str, top: &str) -> Result<PooledSim, CheckoutError> {
    checkout_sim_opt(src, top, &default_opt_profile())
}

/// [`checkout_sim`] under an explicit pass configuration: the pooled
/// instances of a text's optimized and unoptimized variants are
/// segregated by the profile label, so a checkout always returns the
/// requested variant.
///
/// # Errors
///
/// As [`checkout_sim`].
pub fn checkout_sim_opt(
    src: &str,
    top: &str,
    opt: &OptProfile,
) -> Result<PooledSim, CheckoutError> {
    let compiled = compile_source_opt(src, top, opt).map_err(CheckoutError::Build)?;
    let key = (src.to_string(), top.to_string(), opt.label().to_string());
    let parked = {
        let mut pool = pool_inner().lock().expect("sim pool poisoned");
        let parked = pool.map.get_mut(&key).and_then(Vec::pop);
        if parked.is_some() {
            pool.checkouts += 1;
            pool.reuses += 1;
            let metrics = crate::metrics::cache();
            metrics.pool_checkouts.inc();
            metrics.pool_reuses.inc();
        }
        parked
    };
    if let Some(mut sim) = parked {
        sim.reset_state();
        crate::metrics::cache().pool_resets.inc();
        return Ok(PooledSim { sim: Some(sim), key: Some(key) });
    }
    let sim = CompiledSim::from_compiled(compiled).map_err(CheckoutError::Sim)?;
    pool_inner().lock().expect("sim pool poisoned").checkouts += 1;
    crate::metrics::cache().pool_checkouts.inc();
    Ok(PooledSim { sim: Some(sim), key: Some(key) })
}

/// Current instance-pool counters.
pub fn sim_pool_stats() -> SimPoolStats {
    let pool = pool_inner().lock().expect("sim pool poisoned");
    SimPoolStats {
        checkouts: pool.checkouts,
        reuses: pool.reuses,
        parked: pool.map.values().map(Vec::len).sum(),
    }
}

/// Empties the instance pool and zeroes its counters (test isolation).
pub fn sim_pool_reset() {
    let mut pool = pool_inner().lock().expect("sim pool poisoned");
    pool.map.clear();
    pool.checkouts = 0;
    pool.reuses = 0;
}

/// Current cache counters.
pub fn stats() -> ElabCacheStats {
    let cache = inner().lock().expect("elab cache poisoned");
    ElabCacheStats {
        hits: cache.hits,
        misses: cache.misses,
        evictions: cache.evictions,
        entries: cache.map.len(),
    }
}

/// Empties the cache and zeroes the counters (test isolation).
///
/// Concurrent in-flight elaborations are left to finish on their own
/// condvars; only the map and counters are reset.
pub fn reset() {
    let mut cache = inner().lock().expect("elab cache poisoned");
    // Keep pending markers so their waiters cannot hang.
    cache.map.retain(|_, entry| matches!(entry, Entry::Pending(_)));
    cache.hits = 0;
    cache.misses = 0;
    cache.evictions = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD: &str = "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
                       assign y = a + b;\nendmodule\n";

    /// One sequential test: the cache (and its counters) are
    /// process-global, so parallel test threads must not interleave
    /// absolute-counter assertions.
    #[test]
    fn cache_memoises_hits_failures_and_tops() {
        reset();
        let before = stats();
        let a = elaborate_source_cached(ADD, "add").unwrap();
        let b = elaborate_source_cached(ADD, "add").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "must share one elaboration");
        let after = stats();
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits > before.hits);

        // Failures are memoised too.
        let bad = "module broken(input a output y);\nendmodule\n";
        let e1 = elaborate_source_cached(bad, "broken").unwrap_err();
        let e2 = elaborate_source_cached(bad, "broken").unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(stats().misses - after.misses, 1);

        // Distinct top modules over one source are distinct entries.
        let two = "module m1(input a, output y);\nassign y = a;\nendmodule\n\
                   module m2(input a, output y);\nassign y = ~a;\nendmodule\n";
        let d1 = elaborate_source_cached(two, "m1").unwrap();
        let d2 = elaborate_source_cached(two, "m2").unwrap();
        assert_eq!(d1.top, "m1");
        assert_eq!(d2.top, "m2");
        assert_eq!(stats().entries, 4);

        // Hammer one key from many threads: still exactly one miss.
        reset();
        let base = stats();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        elaborate_source_cached(ADD, "add").unwrap();
                    }
                });
            }
        });
        let hammered = stats();
        assert_eq!(hammered.misses - base.misses, 1, "one elaboration across 8 threads");
        assert_eq!(hammered.hits - base.hits, 399);
    }

    #[test]
    fn pool_reuses_instances_across_checkouts() {
        const SRC: &str = "module pooled(input clk, input rst_n, output reg [3:0] q);\n\
                           always @(posedge clk or negedge rst_n) begin\n\
                           if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\nend\nendmodule\n";
        sim_pool_reset();
        let base = sim_pool_stats();
        {
            let mut sim = checkout_sim(SRC, "pooled").unwrap();
            let rst = sim.design().signal_id("rst_n").unwrap();
            let clk = sim.design().signal_id("clk").unwrap();
            sim.poke(rst, crate::Logic::bit(true)).unwrap();
            sim.poke(clk, crate::Logic::bit(true)).unwrap();
        } // parked on drop
        let after_first = sim_pool_stats();
        assert_eq!(after_first.checkouts - base.checkouts, 1);
        assert_eq!(after_first.reuses - base.reuses, 0);
        assert!(after_first.parked >= 1);
        {
            let sim = checkout_sim(SRC, "pooled").unwrap();
            // The reused instance was rewound to its fresh state.
            assert_eq!(sim.time(), 0);
            let q = sim.design().signal_id("q").unwrap();
            assert!(sim.peek(q).to_u128().is_none(), "q is X again after rewind");
        }
        let after_second = sim_pool_stats();
        assert_eq!(after_second.reuses - base.reuses, 1, "second checkout reuses the instance");

        // Build failures surface as CheckoutError::Build and are not pooled.
        let bad = "module broken3(input a output y);\nendmodule\n";
        assert!(matches!(checkout_sim(bad, "broken3"), Err(CheckoutError::Build(_))));

        // Time-zero oscillation surfaces as CheckoutError::Sim.
        let osc = "module osc3(output reg a, output reg b);\n\
                   always @(*) begin\ncase (b)\n1'b0: a = 1'b1;\ndefault: a = 1'b0;\nendcase\nend\n\
                   always @(*) begin\ncase (a)\n1'b0: b = 1'b0;\ndefault: b = 1'b1;\nendcase\nend\n\
                   endmodule\n";
        assert!(matches!(checkout_sim(osc, "osc3"), Err(CheckoutError::Sim(_))));
    }

    #[test]
    fn opt_profiles_key_separate_variants() {
        use crate::elab::{SignalInfo, SignalKind};
        // A transform whose effect is observable: it adds a marker signal.
        let marker: DesignTransform = Arc::new(|design: &mut Design| {
            design
                .add_signal(SignalInfo {
                    name: "__opt_marker".to_string(),
                    width: 1,
                    kind: SignalKind::Net,
                    words: 1,
                    lsb: 0,
                    array_lo: 0,
                    is_input: false,
                    is_output: false,
                })
                .unwrap();
        });
        let profile = OptProfile::new("marker", marker);
        let plain = elaborate_source_cached(ADD, "add").unwrap();
        let opt = elaborate_source_opt(ADD, "add", &profile).unwrap();
        assert!(!Arc::ptr_eq(&plain, &opt), "variants must not alias");
        assert!(opt.signal_id("__opt_marker").is_some(), "transform ran on the opt variant");
        assert!(plain.signal_id("__opt_marker").is_none(), "identity variant untouched");
        // Memoised per label: a second opt lookup shares the first.
        let opt2 = elaborate_source_opt(ADD, "add", &profile).unwrap();
        assert!(Arc::ptr_eq(&opt, &opt2));
        // The compiled cache and the pool separate variants the same way.
        let cp = compile_source_opt(ADD, "add", &profile).unwrap();
        let cn = compile_source_cached(ADD, "add").unwrap();
        assert!(cp.design().signal_id("__opt_marker").is_some());
        assert!(cn.design().signal_id("__opt_marker").is_none());
        let sim = checkout_sim_opt(ADD, "add", &profile).unwrap();
        assert!(sim.design().signal_id("__opt_marker").is_some());
        drop(sim);
        let sim = checkout_sim(ADD, "add").unwrap();
        assert!(sim.design().signal_id("__opt_marker").is_none(), "pool returned wrong variant");
    }

    #[test]
    fn compiled_cache_shares_one_compilation() {
        let a = compile_source_cached(ADD, "add").unwrap();
        let b = compile_source_cached(ADD, "add").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "must share one compiled design");
        assert_eq!(a.design().top, "add");
        // Failures are memoised too, with the same message as the
        // elaboration cache.
        let bad = "module broken2(input a output y);\nendmodule\n";
        let e1 = compile_source_cached(bad, "broken2").unwrap_err();
        let e2 = elaborate_source_cached(bad, "broken2").unwrap_err();
        assert_eq!(e1, e2);
    }
}
