//! # uvllm-sim
//!
//! Event-driven four-state Verilog simulator: the execution substrate
//! behind UVLLM's UVM processing stage (the role VCS/Icarus/ModelSim play
//! in the paper).
//!
//! The pipeline is: [`elab::elaborate`] lowers a parsed
//! [`uvllm_verilog::SourceFile`] into a flat [`elab::Design`] (parameters
//! and ranges resolved, loops unrolled, hierarchy inlined), then a
//! [`Simulator`] executes it with IEEE-1364-style scheduling: blocking
//! assignments apply immediately, non-blocking assignments are deferred
//! to the NBA region of each delta cycle, and edge-triggered processes
//! fire on poke-induced transitions. Process bodies are lowered once at
//! construction into flat *process programs* (pre-resolved targets,
//! precomputed widths, patched jump offsets) and the scheduler reuses
//! persistent scratch queues, so steady-state cycles allocate nothing
//! on this kernel too. [`wave::Waveform`] records per-cycle snapshots
//! for the localization engine.
//!
//! Two interchangeable kernels implement that surface (both behind
//! [`SimControl`], selected via [`SimBackend`] / [`AnySim`]): the
//! event-driven [`Simulator`] above, and the **compiled levelized
//! kernel** ([`kernel::CompiledSim`]) which lowers the design further
//! ([`compile::CompiledDesign`]) into a flat SoA value arena, a CSR
//! sensitivity index and a topological execution order, with a
//! two-state `u128` fast path that falls back to the four-state
//! evaluator on any X/Z (processes whose bodies provably cannot
//! generate X skip even the per-read probe while the arena holds no
//! unknown bits). Compiled instances are pool-managed: [`checkout_sim`]
//! rewinds a parked instance ([`kernel::CompiledSim::reset_state`])
//! instead of re-instantiating. The differential equivalence suite
//! keeps the two kernels waveform-identical.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use uvllm_sim::{elaborate, Logic, Simulator};
//!
//! let file = uvllm_verilog::parse(
//!     "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
//!      assign y = a + b;\nendmodule\n",
//! )?;
//! let design = elaborate(&file, "add")?;
//! let mut sim = Simulator::new(design)?;
//! sim.poke_by_name("a", Logic::from_u128(8, 17))?;
//! sim.poke_by_name("b", Logic::from_u128(8, 25))?;
//! assert_eq!(sim.peek_by_name("y")?.to_u128(), Some(42));
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod cache;
pub mod compile;
pub mod elab;
pub mod eval;
pub mod kernel;
pub mod logic;
mod metrics;
mod program;
pub mod sched;
pub mod wave;

pub use backend::{AnySim, SimBackend, SimControl};
pub use cache::{
    checkout_sim, checkout_sim_opt, compile_source_cached, compile_source_opt, default_opt_profile,
    elaborate_source_cached, elaborate_source_opt, set_default_opt_profile, sim_pool_stats,
    CheckoutError, DesignTransform, ElabCacheStats, OptProfile, PooledSim, SimPoolStats,
};
pub use compile::CompiledDesign;
pub use elab::{elaborate, Design, ElabError, SignalId, SignalInfo, SignalKind};
pub use eval::{eval, eval_into, ValueReader};
pub use kernel::CompiledSim;
pub use logic::{Logic, Tri};
pub use sched::{SimError, Simulator, MAX_ACTIVATIONS};
pub use wave::Waveform;
