//! Compilation of an elaborated [`Design`] into the flat form the
//! levelized kernel ([`crate::kernel::CompiledSim`]) executes.
//!
//! Compilation happens once per design and precomputes everything the
//! event-driven engine recomputes per activation:
//!
//! * a **value-arena layout** — every `SignalId` × word maps to one slot
//!   of two structure-of-arrays `u128` planes (value and X/Z), so state
//!   lives in two flat vectors instead of a `Vec<Vec<Logic>>`;
//! * a **CSR sensitivity index** — signal → combinational processes to
//!   re-run on change, in one offsets + data pair with no per-signal
//!   allocation (edge-triggered sensitivities keep their edge kinds);
//! * a **levelization** of the combinational processes: declared
//!   sensitivity edges (writer → reader) are topologically sorted so a
//!   settle pass executes each dirty process at most once per sweep, in
//!   dependency order. Designs with combinational cycles are flagged and
//!   simply take extra sweeps (bounded by the activation cap, exactly
//!   like the event-driven engine's oscillation detector).
//!
//! Levelization deliberately uses the *declared* triggers, not the read
//! sets: an `always @(a)` block missing `b` must misbehave identically
//! under both kernels, because reproducing such bugs faithfully is the
//! simulator's job.

use crate::elab::{stmt_written_signals, Design, LExpr, LExprKind, LStmt, LTarget, Trigger};
use crate::logic::mask;
use std::sync::Arc;
use uvllm_verilog::ast::{BinaryOp, Edge};

/// A [`Design`] lowered to the kernel's flat execution form.
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    design: Arc<Design>,
    /// `SignalId` → first arena slot of its words (words are laid out
    /// consecutively); one extra tail entry holds the arena length.
    slots: Vec<u32>,
    /// Combinational process ids in levelized execution order.
    comb_order: Vec<u32>,
    /// Process id → topological level (combinational processes only;
    /// cycle members share the level after the deepest acyclic one).
    levels: Vec<u32>,
    /// CSR offsets: signal → `comb_dat[comb_idx[s]..comb_idx[s+1]]`.
    comb_idx: Vec<u32>,
    comb_dat: Vec<u32>,
    /// CSR offsets: signal → `seq_dat[seq_idx[s]..seq_idx[s+1]]`.
    seq_idx: Vec<u32>,
    seq_dat: Vec<(u32, Option<Edge>)>,
    /// `initial` process ids in declaration order.
    initial_pids: Vec<u32>,
    /// True when the combinational network contains a cycle.
    cyclic: bool,
    /// Process id → body provably cannot *generate* X from fully-known
    /// operands (no division/modulo, no possibly-out-of-range select,
    /// no X/Z literal, no truncating concat). Decided once here so the
    /// kernel can skip the runtime X/Z probe entirely whenever the
    /// whole value arena is known (see [`CompiledDesign::two_state`]).
    two_state: Vec<bool>,
}

impl CompiledDesign {
    /// Compiles a shared design without cloning it (`from_arc` is the
    /// only constructor — fresh callers wrap with `Arc::new`).
    pub fn from_arc(design: Arc<Design>) -> CompiledDesign {
        let nsignals = design.signals().len();
        let nprocs = design.processes().len();

        // Arena layout: consecutive words per signal.
        let mut slots = Vec::with_capacity(nsignals + 1);
        let mut next = 0u32;
        for info in design.signals() {
            slots.push(next);
            next += info.words;
        }
        slots.push(next);

        // Sensitivity lists per signal (then flattened to CSR).
        let mut comb_lists: Vec<Vec<u32>> = vec![Vec::new(); nsignals];
        let mut seq_lists: Vec<Vec<(u32, Option<Edge>)>> = vec![Vec::new(); nsignals];
        let mut comb_pids = Vec::new();
        let mut initial_pids = Vec::new();
        for (i, p) in design.processes().iter().enumerate() {
            let pid = i as u32;
            match &p.trigger {
                Trigger::Comb(deps) => {
                    comb_pids.push(pid);
                    for d in deps {
                        comb_lists[d.0 as usize].push(pid);
                    }
                }
                Trigger::Seq(edges) => {
                    for (s, e) in edges {
                        seq_lists[s.0 as usize].push((pid, *e));
                    }
                }
                Trigger::Initial => initial_pids.push(pid),
            }
        }
        let (comb_idx, comb_dat) = to_csr(comb_lists);
        let (seq_idx, seq_dat) = to_csr(seq_lists);

        // Dependency edges between combinational processes: writer →
        // reader, where "reads" means the *declared* sensitivity.
        let mut writers: Vec<Vec<u32>> = vec![Vec::new(); nsignals];
        for &pid in &comb_pids {
            for s in stmt_written_signals(&design.processes()[pid as usize].body) {
                writers[s.0 as usize].push(pid);
            }
        }
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
        let mut indegree: Vec<u32> = vec![0; nprocs];
        for &pid in &comb_pids {
            if let Trigger::Comb(deps) = &design.processes()[pid as usize].trigger {
                for d in deps {
                    for &writer in &writers[d.0 as usize] {
                        // A process misses its own events (IEEE 1364),
                        // so self-loops are not ordering constraints.
                        if writer != pid {
                            succs[writer as usize].push(pid);
                            indegree[pid as usize] += 1;
                        }
                    }
                }
            }
        }

        // Kahn's algorithm over the comb subgraph; leftovers are cycle
        // members and get parked one level past the acyclic frontier.
        let mut levels = vec![0u32; nprocs];
        let mut ready: Vec<u32> =
            comb_pids.iter().copied().filter(|&p| indegree[p as usize] == 0).collect();
        let mut ordered = Vec::with_capacity(comb_pids.len());
        let mut max_level = 0u32;
        while let Some(pid) = ready.pop() {
            ordered.push(pid);
            max_level = max_level.max(levels[pid as usize]);
            for &next in &succs[pid as usize] {
                levels[next as usize] = levels[next as usize].max(levels[pid as usize] + 1);
                indegree[next as usize] -= 1;
                if indegree[next as usize] == 0 {
                    ready.push(next);
                }
            }
        }
        let cyclic = ordered.len() != comb_pids.len();
        for &pid in &comb_pids {
            if indegree[pid as usize] > 0 {
                levels[pid as usize] = max_level + 1;
                ordered.push(pid);
            }
        }
        // Stable execution order: by (level, pid). Equal-level ties fall
        // back to declaration order, matching the event engine's FIFO
        // seeding for simultaneously-triggered processes.
        ordered.sort_by_key(|&pid| (levels[pid as usize], pid));

        let two_state =
            design.processes().iter().map(|p| stmt_two_state_safe(&design, &p.body)).collect();

        CompiledDesign {
            design,
            slots,
            comb_order: ordered,
            levels,
            comb_idx,
            comb_dat,
            seq_idx,
            seq_dat,
            initial_pids,
            cyclic,
            two_state,
        }
    }

    /// The elaborated design this was compiled from.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Shared handle to the design.
    pub fn design_arc(&self) -> &Arc<Design> {
        &self.design
    }

    /// First arena slot of `signal` (its words follow consecutively).
    pub fn slot(&self, signal: crate::elab::SignalId) -> usize {
        self.slots[signal.0 as usize] as usize
    }

    /// Total slots in the value arena.
    pub fn arena_len(&self) -> usize {
        *self.slots.last().expect("slots has a tail entry") as usize
    }

    /// Combinational processes in levelized execution order.
    pub fn comb_order(&self) -> &[u32] {
        &self.comb_order
    }

    /// Topological level of process `pid` (0 for sources).
    pub fn level(&self, pid: u32) -> u32 {
        self.levels[pid as usize]
    }

    /// Combinational processes sensitive to `signal`.
    pub fn comb_sensitive(&self, signal: crate::elab::SignalId) -> &[u32] {
        let s = signal.0 as usize;
        &self.comb_dat[self.comb_idx[s] as usize..self.comb_idx[s + 1] as usize]
    }

    /// Edge-triggered processes watching `signal`.
    pub fn seq_sensitive(&self, signal: crate::elab::SignalId) -> &[(u32, Option<Edge>)] {
        let s = signal.0 as usize;
        &self.seq_dat[self.seq_idx[s] as usize..self.seq_idx[s + 1] as usize]
    }

    /// `initial` processes in declaration order.
    pub fn initial_pids(&self) -> &[u32] {
        &self.initial_pids
    }

    /// True when the combinational network contains a cycle (settling
    /// may need multiple sweeps).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// True when process `pid` was marked two-state safe at compile
    /// time: executing its body over fully-known state can never
    /// produce an X/Z result, so the kernel may evaluate it with plain
    /// masked `u128` arithmetic and **no** per-read X/Z probe whenever
    /// the arena currently holds no unknown bits.
    pub fn two_state(&self, pid: u32) -> bool {
        self.two_state[pid as usize]
    }
}

/// True when every value of `idx` (bounded by its self-determined
/// width) stays below `limit` — i.e. the select can never go out of
/// range, whatever known value the index takes.
fn index_in_range(idx: &LExpr, limit: u128) -> bool {
    if let LExprKind::Const(l) = &idx.kind {
        return l.xz() == 0 && l.val() < limit;
    }
    let w = idx.width.max(1);
    w < 128 && mask(w) < limit
}

/// True when evaluating `e` over fully-known operands provably yields a
/// fully-known result (the expression cannot *generate* X).
fn expr_two_state_safe(design: &Design, e: &LExpr) -> bool {
    match &e.kind {
        LExprKind::Const(l) => l.xz() == 0,
        LExprKind::Sig(_) => true,
        LExprKind::Word(s, idx) => {
            expr_two_state_safe(design, idx) && index_in_range(idx, design.signal(*s).words as u128)
        }
        LExprKind::BitSel(s, idx) => {
            expr_two_state_safe(design, idx) && index_in_range(idx, design.signal(*s).width as u128)
        }
        LExprKind::PartSel(s, off) => off + e.width <= design.signal(*s).width,
        LExprKind::Unary(_, a) => expr_two_state_safe(design, a),
        LExprKind::Binary(op, a, b) => {
            // Division/modulo by zero produce X even on known operands.
            !matches!(op, BinaryOp::Div | BinaryOp::Mod)
                && expr_two_state_safe(design, a)
                && expr_two_state_safe(design, b)
        }
        LExprKind::Ternary(c, t, f) => {
            expr_two_state_safe(design, c)
                && expr_two_state_safe(design, t)
                && expr_two_state_safe(design, f)
        }
        // Truncation at the 128-bit cap drops high bits but cannot
        // generate X, so wide (rebalanced) datapaths stay two-state
        // safe; the kernel's fast path evaluates them word-parallel.
        LExprKind::Concat(items) => items.iter().all(|i| expr_two_state_safe(design, i)),
    }
}

/// Target indices only need known evaluation: an out-of-range index
/// drops the write identically on both evaluation paths.
fn target_two_state_safe(design: &Design, t: &LTarget) -> bool {
    match t {
        LTarget::Whole(_) | LTarget::Part(_, _, _) => true,
        LTarget::Bit(_, idx) | LTarget::Word(_, idx) => expr_two_state_safe(design, idx),
        LTarget::Concat(parts) => parts.iter().all(|p| target_two_state_safe(design, p)),
    }
}

/// True when executing `stmt` over fully-known state can never write an
/// X/Z value or branch on an unknown condition.
fn stmt_two_state_safe(design: &Design, stmt: &LStmt) -> bool {
    match stmt {
        LStmt::Block(stmts) => stmts.iter().all(|s| stmt_two_state_safe(design, s)),
        LStmt::Assign { lhs, rhs, .. } => {
            target_two_state_safe(design, lhs) && expr_two_state_safe(design, rhs)
        }
        LStmt::If { cond, then_branch, else_branch, .. } => {
            expr_two_state_safe(design, cond)
                && stmt_two_state_safe(design, then_branch)
                && else_branch.as_deref().is_none_or(|e| stmt_two_state_safe(design, e))
        }
        LStmt::Case { expr, arms, default, .. } => {
            expr_two_state_safe(design, expr)
                && arms.iter().all(|(labels, body)| {
                    labels.iter().all(|l| expr_two_state_safe(design, l))
                        && stmt_two_state_safe(design, body)
                })
                && default.as_deref().is_none_or(|d| stmt_two_state_safe(design, d))
        }
        LStmt::Nop => true,
    }
}

/// Flattens per-signal lists into CSR (offsets + data) form.
fn to_csr<T: Copy>(lists: Vec<Vec<T>>) -> (Vec<u32>, Vec<T>) {
    let mut idx = Vec::with_capacity(lists.len() + 1);
    let mut dat = Vec::with_capacity(lists.iter().map(Vec::len).sum());
    idx.push(0);
    for list in lists {
        dat.extend(list);
        idx.push(dat.len() as u32);
    }
    (idx, dat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use uvllm_verilog::parse;

    fn compile(src: &str) -> CompiledDesign {
        let file = parse(src).unwrap();
        let top = &file.top().unwrap().name;
        CompiledDesign::from_arc(Arc::new(elaborate(&file, top).unwrap()))
    }

    #[test]
    fn chain_is_levelized() {
        let cd = compile(
            "module m(input a, output w1, output w2, output w3);\n\
             assign w1 = ~a;\nassign w2 = ~w1;\nassign w3 = ~w2;\nendmodule\n",
        );
        assert!(!cd.is_cyclic());
        let order = cd.comb_order();
        assert_eq!(order.len(), 3);
        // The chain must execute source-to-sink in one sweep.
        assert_eq!(cd.level(order[0]), 0);
        assert!(cd.level(order[1]) > cd.level(order[0]));
        assert!(cd.level(order[2]) > cd.level(order[1]));
    }

    #[test]
    fn diamond_join_runs_after_both_arms() {
        let cd = compile(
            "module m(input a, output y);\nwire l, r;\n\
             assign l = ~a;\nassign r = a;\nassign y = l & r;\nendmodule\n",
        );
        let order = cd.comb_order();
        // The join (highest level) comes last.
        assert_eq!(cd.level(*order.last().unwrap()), 1);
        assert_eq!(cd.level(order[0]), 0);
        assert_eq!(cd.level(order[1]), 0);
    }

    #[test]
    fn cycles_are_flagged_not_fatal() {
        let cd =
            compile("module m(output a, output b);\nassign a = ~b;\nassign b = ~a;\nendmodule\n");
        assert!(cd.is_cyclic());
        assert_eq!(cd.comb_order().len(), 2, "cycle members still execute");
    }

    #[test]
    fn arena_layout_packs_words() {
        let cd = compile(
            "module r(input [3:0] addr, output [7:0] dout);\nreg [7:0] mem [0:15];\n\
             assign dout = mem[addr];\nendmodule\n",
        );
        assert_eq!(cd.arena_len(), 1 + 1 + 16, "addr + dout + 16 memory words");
        let mem = cd.design().signal_id("mem").unwrap();
        assert!(cd.slot(mem) + 16 <= cd.arena_len());
    }

    #[test]
    fn sensitivity_csr_matches_triggers() {
        let cd = compile(
            "module m(input clk, input d, output reg q, output y);\n\
             assign y = ~d;\nalways @(posedge clk) q <= d;\nendmodule\n",
        );
        let clk = cd.design().signal_id("clk").unwrap();
        let d = cd.design().signal_id("d").unwrap();
        assert_eq!(cd.comb_sensitive(clk).len(), 0);
        assert_eq!(cd.comb_sensitive(d).len(), 1);
        assert_eq!(cd.seq_sensitive(clk).len(), 1);
        assert_eq!(cd.seq_sensitive(clk)[0].1, Some(uvllm_verilog::ast::Edge::Pos));
        assert_eq!(cd.seq_sensitive(d).len(), 0);
    }
}
