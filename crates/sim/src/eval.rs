//! Four-state evaluation of lowered expressions.
//!
//! Width semantics follow IEEE 1364 context-determined sizing: arithmetic
//! and bitwise operands are extended to the assignment context width
//! before the operation (so `{c, s} = a + b` keeps the carry), while
//! shift amounts, index expressions, comparison operands, concatenation
//! items and reduction operands are self-determined.

use crate::elab::{LExpr, LExprKind, SignalId};
use crate::logic::{Logic, Tri};
use uvllm_verilog::ast::{BinaryOp, CaseKind, UnaryOp};

/// Read access to current signal values during evaluation.
pub trait ValueReader {
    /// Current value of a scalar/vector signal.
    fn read(&self, id: SignalId) -> Logic;
    /// Current value of word `index` of an array signal; out-of-range
    /// reads yield all-X of the signal's width.
    fn read_word(&self, id: SignalId, index: u64) -> Logic;
    /// Width in words of the array backing `id` (1 for scalars).
    fn word_count(&self, id: SignalId) -> u64;
    /// Declared bit width of `id`.
    fn width(&self, id: SignalId) -> u32;
}

/// Evaluates `e` in a context of at least `ctx` bits.
///
/// The result width is `max(ctx, e.width)`; callers truncate with
/// [`Logic::resize`] when storing into a narrower target.
pub fn eval<R: ValueReader>(r: &R, e: &LExpr, ctx: u32) -> Logic {
    let w = ctx.max(e.width).max(1);
    match &e.kind {
        LExprKind::Const(l) => l.resize(w),
        LExprKind::Sig(s) => r.read(*s).resize(w),
        LExprKind::Word(s, index) => {
            let idx = eval(r, index, index.width);
            match idx.to_u128() {
                Some(i) if (i as u64) < r.word_count(*s) => r.read_word(*s, i as u64).resize(w),
                _ => Logic::xs(w),
            }
        }
        LExprKind::BitSel(s, index) => {
            let idx = eval(r, index, index.width);
            match idx.to_u128() {
                Some(i) if i < r.width(*s) as u128 => r.read(*s).get_bit(i as u32).resize(w),
                _ => Logic::xs(w),
            }
        }
        LExprKind::PartSel(s, off) => r.read(*s).get_slice(*off, e.width).resize(w),
        LExprKind::Unary(op, a) => eval_unary(r, *op, a, w),
        LExprKind::Binary(op, a, b) => eval_binary(r, *op, a, b, w),
        LExprKind::Ternary(c, t, f) => {
            let cond = eval(r, c, c.width);
            match cond.truthiness() {
                Tri::True => eval(r, t, w).resize(w),
                Tri::False => eval(r, f, w).resize(w),
                Tri::Unknown => {
                    let tv = eval(r, t, w);
                    let fv = eval(r, f, w);
                    tv.merge(&fv, w)
                }
            }
        }
        LExprKind::Concat(items) => {
            let mut acc = Logic::zeros(1);
            let mut first = true;
            for item in items {
                let v = eval(r, item, item.width).resize(item.width.max(1));
                if first {
                    acc = v;
                    first = false;
                } else {
                    acc = Logic::concat(acc, v);
                }
            }
            acc.resize(w)
        }
    }
}

fn eval_unary<R: ValueReader>(r: &R, op: UnaryOp, a: &LExpr, w: u32) -> Logic {
    match op {
        UnaryOp::LogNot => eval(r, a, a.width).log_not().resize(w),
        UnaryOp::BitNot => eval(r, a, w).bitnot(w),
        UnaryOp::Neg => eval(r, a, w).neg(w),
        UnaryOp::Plus => eval(r, a, w),
        UnaryOp::RedAnd => eval(r, a, a.width).red_and().resize(w),
        UnaryOp::RedOr => eval(r, a, a.width).red_or().resize(w),
        UnaryOp::RedXor => eval(r, a, a.width).red_xor().resize(w),
        UnaryOp::RedNand => eval(r, a, a.width).red_and().bitnot(1).resize(w),
        UnaryOp::RedNor => eval(r, a, a.width).red_or().bitnot(1).resize(w),
        UnaryOp::RedXnor => eval(r, a, a.width).red_xor().bitnot(1).resize(w),
    }
}

fn eval_binary<R: ValueReader>(r: &R, op: BinaryOp, a: &LExpr, b: &LExpr, w: u32) -> Logic {
    use BinaryOp::*;
    match op {
        Add => eval(r, a, w).add(&eval(r, b, w), w),
        Sub => eval(r, a, w).sub(&eval(r, b, w), w),
        Mul => eval(r, a, w).mul(&eval(r, b, w), w),
        Div => eval(r, a, w).div(&eval(r, b, w), w),
        Mod => eval(r, a, w).rem(&eval(r, b, w), w),
        Pow => eval(r, a, w).pow(&eval(r, b, b.width), w),
        Shl => eval(r, a, w).shl(&eval(r, b, b.width), w),
        Shr => eval(r, a, w).shr(&eval(r, b, b.width), w),
        AShr => eval(r, a, w).ashr(&eval(r, b, b.width), w),
        Lt | Le | Gt | Ge => {
            let ow = a.width.max(b.width);
            let x = eval(r, a, ow);
            let y = eval(r, b, ow);
            let res = match op {
                Lt => x.cmp_lt(&y),
                Le => y.cmp_lt(&x).log_not(),
                Gt => y.cmp_lt(&x),
                _ => x.cmp_lt(&y).log_not(),
            };
            res.resize(w)
        }
        Eq => {
            let ow = a.width.max(b.width);
            eval(r, a, ow).log_eq(&eval(r, b, ow)).resize(w)
        }
        Ne => {
            let ow = a.width.max(b.width);
            eval(r, a, ow).log_ne(&eval(r, b, ow)).resize(w)
        }
        CaseEq => {
            let ow = a.width.max(b.width);
            eval(r, a, ow).case_eq(&eval(r, b, ow)).resize(w)
        }
        CaseNe => {
            let ow = a.width.max(b.width);
            eval(r, a, ow).case_eq(&eval(r, b, ow)).bitnot(1).resize(w)
        }
        LogAnd => eval(r, a, a.width).log_and(&eval(r, b, b.width)).resize(w),
        LogOr => eval(r, a, a.width).log_or(&eval(r, b, b.width)).resize(w),
        BitAnd => eval(r, a, w).bitand(&eval(r, b, w), w),
        BitOr => eval(r, a, w).bitor(&eval(r, b, w), w),
        BitXor => eval(r, a, w).bitxor(&eval(r, b, w), w),
        BitXnor => eval(r, a, w).bitxnor(&eval(r, b, w), w),
    }
}

/// Evaluates `e` in a context of at least `width` bits and stores the
/// result, masked to exactly `width` bits, into `out`.
///
/// This is the assignment-staging helper of the kernels' hot loops:
/// the context evaluation and the target-width truncation happen in
/// one step and the result lands in a slot the caller reuses across
/// ops. (`Logic` is `Copy` — two `u128` planes — so expression
/// evaluation itself never touches the heap; this helper exists to
/// keep the staging discipline explicit and in one place.)
#[inline]
pub fn eval_into<R: ValueReader>(r: &R, e: &LExpr, width: u32, out: &mut Logic) {
    *out = eval(r, e, width).resize(width);
}

/// Case-arm matching for `case`/`casez`/`casex`.
pub fn case_matches(kind: CaseKind, sel: &Logic, label: &Logic) -> bool {
    match kind {
        CaseKind::Case => sel.case_eq(label).truthiness() == Tri::True,
        CaseKind::Casez => sel.wildcard_eq(label, false),
        CaseKind::Casex => sel.wildcard_eq(label, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::{LExpr, LExprKind};

    struct Fixed(Vec<Logic>);
    impl ValueReader for Fixed {
        fn read(&self, id: SignalId) -> Logic {
            self.0[id.0 as usize]
        }
        fn read_word(&self, _id: SignalId, _index: u64) -> Logic {
            Logic::xs(8)
        }
        fn word_count(&self, _id: SignalId) -> u64 {
            1
        }
        fn width(&self, id: SignalId) -> u32 {
            self.0[id.0 as usize].width()
        }
    }

    fn sig(id: u32, width: u32) -> LExpr {
        LExpr { kind: LExprKind::Sig(SignalId(id)), width }
    }

    fn konst(width: u32, v: u128) -> LExpr {
        LExpr { kind: LExprKind::Const(Logic::from_u128(width, v)), width }
    }

    #[test]
    fn context_width_preserves_carry() {
        let r = Fixed(vec![Logic::from_u128(8, 0xff), Logic::from_u128(8, 0x01)]);
        let add = LExpr {
            kind: LExprKind::Binary(BinaryOp::Add, Box::new(sig(0, 8)), Box::new(sig(1, 8))),
            width: 8,
        };
        // Self-determined: carry wraps.
        assert_eq!(eval(&r, &add, 8).to_u128(), Some(0x00));
        // Context of 9 bits: carry preserved.
        assert_eq!(eval(&r, &add, 9).to_u128(), Some(0x100));
    }

    #[test]
    fn comparison_operands_self_determined() {
        let r = Fixed(vec![Logic::from_u128(4, 0xf), Logic::from_u128(8, 0x0f)]);
        let eq = LExpr {
            kind: LExprKind::Binary(BinaryOp::Eq, Box::new(sig(0, 4)), Box::new(sig(1, 8))),
            width: 1,
        };
        assert_eq!(eval(&r, &eq, 1).to_u128(), Some(1));
    }

    #[test]
    fn ternary_unknown_condition_merges() {
        let r = Fixed(vec![Logic::xs(1), Logic::from_u128(4, 0b1010), Logic::from_u128(4, 0b1000)]);
        let t = LExpr {
            kind: LExprKind::Ternary(Box::new(sig(0, 1)), Box::new(sig(1, 4)), Box::new(sig(2, 4))),
            width: 4,
        };
        let v = eval(&r, &t, 4);
        assert_eq!(v.get_bit(3).to_u128(), Some(1));
        assert!(v.get_bit(1).to_u128().is_none());
    }

    #[test]
    fn concat_orders_msb_first() {
        let r = Fixed(vec![Logic::from_u128(4, 0xA), Logic::from_u128(4, 0x5)]);
        let c = LExpr { kind: LExprKind::Concat(vec![sig(0, 4), sig(1, 4)]), width: 8 };
        assert_eq!(eval(&r, &c, 8).to_u128(), Some(0xA5));
    }

    #[test]
    fn bitsel_out_of_range_is_x() {
        let r = Fixed(vec![Logic::from_u128(4, 0xF), Logic::from_u128(4, 9)]);
        let b = LExpr { kind: LExprKind::BitSel(SignalId(0), Box::new(sig(1, 4))), width: 1 };
        assert!(eval(&r, &b, 1).to_u128().is_none());
    }

    #[test]
    fn shift_amount_self_determined() {
        let r = Fixed(vec![Logic::from_u128(8, 1), Logic::from_u128(8, 200)]);
        let sh = LExpr {
            kind: LExprKind::Binary(BinaryOp::Shl, Box::new(sig(0, 8)), Box::new(konst(4, 4))),
            width: 8,
        };
        assert_eq!(eval(&r, &sh, 8).to_u128(), Some(16));
    }

    #[test]
    fn case_matching_flavours() {
        let sel = Logic::from_u128(4, 0b1010);
        let exact = Logic::from_u128(4, 0b1010);
        assert!(case_matches(CaseKind::Case, &sel, &exact));
        let zlabel = Logic::from_planes(4, 0b1011, 0b0001); // 101z
        assert!(!case_matches(CaseKind::Case, &sel, &zlabel));
        assert!(case_matches(CaseKind::Casez, &sel, &zlabel));
        let xlabel = Logic::from_planes(4, 0b1000, 0b0010); // 10x0
        assert!(!case_matches(CaseKind::Casez, &sel, &xlabel));
        assert!(case_matches(CaseKind::Casex, &sel, &xlabel));
    }
}
