//! Property tests on the four-state [`Logic`] algebra and on
//! simulator/golden-model agreement for a reference design.

use proptest::prelude::*;
use uvllm_sim::{elaborate, Logic, Simulator};

fn logic(width: u32) -> impl Strategy<Value = Logic> {
    (any::<u128>(), any::<u128>()).prop_map(move |(v, x)| Logic::from_planes(width, v, x))
}

fn known(width: u32) -> impl Strategy<Value = Logic> {
    any::<u128>().prop_map(move |v| Logic::from_u128(width, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Addition on known values agrees with wrapping integer addition.
    #[test]
    fn add_matches_integers(a in known(32), b in known(32)) {
        let sum = a.add(&b, 33);
        prop_assert_eq!(
            sum.to_u128(),
            Some((a.to_u128().unwrap() + b.to_u128().unwrap()) & ((1 << 33) - 1))
        );
    }

    /// Bitwise operators obey De Morgan on arbitrary four-state values.
    #[test]
    fn de_morgan(a in logic(16), b in logic(16)) {
        let lhs = a.bitand(&b, 16).bitnot(16);
        let rhs = a.bitnot(16).bitor(&b.bitnot(16), 16);
        prop_assert_eq!(lhs, rhs);
    }

    /// AND/OR are commutative for four-state values.
    #[test]
    fn commutativity(a in logic(16), b in logic(16)) {
        prop_assert_eq!(a.bitand(&b, 16), b.bitand(&a, 16));
        prop_assert_eq!(a.bitor(&b, 16), b.bitor(&a, 16));
        prop_assert_eq!(a.bitxor(&b, 16), b.bitxor(&a, 16));
    }

    /// Double negation is the identity up to Z-collapse: `~Z` is X in
    /// IEEE 1364, so Z bits come back as X; everything else round-trips.
    #[test]
    fn double_bitnot(a in logic(24)) {
        let z_collapsed = Logic::from_planes(24, a.val() & !a.xz(), a.xz());
        prop_assert_eq!(a.bitnot(24).bitnot(24), z_collapsed);
    }

    /// resize never invents known bits.
    #[test]
    fn resize_preserves_unknowns(a in logic(8)) {
        let wide = a.resize(16);
        prop_assert_eq!(wide.get_slice(0, 8), a);
        // Extended bits are known zero.
        prop_assert_eq!(wide.get_slice(8, 8), Logic::zeros(8));
    }

    /// Concatenation width and content.
    #[test]
    fn concat_structure(hi in logic(8), lo in logic(8)) {
        let c = Logic::concat(hi, lo);
        prop_assert_eq!(c.width(), 16);
        prop_assert_eq!(c.get_slice(0, 8), lo);
        prop_assert_eq!(c.get_slice(8, 8), hi);
    }

    /// Slice insertion then extraction is the identity.
    #[test]
    fn slice_roundtrip(base in logic(32), v in logic(8), at in 0u32..24) {
        let w = base.with_slice(at, v);
        prop_assert_eq!(w.get_slice(at, 8), v);
    }

    /// case-equality is an equivalence relation sample: reflexive.
    #[test]
    fn case_eq_reflexive(a in logic(20)) {
        prop_assert_eq!(a.case_eq(&a), Logic::bit(true));
    }

    /// Logical equality never returns a definite wrong answer: when both
    /// sides are fully known it matches integer equality.
    #[test]
    fn log_eq_on_known(a in known(16), b in known(16)) {
        prop_assert_eq!(
            a.log_eq(&b).to_u128(),
            Some((a.to_u128() == b.to_u128()) as u128)
        );
    }

    /// Display output re-encodes width and value faithfully for known
    /// values (parses back through the expression parser).
    #[test]
    fn display_parses_back(a in known(16)) {
        let text = a.to_string();
        let e = uvllm_verilog::parse_expr(&text).expect("literal must parse");
        match e {
            uvllm_verilog::Expr::Number(n) => {
                prop_assert_eq!(n.value, a.to_u128().unwrap());
                prop_assert_eq!(n.width, Some(16));
            }
            other => prop_assert!(false, "expected number, got {:?}", other),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulated 8-bit adder agrees with integer arithmetic on
    /// arbitrary driven values (differential property against the
    /// simulator itself).
    #[test]
    fn simulated_adder_is_correct(a in 0u128..256, b in 0u128..256, cin in 0u128..2) {
        let file = uvllm_verilog::parse(
            "module add(input [7:0] a, input [7:0] b, input cin,\n\
             output [7:0] sum, output cout);\n\
             assign {cout, sum} = a + b + {7'd0, cin};\nendmodule\n",
        ).unwrap();
        let design = elaborate(&file, "add").unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.poke_by_name("a", Logic::from_u128(8, a)).unwrap();
        sim.poke_by_name("b", Logic::from_u128(8, b)).unwrap();
        sim.poke_by_name("cin", Logic::from_u128(1, cin)).unwrap();
        let total = a + b + cin;
        prop_assert_eq!(sim.peek_by_name("sum").unwrap().to_u128(), Some(total & 0xff));
        prop_assert_eq!(sim.peek_by_name("cout").unwrap().to_u128(), Some(total >> 8));
    }

    /// A simulated counter follows modular arithmetic over any enable
    /// pattern.
    #[test]
    fn simulated_counter_tracks_enables(pattern in prop::collection::vec(any::<bool>(), 1..40)) {
        let file = uvllm_verilog::parse(
            "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
             if (!rst_n) q <= 4'd0; else if (en) q <= q + 4'd1;\nend\nendmodule\n",
        ).unwrap();
        let design = elaborate(&file, "c").unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
        sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
        sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
        let mut expected = 0u128;
        for en in &pattern {
            sim.poke_by_name("en", Logic::bit(*en)).unwrap();
            sim.poke_by_name("clk", Logic::bit(true)).unwrap();
            sim.poke_by_name("clk", Logic::bit(false)).unwrap();
            if *en {
                expected = (expected + 1) & 0xf;
            }
            prop_assert_eq!(sim.peek_by_name("q").unwrap().to_u128(), Some(expected));
        }
    }
}
