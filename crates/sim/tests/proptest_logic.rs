//! Property tests on the four-state [`Logic`] algebra and on
//! simulator/golden-model agreement for a reference design.
//!
//! Written as seeded randomised loops (the workspace builds without the
//! `proptest` crate).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uvllm_sim::{elaborate, Logic, Simulator};

/// Arbitrary four-state value of `width` (independent value/xz planes).
fn logic(rng: &mut StdRng, width: u32) -> Logic {
    Logic::from_planes(width, rng.random::<u64>() as u128, rng.random::<u64>() as u128)
}

/// Fully known value of `width`.
fn known(rng: &mut StdRng, width: u32) -> Logic {
    Logic::from_u128(width, rng.random::<u64>() as u128)
}

fn rng_for(test: u64) -> StdRng {
    StdRng::seed_from_u64(0x10_61C ^ test)
}

/// Addition on known values agrees with wrapping integer addition.
#[test]
fn add_matches_integers() {
    let mut rng = rng_for(1);
    for _ in 0..512 {
        let a = known(&mut rng, 32);
        let b = known(&mut rng, 32);
        let sum = a.add(&b, 33);
        assert_eq!(
            sum.to_u128(),
            Some((a.to_u128().unwrap() + b.to_u128().unwrap()) & ((1 << 33) - 1))
        );
    }
}

/// Bitwise operators obey De Morgan on arbitrary four-state values.
#[test]
fn de_morgan() {
    let mut rng = rng_for(2);
    for _ in 0..512 {
        let a = logic(&mut rng, 16);
        let b = logic(&mut rng, 16);
        let lhs = a.bitand(&b, 16).bitnot(16);
        let rhs = a.bitnot(16).bitor(&b.bitnot(16), 16);
        assert_eq!(lhs, rhs);
    }
}

/// AND/OR/XOR are commutative for four-state values.
#[test]
fn commutativity() {
    let mut rng = rng_for(3);
    for _ in 0..512 {
        let a = logic(&mut rng, 16);
        let b = logic(&mut rng, 16);
        assert_eq!(a.bitand(&b, 16), b.bitand(&a, 16));
        assert_eq!(a.bitor(&b, 16), b.bitor(&a, 16));
        assert_eq!(a.bitxor(&b, 16), b.bitxor(&a, 16));
    }
}

/// Double negation is the identity up to Z-collapse: `~Z` is X in
/// IEEE 1364, so Z bits come back as X; everything else round-trips.
#[test]
fn double_bitnot() {
    let mut rng = rng_for(4);
    for _ in 0..512 {
        let a = logic(&mut rng, 24);
        let z_collapsed = Logic::from_planes(24, a.val() & !a.xz(), a.xz());
        assert_eq!(a.bitnot(24).bitnot(24), z_collapsed);
    }
}

/// resize never invents known bits.
#[test]
fn resize_preserves_unknowns() {
    let mut rng = rng_for(5);
    for _ in 0..512 {
        let a = logic(&mut rng, 8);
        let wide = a.resize(16);
        assert_eq!(wide.get_slice(0, 8), a);
        // Extended bits are known zero.
        assert_eq!(wide.get_slice(8, 8), Logic::zeros(8));
    }
}

/// Concatenation width and content.
#[test]
fn concat_structure() {
    let mut rng = rng_for(6);
    for _ in 0..512 {
        let hi = logic(&mut rng, 8);
        let lo = logic(&mut rng, 8);
        let c = Logic::concat(hi, lo);
        assert_eq!(c.width(), 16);
        assert_eq!(c.get_slice(0, 8), lo);
        assert_eq!(c.get_slice(8, 8), hi);
    }
}

/// Slice insertion then extraction is the identity.
#[test]
fn slice_roundtrip() {
    let mut rng = rng_for(7);
    for _ in 0..512 {
        let base = logic(&mut rng, 32);
        let v = logic(&mut rng, 8);
        let at = rng.random_range(0..24u32);
        let w = base.with_slice(at, v);
        assert_eq!(w.get_slice(at, 8), v);
    }
}

/// case-equality is an equivalence relation sample: reflexive.
#[test]
fn case_eq_reflexive() {
    let mut rng = rng_for(8);
    for _ in 0..512 {
        let a = logic(&mut rng, 20);
        assert_eq!(a.case_eq(&a), Logic::bit(true));
    }
}

/// Logical equality never returns a definite wrong answer: when both
/// sides are fully known it matches integer equality.
#[test]
fn log_eq_on_known() {
    let mut rng = rng_for(9);
    for _ in 0..512 {
        let a = known(&mut rng, 16);
        let b = known(&mut rng, 16);
        assert_eq!(a.log_eq(&b).to_u128(), Some((a.to_u128() == b.to_u128()) as u128));
    }
}

/// Display output re-encodes width and value faithfully for known
/// values (parses back through the expression parser).
#[test]
fn display_parses_back() {
    let mut rng = rng_for(10);
    for _ in 0..256 {
        let a = known(&mut rng, 16);
        let text = a.to_string();
        let e = uvllm_verilog::parse_expr(&text).expect("literal must parse");
        match e {
            uvllm_verilog::Expr::Number(n) => {
                assert_eq!(n.value, a.to_u128().unwrap());
                assert_eq!(n.width, Some(16));
            }
            other => panic!("expected number, got {other:?}"),
        }
    }
}

/// Arbitrary four-state value using the full 128-bit planes.
fn logic_wide(rng: &mut StdRng, width: u32) -> Logic {
    let wide =
        |rng: &mut StdRng| ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
    Logic::from_planes(width, wide(rng), wide(rng))
}

/// `(val, xz)` of bit `i` of `v`; bits beyond the width read as known 0
/// (the planes are masked to the width by construction).
fn ref_bit(v: &Logic, i: u32) -> (u8, u8) {
    if i >= 128 {
        (0, 0)
    } else {
        (((v.val() >> i) & 1) as u8, ((v.xz() >> i) & 1) as u8)
    }
}

/// `shl` against a per-bit reference model: result bit `i` is 0 below
/// the shift count and operand bit `i - sh` above it, in both planes.
#[test]
fn shl_matches_bit_reference() {
    let mut rng = rng_for(13);
    for _ in 0..2048 {
        let n = rng.random_range(1..129u32);
        let w = rng.random_range(n..129u32);
        let v = logic_wide(&mut rng, n);
        let sh = rng.random_range(0..150u32);
        let out = v.shl(&Logic::from_u128(32, sh as u128), w);
        for i in 0..w {
            let expect = if i < sh { (0, 0) } else { ref_bit(&v, i - sh) };
            assert_eq!(ref_bit(&out, i), expect, "n={n} w={w} sh={sh} bit={i} v={v}");
        }
    }
}

/// `shr` against the same reference: result bit `i` is operand bit
/// `i + sh` (known 0 once shifted past the operand).
#[test]
fn shr_matches_bit_reference() {
    let mut rng = rng_for(14);
    for _ in 0..2048 {
        let n = rng.random_range(1..129u32);
        let w = rng.random_range(n..129u32);
        let v = logic_wide(&mut rng, n);
        let sh = rng.random_range(0..150u32);
        let out = v.shr(&Logic::from_u128(32, sh as u128), w);
        for i in 0..w {
            let expect =
                if sh >= 128 || i.checked_add(sh).is_none() { (0, 0) } else { ref_bit(&v, i + sh) };
            assert_eq!(ref_bit(&out, i), expect, "n={n} w={w} sh={sh} bit={i} v={v}");
        }
    }
}

/// `ashr` against a reference that shifts, then replicates the sign bit
/// downward from the *operand's* sign position (an X/Z sign fills X).
#[test]
fn ashr_matches_bit_reference() {
    let mut rng = rng_for(15);
    for _ in 0..2048 {
        let n = rng.random_range(1..129u32);
        let w = rng.random_range(n..129u32);
        let v = logic_wide(&mut rng, n);
        let sh = rng.random_range(0..150u32);
        let out = v.ashr(&Logic::from_u128(32, sh as u128), w);
        let eff = sh.min(n);
        let sign = ref_bit(&v, n - 1);
        for i in 0..w {
            let mut expect = if sh >= 128 || i + sh >= 128 { (0, 0) } else { ref_bit(&v, i + sh) };
            if eff > 0 && i >= n - eff && i < n {
                expect = match sign {
                    (1, 0) => (1, 0), // known 1: sign fill
                    (0, 0) => expect, // known 0: logical shift
                    _ => (0, 1),      // X/Z sign: X fill
                };
            }
            assert_eq!(ref_bit(&out, i), expect, "n={n} w={w} sh={sh} bit={i} v={v}");
        }
    }
}

/// `concat` against the reference: low bits from `lo`, then `hi`, with
/// everything past the 128-bit arena dropped from both planes.
#[test]
fn concat_matches_bit_reference() {
    let mut rng = rng_for(16);
    for _ in 0..2048 {
        let hw = rng.random_range(1..129u32);
        let lw = rng.random_range(1..129u32);
        let hi = logic_wide(&mut rng, hw);
        let lo = logic_wide(&mut rng, lw);
        let out = Logic::concat(hi, lo);
        assert_eq!(out.width(), (hw + lw).min(128));
        for i in 0..out.width() {
            let expect = if i < lw { ref_bit(&lo, i) } else { ref_bit(&hi, i - lw) };
            assert_eq!(ref_bit(&out, i), expect, "hw={hw} lw={lw} bit={i}");
        }
    }
}

/// The simulated 8-bit adder agrees with integer arithmetic on
/// arbitrary driven values (differential property against the
/// simulator itself).
#[test]
fn simulated_adder_is_correct() {
    let file = uvllm_verilog::parse(
        "module add(input [7:0] a, input [7:0] b, input cin,\n\
         output [7:0] sum, output cout);\n\
         assign {cout, sum} = a + b + {7'd0, cin};\nendmodule\n",
    )
    .unwrap();
    let design = std::sync::Arc::new(elaborate(&file, "add").unwrap());
    let mut rng = rng_for(11);
    for _ in 0..48 {
        let a = rng.random_range(0..256u64) as u128;
        let b = rng.random_range(0..256u64) as u128;
        let cin = rng.random_range(0..2u64) as u128;
        let mut sim = Simulator::from_arc(std::sync::Arc::clone(&design)).unwrap();
        sim.poke_by_name("a", Logic::from_u128(8, a)).unwrap();
        sim.poke_by_name("b", Logic::from_u128(8, b)).unwrap();
        sim.poke_by_name("cin", Logic::from_u128(1, cin)).unwrap();
        let total = a + b + cin;
        assert_eq!(sim.peek_by_name("sum").unwrap().to_u128(), Some(total & 0xff));
        assert_eq!(sim.peek_by_name("cout").unwrap().to_u128(), Some(total >> 8));
    }
}

/// A simulated counter follows modular arithmetic over any enable
/// pattern.
#[test]
fn simulated_counter_tracks_enables() {
    let file = uvllm_verilog::parse(
        "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
         always @(posedge clk or negedge rst_n) begin\n\
         if (!rst_n) q <= 4'd0; else if (en) q <= q + 4'd1;\nend\nendmodule\n",
    )
    .unwrap();
    let design = std::sync::Arc::new(elaborate(&file, "c").unwrap());
    let mut rng = rng_for(12);
    for _ in 0..48 {
        let len = rng.random_range(1..40usize);
        let pattern: Vec<bool> = (0..len).map(|_| rng.random::<bool>()).collect();
        let mut sim = Simulator::from_arc(std::sync::Arc::clone(&design)).unwrap();
        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
        sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
        sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
        let mut expected = 0u128;
        for en in &pattern {
            sim.poke_by_name("en", Logic::bit(*en)).unwrap();
            sim.poke_by_name("clk", Logic::bit(true)).unwrap();
            sim.poke_by_name("clk", Logic::bit(false)).unwrap();
            if *en {
                expected = (expected + 1) & 0xf;
            }
            assert_eq!(sim.peek_by_name("q").unwrap().to_u128(), Some(expected));
        }
    }
}
