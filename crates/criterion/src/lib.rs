//! In-workspace stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] / [`criterion_main!`]
//! — with a simple warm-up + timed-sample loop. Numbers printed are
//! indicative means, not criterion's full statistical treatment; the
//! point is that `cargo bench` runs every harness end to end without
//! network access.

use std::time::{Duration, Instant};

/// How a batched benchmark amortises its setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up round.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, total: Duration::ZERO, iterations: 0 };
        f(&mut b);
        let mean = if b.iterations == 0 { Duration::ZERO } else { b.total / b.iterations as u32 };
        println!("{name:<40} mean {:>12.3?}  ({} samples)", mean, b.iterations);
        self
    }
}

/// Mirrors criterion's `criterion_group!` in both its plain and
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default().sample_size(3);
        let mut made = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    vec![0u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(made, 4);
    }
}
