//! The paradigm error generator: seeded, text-surgical mutations that
//! reproduce the human error patterns of Table I.

use crate::taxonomy::{ErrorCategory, ErrorKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use uvllm_verilog::ast::*;
use uvllm_verilog::lexer::tokenize;
use uvllm_verilog::span::{LineMap, Span};
use uvllm_verilog::token::{Keyword, Token, TokenKind};
use uvllm_verilog::{parse, SourceFile};

/// Mutation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// The source does not offer a site for this operator — the "×"
    /// cells of the paper's Fig. 7 heat map.
    NoApplicableSite(ErrorKind),
    /// The input itself does not parse.
    BadInput(String),
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::NoApplicableSite(k) => {
                write!(f, "no applicable site for mutation '{k}'")
            }
            MutateError::BadInput(m) => write!(f, "input does not parse: {m}"),
        }
    }
}

impl std::error::Error for MutateError {}

/// What the oracle (and the evaluation harness) knows about an injected
/// error. The repair pipeline never sees this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    pub kind: ErrorKind,
    pub category: ErrorCategory,
    /// 1-based line of the edit in the *mutated* source.
    pub line: u32,
    /// Full text of the broken line (mutated source, trimmed).
    pub buggy_line: String,
    /// Full text of the original line (trimmed).
    pub fixed_line: String,
    /// Minimal wrong text (may be empty for deletions).
    pub buggy_snippet: String,
    /// Minimal right text.
    pub fixed_snippet: String,
    /// Exact multi-line window around the edit in the mutated source —
    /// suitable as the `original` half of an exact-match repair pair.
    pub buggy_window: String,
    /// The same window in the pristine source — the `patched` half.
    pub fixed_window: String,
    /// Human-style explanation, used as the oracle's "analysis".
    pub description: String,
}

/// A mutated benchmark instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationOutcome {
    pub mutated_src: String,
    pub ground_truth: GroundTruth,
}

/// One candidate text edit.
#[derive(Debug, Clone)]
struct Edit {
    span: Span,
    replacement: String,
    description: String,
}

/// Applies mutation operator `kind` to `src` with deterministic `seed`.
///
/// # Errors
///
/// [`MutateError::BadInput`] when `src` does not parse;
/// [`MutateError::NoApplicableSite`] when the operator has nowhere to
/// apply (or every candidate fails validation).
pub fn mutate(src: &str, kind: ErrorKind, seed: u64) -> Result<MutationOutcome, MutateError> {
    let file = parse(src).map_err(|e| MutateError::BadInput(e.to_string()))?;
    let tokens = tokenize(src).map_err(|e| MutateError::BadInput(e.to_string()))?;
    let mut candidates = collect_candidates(src, &file, &tokens, kind);
    if candidates.is_empty() {
        return Err(MutateError::NoApplicableSite(kind));
    }
    let mut rng = StdRng::seed_from_u64(seed ^ (kind as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    candidates.shuffle(&mut rng);
    for edit in candidates {
        let mutated = apply_edit(src, &edit);
        if mutated == src {
            continue;
        }
        let valid =
            if kind.is_syntax() { parse(&mutated).is_err() } else { parse(&mutated).is_ok() };
        if !valid {
            continue;
        }
        let gt = ground_truth(src, &mutated, &edit, kind);
        return Ok(MutationOutcome { mutated_src: mutated, ground_truth: gt });
    }
    Err(MutateError::NoApplicableSite(kind))
}

/// Operators that have at least one candidate site in `src` (before
/// validation). Used to build the Fig. 7 applicability matrix.
pub fn applicable_kinds(src: &str) -> Vec<ErrorKind> {
    let Ok(file) = parse(src) else { return Vec::new() };
    let Ok(tokens) = tokenize(src) else { return Vec::new() };
    ErrorKind::ALL
        .iter()
        .copied()
        .filter(|k| !collect_candidates(src, &file, &tokens, *k).is_empty())
        .collect()
}

fn apply_edit(src: &str, edit: &Edit) -> String {
    let mut out = String::with_capacity(src.len() + 8);
    out.push_str(&src[..edit.span.start]);
    out.push_str(&edit.replacement);
    out.push_str(&src[edit.span.end..]);
    out
}

fn line_text(src: &str, line: u32) -> String {
    src.lines().nth((line - 1) as usize).unwrap_or("").trim().to_string()
}

fn ground_truth(src: &str, mutated: &str, edit: &Edit, kind: ErrorKind) -> GroundTruth {
    let line = LineMap::new(mutated).line(edit.span.start);
    let orig_line = LineMap::new(src).line(edit.span.start);
    let fixed_snippet = edit.span.text(src).to_string();
    // Exact-text windows spanning from the line before the edit through
    // the last edited line, in each version. These survive as
    // exact-match anchors even for pure deletions (e.g. a dropped
    // `end` leaves an empty line that alone could never anchor a patch).
    let buggy_window = window(mutated, edit.span.start, edit.span.start + edit.replacement.len());
    let fixed_window = window(src, edit.span.start, edit.span.end);
    GroundTruth {
        kind,
        category: kind.category(),
        line,
        buggy_line: line_text(mutated, line),
        fixed_line: line_text(src, orig_line),
        buggy_snippet: edit.replacement.clone(),
        fixed_snippet,
        buggy_window,
        fixed_window,
        description: edit.description.clone(),
    }
}

/// Extracts the exact text from the start of the line preceding `start`
/// through the end of the line containing the edit, without the final
/// newline.
fn window(text: &str, start: usize, end: usize) -> String {
    let map = LineMap::new(text);
    let start = start.min(text.len());
    // Last byte actually covered by the edit (for empty edits, `start`).
    let anchor_end = if end > start { (end - 1).min(text.len().saturating_sub(1)) } else { start };
    let first_line = map.line(start).saturating_sub(1).max(1);
    let last_line = map.line(anchor_end).max(first_line);
    let from = map.line_start(first_line).unwrap_or(0);
    let to = match map.line_start(last_line + 1) {
        Some(next) => next.saturating_sub(1), // exclude trailing '\n'
        None => text.len(),
    };
    text[from..to.max(from)].to_string()
}

// ----------------------------------------------------------------------
// Candidate collection
// ----------------------------------------------------------------------

fn collect_candidates(
    src: &str,
    file: &SourceFile,
    tokens: &[Token],
    kind: ErrorKind,
) -> Vec<Edit> {
    match kind {
        ErrorKind::MissingSemicolon => tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Semi)
            .map(|t| Edit {
                span: t.span,
                replacement: String::new(),
                description: "a statement is missing its terminating ';'".into(),
            })
            .collect(),
        ErrorKind::MissingEnd => tokens
            .iter()
            .filter(|t| {
                matches!(
                    t.kind,
                    TokenKind::Keyword(Keyword::End) | TokenKind::Keyword(Keyword::Endcase)
                )
            })
            .map(|t| Edit {
                span: t.span,
                replacement: String::new(),
                description: "a block is missing its closing 'end'".into(),
            })
            .collect(),
        ErrorKind::UnbalancedBlock => tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Keyword(Keyword::Begin))
            .map(|t| Edit {
                span: t.span,
                replacement: String::new(),
                description: "a block is missing its opening 'begin'".into(),
            })
            .collect(),
        ErrorKind::OperatorTypo => tokens
            .iter()
            .filter_map(|t| {
                let rep = match t.kind {
                    TokenKind::LeAssign => "=<",
                    TokenKind::EqEq => "=!",
                    TokenKind::AndAnd => "&&&",
                    TokenKind::OrOr => "|||",
                    TokenKind::Ge => "=>",
                    _ => return None,
                };
                Some(Edit {
                    span: t.span,
                    replacement: rep.to_string(),
                    description: format!("operator '{}' was mistyped as '{rep}'", t.span.text(src)),
                })
            })
            .collect(),
        ErrorKind::KeywordTypo => tokens
            .iter()
            .filter_map(|t| {
                let TokenKind::Keyword(kw) = t.kind else { return None };
                let rep = match kw {
                    Keyword::Always => "alway",
                    Keyword::Assign => "asign",
                    Keyword::Module => "modul",
                    Keyword::Endmodule => "endmodul",
                    Keyword::Begin => "begn",
                    Keyword::Case => "caes",
                    Keyword::Endcase => "endcas",
                    Keyword::Wire => "wir",
                    Keyword::Posedge => "posege",
                    Keyword::Output => "outpu",
                    Keyword::Input => "inpu",
                    _ => return None,
                };
                Some(Edit {
                    span: t.span,
                    replacement: rep.to_string(),
                    description: format!("keyword '{}' was misspelled as '{rep}'", kw.as_str()),
                })
            })
            .collect(),
        ErrorKind::MalformedLiteral => tokens
            .iter()
            .filter_map(|t| {
                let TokenKind::Number(_) = &t.kind else { return None };
                let text = t.span.text(src);
                let apos = text.find('\'')?;
                let base_at = t.span.start + apos + 1;
                // Skip a signedness marker.
                let off = if src[base_at..].starts_with(['s', 'S']) { 1 } else { 0 };
                Some(Edit {
                    span: Span::new(base_at + off, base_at + off + 1),
                    replacement: "q".to_string(),
                    description: format!("literal '{text}' has an invalid base specifier"),
                })
            })
            .collect(),
        ErrorKind::DeclTypeMisuse => decl_type_sites(src, tokens),
        ErrorKind::BitwidthMisuse => bitwidth_sites(src, file),
        ErrorKind::OperatorMisuse => operator_sites(src, file, tokens),
        ErrorKind::ValueMisuse => value_sites(src, file, tokens),
        ErrorKind::VariableMisuse => variable_sites(src, file, tokens),
        ErrorKind::WrongJudgment => judgment_sites(src, tokens),
        ErrorKind::WrongSensitivity => sensitivity_sites(src, file),
        ErrorKind::PortMismatch => port_sites(src, file),
    }
}

/// `output reg` → `output` (drops the storage class).
fn decl_type_sites(src: &str, tokens: &[Token]) -> Vec<Edit> {
    let mut out = Vec::new();
    for pair in tokens.windows(2) {
        if pair[0].kind == TokenKind::Keyword(Keyword::Output)
            && pair[1].kind == TokenKind::Keyword(Keyword::Reg)
        {
            // Delete `reg` plus the following whitespace run.
            let mut end = pair[1].span.end;
            while src.as_bytes().get(end).is_some_and(|b| *b == b' ') {
                end += 1;
            }
            out.push(Edit {
                span: Span::new(pair[1].span.start, end),
                replacement: String::new(),
                description: "an 'output reg' port lost its reg storage class \
                              (type misuse in declaration)"
                    .into(),
            });
        }
    }
    out
}

/// Shrinks a declared `[msb:lsb]` range by one bit.
fn bitwidth_sites(src: &str, file: &SourceFile) -> Vec<Edit> {
    let mut out = Vec::new();
    let mut push_range = |r: &Range| {
        let (Expr::Number(m), Expr::Number(l)) = (&r.msb, &r.lsb) else { return };
        if m.xz != 0 || l.xz != 0 || m.value <= l.value + 1 {
            return;
        }
        let new_msb = m.value - 1;
        out.push(Edit {
            span: r.span,
            replacement: format!("[{}:{}]", new_msb, l.value),
            description: format!(
                "declared range {} was narrowed to [{new_msb}:{}] (bitwidth misuse)",
                r.span.text(src),
                l.value
            ),
        });
    };
    for module in &file.modules {
        for p in &module.ports {
            if let Some(r) = &p.range {
                push_range(r);
            }
        }
        for item in &module.items {
            if let Item::Net(d) = item {
                if let Some(r) = &d.range {
                    push_range(r);
                }
            }
        }
    }
    // Port ranges may be shared between the header and a body decl at
    // identical spans; dedupe.
    out.sort_by_key(|e| e.span.start);
    out.dedup_by_key(|e| e.span.start);
    out
}

/// Spans of every procedural/continuous assignment statement.
fn assignment_regions(file: &SourceFile) -> Vec<(Span, bool)> {
    let mut out = Vec::new();
    for module in &file.modules {
        for item in &module.items {
            match item {
                Item::Assign(a) => out.push((a.span, true)),
                Item::Always(a) => collect_assign_spans(&a.body, &mut out),
                Item::Initial(i) => collect_assign_spans(&i.body, &mut out),
                _ => {}
            }
        }
    }
    out
}

fn collect_assign_spans(stmt: &Stmt, out: &mut Vec<(Span, bool)>) {
    match stmt {
        Stmt::Block(b) => {
            for s in &b.stmts {
                collect_assign_spans(s, out);
            }
        }
        Stmt::Blocking(a) => out.push((a.span, true)),
        Stmt::NonBlocking(a) => out.push((a.span, false)),
        Stmt::If(i) => {
            collect_assign_spans(&i.then_branch, out);
            if let Some(e) = &i.else_branch {
                collect_assign_spans(e, out);
            }
        }
        Stmt::Case(c) => {
            for arm in &c.arms {
                collect_assign_spans(&arm.body, out);
            }
            if let Some(d) = &c.default {
                collect_assign_spans(d, out);
            }
        }
        Stmt::For(f) => collect_assign_spans(&f.body, out),
        _ => {}
    }
}

/// Swaps an arithmetic/bitwise operator inside an assignment.
fn operator_sites(src: &str, file: &SourceFile, tokens: &[Token]) -> Vec<Edit> {
    let regions = assignment_regions(file);
    let mut out = Vec::new();
    for (span, blocking) in &regions {
        let mut seen_assign_op = false;
        for t in tokens.iter().filter(|t| t.span.start >= span.start && t.span.end <= span.end) {
            // Skip the assignment operator itself.
            if !seen_assign_op {
                match t.kind {
                    TokenKind::Assign if *blocking => {
                        seen_assign_op = true;
                        continue;
                    }
                    TokenKind::LeAssign if !*blocking => {
                        seen_assign_op = true;
                        continue;
                    }
                    _ => continue,
                }
            }
            let rep = match t.kind {
                TokenKind::Plus => "-",
                TokenKind::Minus => "+",
                TokenKind::Amp => "|",
                TokenKind::Pipe => "&",
                TokenKind::Caret => "&",
                TokenKind::Shl => ">>",
                TokenKind::Shr => "<<",
                TokenKind::Star => "+",
                _ => continue,
            };
            out.push(Edit {
                span: t.span,
                replacement: rep.to_string(),
                description: format!(
                    "operator '{}' should be used instead of '{rep}' (operator misuse)",
                    t.span.text(src)
                ),
            });
        }
    }
    out
}

/// Perturbs a literal value inside an assignment RHS.
fn value_sites(src: &str, file: &SourceFile, tokens: &[Token]) -> Vec<Edit> {
    let regions = assignment_regions(file);
    let mut out = Vec::new();
    for (span, _) in &regions {
        for t in tokens.iter().filter(|t| t.span.start >= span.start && t.span.end <= span.end) {
            let TokenKind::Number(n) = &t.kind else { continue };
            if !n.digits.chars().all(|c| c.is_ascii_hexdigit()) {
                continue;
            }
            let text = t.span.text(src);
            let new_text = perturb_literal(text);
            if new_text == text {
                continue;
            }
            out.push(Edit {
                span: t.span,
                replacement: new_text.clone(),
                description: format!(
                    "constant '{text}' was miswritten as '{new_text}' (value misuse)"
                ),
            });
        }
    }
    out
}

/// `8'd0` → `8'd1`, `4'hf` → `4'he`, plain `7` → `8` — a one-step
/// perturbation that stays lexically valid.
fn perturb_literal(text: &str) -> String {
    match text.rfind(['d', 'h', 'b', 'o', 'D', 'H', 'B', 'O', '\'']) {
        Some(pos) if text.contains('\'') => {
            let (head, digits) = text.split_at(pos + 1);
            let radix = match head.to_ascii_lowercase().chars().rev().find(|c| c.is_alphabetic()) {
                Some('h') => 16,
                Some('b') => 2,
                Some('o') => 8,
                _ => 10,
            };
            match u128::from_str_radix(&digits.replace('_', ""), radix) {
                Ok(v) => {
                    let nv = if v == 0 { 1 } else { v - 1 };
                    let rendered = match radix {
                        16 => format!("{nv:x}"),
                        2 => format!("{nv:b}"),
                        8 => format!("{nv:o}"),
                        _ => format!("{nv}"),
                    };
                    format!("{head}{rendered}")
                }
                Err(_) => text.to_string(),
            }
        }
        _ => match text.parse::<u128>() {
            Ok(v) => format!("{}", v + 1),
            Err(_) => text.to_string(),
        },
    }
}

/// Replaces an identifier in an assignment RHS with another declared
/// signal of the same width.
fn variable_sites(src: &str, file: &SourceFile, tokens: &[Token]) -> Vec<Edit> {
    // Declared name → width per module (flat, first module wins).
    let mut widths: Vec<(String, Option<u32>)> = Vec::new();
    for module in &file.modules {
        for p in &module.ports {
            widths.push((p.name.clone(), range_width_of(&p.range)));
        }
        for item in &module.items {
            if let Item::Net(d) = item {
                for decl in &d.decls {
                    if decl.array.is_none() {
                        widths.push((decl.name.clone(), range_width_of(&d.range)));
                    }
                }
            }
        }
    }
    let regions = assignment_regions(file);
    let mut out = Vec::new();
    for (span, blocking) in &regions {
        let mut seen_assign_op = false;
        for t in tokens.iter().filter(|t| t.span.start >= span.start && t.span.end <= span.end) {
            if !seen_assign_op {
                match t.kind {
                    TokenKind::Assign if *blocking => seen_assign_op = true,
                    TokenKind::LeAssign if !*blocking => seen_assign_op = true,
                    _ => {}
                }
                continue;
            }
            let TokenKind::Ident(name) = &t.kind else { continue };
            let Some((_, w)) = widths.iter().find(|(n, _)| n == name) else { continue };
            // Deterministic partner: the next declared signal of the
            // same width (candidate order is then shuffled by seed).
            for (other, ow) in &widths {
                if other != name && ow == w {
                    out.push(Edit {
                        span: t.span,
                        replacement: other.clone(),
                        description: format!(
                            "signal '{name}' was mistaken for '{other}' (variable name misuse)"
                        ),
                    });
                    break;
                }
            }
            let _ = src;
        }
    }
    out
}

fn range_width_of(range: &Option<Range>) -> Option<u32> {
    match range {
        None => Some(1),
        Some(r) => match (&r.msb, &r.lsb) {
            (Expr::Number(m), Expr::Number(l)) => Some((m.value.abs_diff(l.value)) as u32 + 1),
            _ => None,
        },
    }
}

/// Perturbs a comparison constant or flips a relational operator inside
/// `if (…)` / `for (…; cond; …)` conditions.
fn judgment_sites(src: &str, tokens: &[Token]) -> Vec<Edit> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_if = tokens[i].kind == TokenKind::Keyword(Keyword::If);
        let is_for = tokens[i].kind == TokenKind::Keyword(Keyword::For);
        if !(is_if || is_for) {
            i += 1;
            continue;
        }
        // Find the parenthesised region.
        let mut j = i + 1;
        while j < tokens.len() && tokens[j].kind != TokenKind::LParen {
            j += 1;
        }
        let mut depth = 0;
        let start = j;
        let mut end = j;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for t in &tokens[start..=end.min(tokens.len() - 1)] {
            match &t.kind {
                TokenKind::Number(n) if n.digits.chars().all(|c| c.is_ascii_hexdigit()) => {
                    let text = t.span.text(src);
                    let doubled = double_literal(text);
                    if doubled != text {
                        out.push(Edit {
                            span: t.span,
                            replacement: doubled.clone(),
                            description: format!(
                                "condition constant '{text}' was miswritten as \
                                 '{doubled}' (wrong judgment value)"
                            ),
                        });
                    }
                }
                TokenKind::Lt => out.push(flip_edit(src, t, "<=")),
                TokenKind::LeAssign => out.push(flip_edit(src, t, "<")),
                TokenKind::Gt => out.push(flip_edit(src, t, ">=")),
                TokenKind::Ge => out.push(flip_edit(src, t, ">")),
                TokenKind::EqEq => out.push(flip_edit(src, t, "!=")),
                TokenKind::NotEq => out.push(flip_edit(src, t, "==")),
                _ => {}
            }
        }
        i = end.max(i) + 1;
    }
    out
}

fn flip_edit(src: &str, t: &Token, rep: &str) -> Edit {
    Edit {
        span: t.span,
        replacement: rep.to_string(),
        description: format!(
            "comparison '{}' should not be '{rep}' (wrong judgment)",
            t.span.text(src)
        ),
    }
}

/// `7` → `15`-style: `v*2+1` keeps loop-bound mutations in the paper's
/// idiom (`i < 7` → `i < 15`).
fn double_literal(text: &str) -> String {
    match text.rfind(['d', 'h', 'b', 'o', 'D', 'H', 'B', 'O', '\'']) {
        Some(pos) if text.contains('\'') => {
            let (head, digits) = text.split_at(pos + 1);
            let radix = match head.to_ascii_lowercase().chars().rev().find(|c| c.is_alphabetic()) {
                Some('h') => 16,
                Some('b') => 2,
                Some('o') => 8,
                _ => 10,
            };
            match u128::from_str_radix(&digits.replace('_', ""), radix) {
                Ok(v) => {
                    let nv = v.wrapping_mul(2).wrapping_add(1) & 0xffff;
                    let rendered = match radix {
                        16 => format!("{nv:x}"),
                        2 => format!("{nv:b}"),
                        8 => format!("{nv:o}"),
                        _ => format!("{nv}"),
                    };
                    format!("{head}{rendered}")
                }
                Err(_) => text.to_string(),
            }
        }
        _ => match text.parse::<u128>() {
            Ok(v) => format!("{}", v * 2 + 1),
            Err(_) => text.to_string(),
        },
    }
}

/// Drops an item from a multi-entry sensitivity list or flips an edge.
fn sensitivity_sites(src: &str, file: &SourceFile) -> Vec<Edit> {
    let mut out = Vec::new();
    for module in &file.modules {
        for item in &module.items {
            let Item::Always(a) = item else { continue };
            let Sensitivity::List(items) = &a.sensitivity else { continue };
            // Drop the trailing item (with its `or` separator).
            if items.len() >= 2 {
                let prev = &items[items.len() - 2];
                let last = &items[items.len() - 1];
                out.push(Edit {
                    span: Span::new(prev.span.end, last.span.end),
                    replacement: String::new(),
                    description: format!(
                        "sensitivity list lost 'or {}' (wrong sensitivity)",
                        last.span.text(src)
                    ),
                });
            }
            // Flip posedge <-> negedge on each edge item.
            for s in items {
                let Some(edge) = s.edge else { continue };
                let text = s.span.text(src);
                let (from, to) = match edge {
                    Edge::Pos => ("posedge", "negedge"),
                    Edge::Neg => ("negedge", "posedge"),
                };
                if let Some(rel) = text.find(from) {
                    out.push(Edit {
                        span: Span::new(s.span.start + rel, s.span.start + rel + from.len()),
                        replacement: to.to_string(),
                        description: format!(
                            "'{from} {}' was written as '{to} {}' (wrong sensitivity)",
                            s.signal, s.signal
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Swaps the expressions of two adjacent port connections, or truncates
/// a concatenation connection to its last element.
fn port_sites(src: &str, file: &SourceFile) -> Vec<Edit> {
    let mut out = Vec::new();
    for module in &file.modules {
        for item in &module.items {
            let Item::Instance(inst) = item else { continue };
            // Truncate `{…, x}` concat connections to `x` (the paper's
            // `.inbd({bdg, 1'b1})` → `.inbd(1'b1)` example).
            for conn in &inst.conns {
                if let Some(Expr::Concat(_)) = &conn.expr {
                    let text = conn.span.text(src);
                    let Some(open) = text.find('{') else { continue };
                    let Some(close) = text.rfind('}') else { continue };
                    let inner = &text[open + 1..close];
                    let Some(last) = inner.rsplit(',').next() else { continue };
                    out.push(Edit {
                        span: Span::new(conn.span.start + open, conn.span.start + close + 1),
                        replacement: last.trim().to_string(),
                        description: format!(
                            "connection '{}' lost part of its concatenation \
                             (port mismatch)",
                            text
                        ),
                    });
                }
            }
            // Swap adjacent connection expressions.
            for pair in inst.conns.windows(2) {
                let (Some(e0), Some(e1)) = (&pair[0].expr, &pair[1].expr) else { continue };
                let (Some(t0), Some(t1)) =
                    (conn_expr_span(src, &pair[0]), conn_expr_span(src, &pair[1]))
                else {
                    continue;
                };
                let s0 = t0.text(src).to_string();
                let s1 = t1.text(src).to_string();
                if s0 == s1 {
                    continue;
                }
                let _ = (e0, e1);
                // One combined edit spanning both connections.
                let whole = Span::new(pair[0].span.start, pair[1].span.end);
                let text = whole.text(src);
                let r0 = t0.start - whole.start..t0.end - whole.start;
                let r1 = t1.start - whole.start..t1.end - whole.start;
                let mut newt = String::new();
                newt.push_str(&text[..r0.start]);
                newt.push_str(&s1);
                newt.push_str(&text[r0.end..r1.start]);
                newt.push_str(&s0);
                newt.push_str(&text[r1.end..]);
                out.push(Edit {
                    span: whole,
                    replacement: newt,
                    description: format!(
                        "connections '{s0}' and '{s1}' were swapped (port mismatch)"
                    ),
                });
            }
        }
    }
    out
}

/// The span of the expression inside a connection (`.p(expr)` → `expr`).
fn conn_expr_span(src: &str, conn: &Connection) -> Option<Span> {
    let text = conn.span.text(src);
    if conn.port.is_some() {
        let open = text.find('(')?;
        let close = text.rfind(')')?;
        if open + 1 > close {
            return None;
        }
        Some(Span::new(conn.span.start + open + 1, conn.span.start + close))
    } else {
        Some(conn.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
                           always @(posedge clk or negedge rst_n) begin\n\
                           if (!rst_n) q <= 4'd0;\n\
                           else if (en) q <= q + 4'd1;\n\
                           end\nendmodule\n";

    const HIER: &str =
        "module top(input [1:0] a, input [1:0] b, output [1:0] x, output [1:0] y);\n\
                        pass u0(.i(a), .o(x));\npass u1(.i(b), .o(y));\nendmodule\n\
                        module pass(input [1:0] i, output [1:0] o);\nassign o = i;\nendmodule\n";

    #[test]
    fn syntax_mutations_break_parse() {
        for kind in ErrorKind::syntax_kinds() {
            match mutate(COUNTER, kind, 1) {
                Ok(out) => {
                    assert!(
                        parse(&out.mutated_src).is_err(),
                        "{kind}: mutated source still parses"
                    );
                    assert_eq!(out.ground_truth.kind, kind);
                    assert!(out.ground_truth.category.is_syntax());
                }
                Err(MutateError::NoApplicableSite(_)) => {
                    // MalformedLiteral etc. may not apply to all inputs.
                }
                Err(e) => panic!("{kind}: {e}"),
            }
        }
    }

    #[test]
    fn functional_mutations_still_parse() {
        for kind in ErrorKind::functional_kinds() {
            match mutate(COUNTER, kind, 2) {
                Ok(out) => {
                    assert!(parse(&out.mutated_src).is_ok(), "{kind}: broke parse");
                    assert_ne!(out.mutated_src, COUNTER, "{kind}: no-op mutation");
                    assert!(!out.ground_truth.category.is_syntax());
                }
                Err(MutateError::NoApplicableSite(_)) => {}
                Err(e) => panic!("{kind}: {e}"),
            }
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let a = mutate(COUNTER, ErrorKind::ValueMisuse, 42).unwrap();
        let b = mutate(COUNTER, ErrorKind::ValueMisuse, 42).unwrap();
        assert_eq!(a, b);
        let c = mutate(COUNTER, ErrorKind::ValueMisuse, 43).unwrap();
        // Different seeds usually pick different sites; at minimum the
        // result is still a valid mutation.
        assert!(parse(&c.mutated_src).is_ok());
    }

    #[test]
    fn missing_semicolon_ground_truth() {
        let out = mutate(COUNTER, ErrorKind::MissingSemicolon, 0).unwrap();
        assert_eq!(out.ground_truth.fixed_snippet, ";");
        assert!(out.ground_truth.buggy_snippet.is_empty());
        assert!(out.ground_truth.line >= 1);
    }

    #[test]
    fn decl_type_misuse_drops_reg() {
        let out = mutate(COUNTER, ErrorKind::DeclTypeMisuse, 0).unwrap();
        assert!(out.mutated_src.contains("output [3:0] q"), "{}", out.mutated_src);
        assert!(out.ground_truth.fixed_line.contains("output reg"));
    }

    #[test]
    fn bitwidth_misuse_shrinks_range() {
        let out = mutate(COUNTER, ErrorKind::BitwidthMisuse, 0).unwrap();
        assert!(out.mutated_src.contains("[2:0]"), "{}", out.mutated_src);
    }

    #[test]
    fn wrong_sensitivity_alters_edges() {
        let out = mutate(COUNTER, ErrorKind::WrongSensitivity, 5).unwrap();
        let s = &out.mutated_src;
        let dropped = !s.contains("negedge rst_n");
        let flipped = s.contains("negedge clk") || s.contains("posedge rst_n");
        assert!(dropped || flipped, "{s}");
    }

    #[test]
    fn wrong_judgment_perturbs_condition() {
        let src = "module f(input [7:0] d, output reg [7:0] q);\ninteger i;\n\
                   always @(*) begin\nq = 8'd0;\nfor (i = 0; i < 7; i = i + 1)\n\
                   q[i] = d[i];\nend\nendmodule\n";
        let out = mutate(src, ErrorKind::WrongJudgment, 3).unwrap();
        assert!(parse(&out.mutated_src).is_ok());
        assert_ne!(out.mutated_src, src);
    }

    #[test]
    fn port_mismatch_swaps_connections() {
        let out = mutate(HIER, ErrorKind::PortMismatch, 1).unwrap();
        assert!(parse(&out.mutated_src).is_ok());
        assert_ne!(out.mutated_src, HIER);
    }

    #[test]
    fn port_mismatch_truncates_concat() {
        let src = "module top(input a, output [1:0] y);\n\
                   sub u(.i({a, 1'b1}), .o(y));\nendmodule\n\
                   module sub(input [1:0] i, output [1:0] o);\nassign o = i;\nendmodule\n";
        // Try several seeds; at least one should pick the truncation.
        let mut truncated = false;
        for seed in 0..8 {
            if let Ok(out) = mutate(src, ErrorKind::PortMismatch, seed) {
                if out.mutated_src.contains(".i(1'b1)") {
                    truncated = true;
                    break;
                }
            }
        }
        assert!(truncated);
    }

    #[test]
    fn applicability_matrix() {
        let kinds = applicable_kinds(COUNTER);
        assert!(kinds.contains(&ErrorKind::MissingSemicolon));
        assert!(kinds.contains(&ErrorKind::WrongSensitivity));
        // No instances in COUNTER: port mismatch is not applicable.
        assert!(!kinds.contains(&ErrorKind::PortMismatch));
        let hier_kinds = applicable_kinds(HIER);
        assert!(hier_kinds.contains(&ErrorKind::PortMismatch));
    }

    #[test]
    fn no_site_error_for_missing_constructs() {
        let comb = "module inv(input a, output y);\nassign y = ~a;\nendmodule\n";
        assert!(matches!(
            mutate(comb, ErrorKind::WrongSensitivity, 0),
            Err(MutateError::NoApplicableSite(_))
        ));
    }

    #[test]
    fn bad_input_rejected() {
        assert!(matches!(
            mutate("not verilog", ErrorKind::MissingSemicolon, 0),
            Err(MutateError::BadInput(_))
        ));
    }

    #[test]
    fn perturb_literal_forms() {
        assert_eq!(perturb_literal("8'd0"), "8'd1");
        assert_eq!(perturb_literal("8'd5"), "8'd4");
        assert_eq!(perturb_literal("4'hf"), "4'he");
        assert_eq!(perturb_literal("7"), "8");
        assert_eq!(double_literal("7"), "15");
        assert_eq!(double_literal("4'd7"), "4'd15");
    }

    #[test]
    fn value_misuse_changes_rhs_constant() {
        let out = mutate(COUNTER, ErrorKind::ValueMisuse, 9).unwrap();
        assert!(parse(&out.mutated_src).is_ok());
        assert_ne!(out.mutated_src, COUNTER);
        assert!(!out.ground_truth.description.is_empty());
    }

    #[test]
    fn variable_misuse_uses_declared_signal() {
        let src = "module m(input [3:0] a, input [3:0] b, output [3:0] y);\n\
                   assign y = a;\nendmodule\n";
        let out = mutate(src, ErrorKind::VariableMisuse, 0).unwrap();
        assert!(out.mutated_src.contains("assign y = b") || out.mutated_src.contains("= y"));
    }
}
