//! Error taxonomy: Table I of the paper mapped onto the evaluation
//! categories of Figures 5 (syntax) and 6 (functional).

use std::fmt;

/// Concrete mutation operators (the "paradigm error generator").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    // ---- syntax-breaking mutations -------------------------------
    /// Delete a `;`.
    MissingSemicolon,
    /// Delete an `end` / `endcase`.
    MissingEnd,
    /// Delete a `begin` (leaves dangling `end`).
    UnbalancedBlock,
    /// Corrupt a binary operator (`<=` → `=<`, `&&` → `&&&`, …).
    OperatorTypo,
    /// Misspell a keyword (`always` → `alway`, …).
    KeywordTypo,
    /// Corrupt a based literal (`8'hff` → `8'qff`).
    MalformedLiteral,

    // ---- functional mutations (Table I) --------------------------
    /// `output reg […] x` → `output […] x` (Declare / Type Misuse).
    DeclTypeMisuse,
    /// Shrink/grow a declared range (Declare / Bitwidth Misuse).
    BitwidthMisuse,
    /// Swap an operator within its class (Assignment / Operator Misuse).
    OperatorMisuse,
    /// Replace an identifier with another declared one (Variable Name
    /// Misuse).
    VariableMisuse,
    /// Perturb a literal value (Assignment / Value Misuse).
    ValueMisuse,
    /// Change a comparison constant or operator in a condition
    /// (Condition / Wrong Judgment Value).
    WrongJudgment,
    /// Drop or flip an edge in a sensitivity list (Condition / Wrong
    /// Sensitivity).
    WrongSensitivity,
    /// Swap or truncate instance port connections (Port / Port
    /// Mismatch).
    PortMismatch,
}

impl ErrorKind {
    /// All operators, syntax first.
    pub const ALL: [ErrorKind; 14] = [
        ErrorKind::MissingSemicolon,
        ErrorKind::MissingEnd,
        ErrorKind::UnbalancedBlock,
        ErrorKind::OperatorTypo,
        ErrorKind::KeywordTypo,
        ErrorKind::MalformedLiteral,
        ErrorKind::DeclTypeMisuse,
        ErrorKind::BitwidthMisuse,
        ErrorKind::OperatorMisuse,
        ErrorKind::VariableMisuse,
        ErrorKind::ValueMisuse,
        ErrorKind::WrongJudgment,
        ErrorKind::WrongSensitivity,
        ErrorKind::PortMismatch,
    ];

    /// The syntax-breaking subset.
    pub fn syntax_kinds() -> Vec<ErrorKind> {
        Self::ALL.iter().copied().filter(|k| k.is_syntax()).collect()
    }

    /// The functional subset.
    pub fn functional_kinds() -> Vec<ErrorKind> {
        Self::ALL.iter().copied().filter(|k| !k.is_syntax()).collect()
    }

    /// True when the mutated file no longer parses.
    pub fn is_syntax(&self) -> bool {
        matches!(
            self,
            ErrorKind::MissingSemicolon
                | ErrorKind::MissingEnd
                | ErrorKind::UnbalancedBlock
                | ErrorKind::OperatorTypo
                | ErrorKind::KeywordTypo
                | ErrorKind::MalformedLiteral
        )
    }

    /// Evaluation category (Fig. 5 / Fig. 6 axis).
    pub fn category(&self) -> ErrorCategory {
        use ErrorCategory::*;
        match self {
            ErrorKind::MissingSemicolon | ErrorKind::MissingEnd => {
                Syntax(SyntaxCategory::PrematureTermination)
            }
            ErrorKind::UnbalancedBlock => Syntax(SyntaxCategory::ScopeIssues),
            ErrorKind::OperatorTypo => Syntax(SyntaxCategory::OperatorMisuses),
            ErrorKind::KeywordTypo => Syntax(SyntaxCategory::IncorrectCoding),
            ErrorKind::MalformedLiteral => Syntax(SyntaxCategory::DataHandling),
            ErrorKind::DeclTypeMisuse => Functional(FunctionalCategory::DeclarationErrors),
            ErrorKind::BitwidthMisuse => Functional(FunctionalCategory::IncorrectBitwidth),
            ErrorKind::OperatorMisuse
            | ErrorKind::VariableMisuse
            | ErrorKind::ValueMisuse
            | ErrorKind::PortMismatch => Functional(FunctionalCategory::LogicErrors),
            ErrorKind::WrongJudgment | ErrorKind::WrongSensitivity => {
                Functional(FunctionalCategory::FlawedConditions)
            }
        }
    }

    /// Short machine name.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::MissingSemicolon => "missing_semicolon",
            ErrorKind::MissingEnd => "missing_end",
            ErrorKind::UnbalancedBlock => "unbalanced_block",
            ErrorKind::OperatorTypo => "operator_typo",
            ErrorKind::KeywordTypo => "keyword_typo",
            ErrorKind::MalformedLiteral => "malformed_literal",
            ErrorKind::DeclTypeMisuse => "decl_type_misuse",
            ErrorKind::BitwidthMisuse => "bitwidth_misuse",
            ErrorKind::OperatorMisuse => "operator_misuse",
            ErrorKind::VariableMisuse => "variable_misuse",
            ErrorKind::ValueMisuse => "value_misuse",
            ErrorKind::WrongJudgment => "wrong_judgment",
            ErrorKind::WrongSensitivity => "wrong_sensitivity",
            ErrorKind::PortMismatch => "port_mismatch",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Fig. 5 syntax-error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntaxCategory {
    PrematureTermination,
    ScopeIssues,
    OperatorMisuses,
    IncorrectCoding,
    DataHandling,
}

impl SyntaxCategory {
    /// All categories in the order of Fig. 5.
    pub const ALL: [SyntaxCategory; 5] = [
        SyntaxCategory::PrematureTermination,
        SyntaxCategory::ScopeIssues,
        SyntaxCategory::OperatorMisuses,
        SyntaxCategory::IncorrectCoding,
        SyntaxCategory::DataHandling,
    ];

    /// Display label matching the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            SyntaxCategory::PrematureTermination => "Premature termination",
            SyntaxCategory::ScopeIssues => "Scope issues",
            SyntaxCategory::OperatorMisuses => "Operator misuses",
            SyntaxCategory::IncorrectCoding => "Incorrect coding",
            SyntaxCategory::DataHandling => "Data handling",
        }
    }
}

/// Fig. 6 functional-error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionalCategory {
    DeclarationErrors,
    FlawedConditions,
    IncorrectBitwidth,
    LogicErrors,
}

impl FunctionalCategory {
    /// All categories in the order of Fig. 6.
    pub const ALL: [FunctionalCategory; 4] = [
        FunctionalCategory::DeclarationErrors,
        FunctionalCategory::FlawedConditions,
        FunctionalCategory::IncorrectBitwidth,
        FunctionalCategory::LogicErrors,
    ];

    /// Display label matching the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            FunctionalCategory::DeclarationErrors => "Declaration errors",
            FunctionalCategory::FlawedConditions => "Flawed conditions",
            FunctionalCategory::IncorrectBitwidth => "Incorrect bitwidth",
            FunctionalCategory::LogicErrors => "Logic errors",
        }
    }
}

/// The Fig. 5 / Fig. 6 axis an [`ErrorKind`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCategory {
    Syntax(SyntaxCategory),
    Functional(FunctionalCategory),
}

impl ErrorCategory {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCategory::Syntax(c) => c.label(),
            ErrorCategory::Functional(c) => c.label(),
        }
    }

    /// True for syntax categories.
    pub fn is_syntax(&self) -> bool {
        matches!(self, ErrorCategory::Syntax(_))
    }
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_partitions() {
        assert_eq!(ErrorKind::syntax_kinds().len() + ErrorKind::functional_kinds().len(), 14);
        for k in ErrorKind::ALL {
            assert_eq!(k.is_syntax(), k.category().is_syntax(), "{k}");
        }
    }

    #[test]
    fn categories_cover_paper_figures() {
        assert_eq!(SyntaxCategory::ALL.len(), 5);
        assert_eq!(FunctionalCategory::ALL.len(), 4);
        // Every syntax category is producible by at least one kind.
        for c in SyntaxCategory::ALL {
            assert!(
                ErrorKind::syntax_kinds().iter().any(|k| k.category() == ErrorCategory::Syntax(c)),
                "{}",
                c.label()
            );
        }
        for c in FunctionalCategory::ALL {
            assert!(
                ErrorKind::functional_kinds()
                    .iter()
                    .any(|k| k.category() == ErrorCategory::Functional(c)),
                "{}",
                c.label()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ErrorKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14);
    }
}
