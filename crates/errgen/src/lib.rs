//! # uvllm-errgen
//!
//! The paradigm error generator of the UVLLM paper (§III-E, Table I):
//! seeded mutation operators that inject realistic human coding errors
//! into verified Verilog designs, producing the evaluation benchmark.
//!
//! Syntax operators (missing `;`/`end`/`begin`, operator and keyword
//! typos, malformed literals) make the file unparseable; functional
//! operators (declaration type/bitwidth misuse, operator/variable/value
//! misuse, wrong judgment values, wrong sensitivity, port mismatches)
//! keep it compiling but behaviourally wrong. Every mutation returns a
//! [`GroundTruth`] record consumed *only* by the calibrated LLM oracle
//! and the evaluation harness — the repair pipeline never sees it.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use uvllm_errgen::{mutate, ErrorKind};
//!
//! let src = "module inv(input a, output y);\nassign y = ~a;\nendmodule\n";
//! let out = mutate(src, ErrorKind::MissingSemicolon, 7)?;
//! assert!(uvllm_verilog::parse(&out.mutated_src).is_err());
//! assert_eq!(out.ground_truth.fixed_snippet, ";");
//! # Ok(())
//! # }
//! ```

pub mod mutate;
pub mod taxonomy;

pub use mutate::{applicable_kinds, mutate, GroundTruth, MutateError, MutationOutcome};
pub use taxonomy::{ErrorCategory, ErrorKind, FunctionalCategory, SyntaxCategory};
