//! Property tests on the error generator: validity and determinism of
//! mutations across many seeds and the whole design corpus shape.
//!
//! Written as seeded exhaustive/randomised loops (the workspace builds
//! without the `proptest` crate): every (source, kind) pair is driven
//! with a spread of RNG seeds drawn from the workspace PRNG.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uvllm_errgen::{mutate, ErrorKind, MutateError};
use uvllm_verilog::parse;

const CORPUS: [&str; 3] = [
    // Sequential with reset + condition + sensitivity sites.
    "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
     always @(posedge clk or negedge rst_n) begin\n\
     if (!rst_n) q <= 4'd0;\nelse if (en) q <= q + 4'd1;\nend\nendmodule\n",
    // Combinational with case + operators + literals.
    "module a(input [7:0] x, input [7:0] y, input [1:0] op, output reg [7:0] z);\n\
     always @(*) begin\ncase (op)\n2'd0: z = x + y;\n2'd1: z = x - y;\n\
     2'd2: z = x & y;\ndefault: z = x ^ y;\nendcase\nend\nendmodule\n",
    // Hierarchy with connections.
    "module top(input [3:0] p, input [3:0] q, output [3:0] u, output [3:0] v);\n\
     pass m0(.i(p), .o(u));\npass m1(.i(q), .o(v));\nendmodule\n\
     module pass(input [3:0] i, output [3:0] o);\nassign o = i;\nendmodule\n",
];

/// Drives `check` over every (source, kind) pair with `rounds` random
/// seeds each.
fn for_all_cases(rounds: usize, mut check: impl FnMut(&str, ErrorKind, u64)) {
    let mut rng = StdRng::seed_from_u64(0x4D75_7461);
    for _ in 0..rounds {
        let seed = rng.random::<u64>();
        for src in CORPUS {
            for kind in ErrorKind::ALL {
                check(src, kind, seed);
            }
        }
    }
}

/// Syntax mutations always break the parse; functional mutations always
/// keep it intact; both always change the text.
#[test]
fn mutation_validity() {
    for_all_cases(24, |src, kind, seed| match mutate(src, kind, seed) {
        Ok(out) => {
            assert_ne!(out.mutated_src, src);
            if kind.is_syntax() {
                assert!(parse(&out.mutated_src).is_err(), "{kind} should break (seed {seed})");
            } else {
                assert!(parse(&out.mutated_src).is_ok(), "{kind} should parse (seed {seed})");
            }
            // Ground truth invariants.
            assert_eq!(out.ground_truth.kind, kind);
            assert!(out.ground_truth.line >= 1);
            assert!(!out.ground_truth.description.is_empty());
            // The buggy window anchors in the mutated source and the
            // fixed window in the original.
            assert!(out.mutated_src.contains(&out.ground_truth.buggy_window));
            assert!(src.contains(&out.ground_truth.fixed_window));
        }
        Err(MutateError::NoApplicableSite(_)) => {}
        Err(e) => panic!("unexpected error: {e} ({kind}, seed {seed})"),
    });
}

/// Mutation is a pure function of (src, kind, seed).
#[test]
fn mutation_determinism() {
    for_all_cases(8, |src, kind, seed| {
        let a = mutate(src, kind, seed);
        let b = mutate(src, kind, seed);
        assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(x), Ok(y)) = (a, b) {
            assert_eq!(x, y);
        }
    });
}

/// Reverting the ground-truth window restores the original source
/// exactly (the oracle's success pair is sound).
#[test]
fn ground_truth_window_reverts() {
    for_all_cases(24, |src, kind, seed| {
        if let Ok(out) = mutate(src, kind, seed) {
            let reverted = out.mutated_src.replacen(
                &out.ground_truth.buggy_window,
                &out.ground_truth.fixed_window,
                1,
            );
            assert_eq!(reverted, src, "window revert must restore the source ({kind}, {seed})");
        }
    });
}
