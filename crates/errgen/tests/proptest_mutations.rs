//! Property tests on the error generator: validity and determinism of
//! mutations across arbitrary seeds and the whole design corpus shape.

use proptest::prelude::*;
use uvllm_errgen::{mutate, ErrorKind, MutateError};
use uvllm_verilog::parse;

const CORPUS: [&str; 3] = [
    // Sequential with reset + condition + sensitivity sites.
    "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
     always @(posedge clk or negedge rst_n) begin\n\
     if (!rst_n) q <= 4'd0;\nelse if (en) q <= q + 4'd1;\nend\nendmodule\n",
    // Combinational with case + operators + literals.
    "module a(input [7:0] x, input [7:0] y, input [1:0] op, output reg [7:0] z);\n\
     always @(*) begin\ncase (op)\n2'd0: z = x + y;\n2'd1: z = x - y;\n\
     2'd2: z = x & y;\ndefault: z = x ^ y;\nendcase\nend\nendmodule\n",
    // Hierarchy with connections.
    "module top(input [3:0] p, input [3:0] q, output [3:0] u, output [3:0] v);\n\
     pass m0(.i(p), .o(u));\npass m1(.i(q), .o(v));\nendmodule\n\
     module pass(input [3:0] i, output [3:0] o);\nassign o = i;\nendmodule\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Syntax mutations always break the parse; functional mutations
    /// always keep it intact; both always change the text.
    #[test]
    fn mutation_validity(seed in any::<u64>(), src_idx in 0usize..3, kind_idx in 0usize..14) {
        let src = CORPUS[src_idx];
        let kind = ErrorKind::ALL[kind_idx];
        match mutate(src, kind, seed) {
            Ok(out) => {
                prop_assert_ne!(&out.mutated_src, src);
                if kind.is_syntax() {
                    prop_assert!(parse(&out.mutated_src).is_err(), "{} should break", kind);
                } else {
                    prop_assert!(parse(&out.mutated_src).is_ok(), "{} should parse", kind);
                }
                // Ground truth invariants.
                prop_assert_eq!(out.ground_truth.kind, kind);
                prop_assert!(out.ground_truth.line >= 1);
                prop_assert!(!out.ground_truth.description.is_empty());
                // The buggy window anchors in the mutated source and the
                // fixed window in the original.
                prop_assert!(out.mutated_src.contains(&out.ground_truth.buggy_window));
                prop_assert!(src.contains(&out.ground_truth.fixed_window));
            }
            Err(MutateError::NoApplicableSite(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Mutation is a pure function of (src, kind, seed).
    #[test]
    fn mutation_determinism(seed in any::<u64>(), src_idx in 0usize..3, kind_idx in 0usize..14) {
        let src = CORPUS[src_idx];
        let kind = ErrorKind::ALL[kind_idx];
        let a = mutate(src, kind, seed);
        let b = mutate(src, kind, seed);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(x), Ok(y)) = (a, b) {
            prop_assert_eq!(x, y);
        }
    }

    /// Reverting the ground-truth window restores the original source
    /// exactly (the oracle's success pair is sound).
    #[test]
    fn ground_truth_window_reverts(seed in any::<u64>(), src_idx in 0usize..3, kind_idx in 0usize..14) {
        let src = CORPUS[src_idx];
        let kind = ErrorKind::ALL[kind_idx];
        if let Ok(out) = mutate(src, kind, seed) {
            let reverted = out.mutated_src.replacen(
                &out.ground_truth.buggy_window,
                &out.ground_truth.fixed_window,
                1,
            );
            prop_assert_eq!(reverted, src, "window revert must restore the source");
        }
    }
}
