//! The common interface every repair method implements, so the
//! experiment harness can evaluate them uniformly.

use std::time::Duration;
use uvllm_designs::Design;
use uvllm_llm::Usage;

/// The result a repair method reports for one instance.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// The candidate the method settled on.
    pub final_code: String,
    /// Whether the method itself believes the repair succeeded (its own
    /// acceptance test passed). HR/FR are judged externally.
    pub claimed_success: bool,
    /// Iterations / candidates attempted.
    pub iterations: usize,
    /// Total execution time (simulated LLM latency + measured).
    pub time: Duration,
    /// LLM accounting (zero for purely script-based methods).
    pub usage: Usage,
}

/// A repair method under evaluation.
pub trait RepairMethod {
    /// Display name used in result tables.
    fn name(&self) -> &str;

    /// Attempts to repair `src` for `design`.
    fn repair(&mut self, design: &Design, src: &str) -> MethodOutcome;
}
