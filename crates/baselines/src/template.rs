//! Script-based baselines: Strider-style signal-guided template repair
//! and RTLrepair-style template search.
//!
//! Both are genuinely algorithmic (no LLM, no ground truth): they
//! enumerate small mutation templates and accept the first candidate
//! that passes the public directed testbench — which is precisely why
//! their Hit Rates outrun their Fix Rates in Fig. 6.

use crate::method::{MethodOutcome, RepairMethod};
use std::time::Instant;
use uvllm::stages::{directed_stage_with, UvmOutcome};
use uvllm_designs::Design;
use uvllm_dfg::Dfg;
use uvllm_llm::Usage;
use uvllm_sim::SimBackend;
use uvllm_verilog::lexer::tokenize;
use uvllm_verilog::span::{LineMap, Span};
use uvllm_verilog::token::{Token, TokenKind};

/// One candidate textual edit.
#[derive(Debug, Clone)]
struct Candidate {
    span: Span,
    replacement: String,
}

/// Generates operator-flip and literal-perturbation candidates inside
/// the given byte regions (or everywhere when `regions` is `None`).
fn template_candidates(src: &str, regions: Option<&[Span]>) -> Vec<Candidate> {
    let Ok(tokens) = tokenize(src) else { return Vec::new() };
    let in_region = |t: &Token| match regions {
        None => true,
        Some(rs) => rs.iter().any(|r| t.span.start >= r.start && t.span.end <= r.end),
    };
    let mut out = Vec::new();
    for t in tokens.iter().filter(|t| in_region(t)) {
        match &t.kind {
            TokenKind::Plus => out.push(Candidate { span: t.span, replacement: "-".into() }),
            TokenKind::Minus => out.push(Candidate { span: t.span, replacement: "+".into() }),
            TokenKind::Amp => out.push(Candidate { span: t.span, replacement: "|".into() }),
            TokenKind::Pipe => out.push(Candidate { span: t.span, replacement: "&".into() }),
            TokenKind::Caret => out.push(Candidate { span: t.span, replacement: "~^".into() }),
            TokenKind::Shl => out.push(Candidate { span: t.span, replacement: ">>".into() }),
            TokenKind::Shr => out.push(Candidate { span: t.span, replacement: "<<".into() }),
            TokenKind::Lt => out.push(Candidate { span: t.span, replacement: "<=".into() }),
            TokenKind::Gt => out.push(Candidate { span: t.span, replacement: ">=".into() }),
            TokenKind::EqEq => out.push(Candidate { span: t.span, replacement: "!=".into() }),
            TokenKind::NotEq => out.push(Candidate { span: t.span, replacement: "==".into() }),
            TokenKind::Number(n) if n.digits.chars().all(|c| c.is_ascii_hexdigit()) => {
                let text = t.span.text(src);
                for delta in [1i64, -1] {
                    if let Some(rep) = shift_literal(text, delta) {
                        out.push(Candidate { span: t.span, replacement: rep });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Rewrites a literal with its value shifted by `delta`, preserving the
/// width/base prefix.
fn shift_literal(text: &str, delta: i64) -> Option<String> {
    if let Some(apos) = text.find('\'') {
        let head = &text[..apos + 2]; // includes base letter
        let digits = &text[apos + 2..];
        let radix = match text.as_bytes().get(apos + 1)?.to_ascii_lowercase() {
            b'h' => 16,
            b'b' => 2,
            b'o' => 8,
            b'd' => 10,
            _ => return None,
        };
        let v = i64::from_str_radix(&digits.replace('_', ""), radix).ok()?;
        let nv = v.checked_add(delta)?;
        if nv < 0 {
            return None;
        }
        let rendered = match radix {
            16 => format!("{nv:x}"),
            2 => format!("{nv:b}"),
            8 => format!("{nv:o}"),
            _ => format!("{nv}"),
        };
        Some(format!("{head}{rendered}"))
    } else {
        let v: i64 = text.parse().ok()?;
        let nv = v.checked_add(delta)?;
        if nv < 0 {
            return None;
        }
        Some(format!("{nv}"))
    }
}

/// Bitwidth templates: widen/narrow declared ranges by one bit.
fn bitwidth_candidates(src: &str) -> Vec<Candidate> {
    let Ok(file) = uvllm_verilog::parse(src) else { return Vec::new() };
    let mut out = Vec::new();
    let mut push = |r: &uvllm_verilog::ast::Range| {
        use uvllm_verilog::ast::Expr;
        let (Expr::Number(m), Expr::Number(l)) = (&r.msb, &r.lsb) else { return };
        for delta in [1i64, -1] {
            let nm = m.value as i64 + delta;
            if nm > l.value as i64 && nm < 128 {
                out.push(Candidate { span: r.span, replacement: format!("[{nm}:{}]", l.value) });
            }
        }
    };
    for module in &file.modules {
        for p in &module.ports {
            if let Some(r) = &p.range {
                push(r);
            }
        }
        for item in &module.items {
            if let uvllm_verilog::ast::Item::Net(d) = item {
                if let Some(r) = &d.range {
                    push(r);
                }
            }
        }
    }
    out
}

fn apply(src: &str, c: &Candidate) -> String {
    let mut s = src.to_string();
    s.replace_range(c.span.start..c.span.end, &c.replacement);
    s
}

/// Runs the public tests; `Some(true)` = pass, `Some(false)` = fail,
/// `None` = does not build.
fn public_verdict(design: &Design, code: &str, backend: SimBackend) -> Option<bool> {
    match directed_stage_with(code, design, backend) {
        UvmOutcome::Ran(run) => Some(run.all_passed()),
        UvmOutcome::BuildFailed(_) => None,
    }
}

/// Shared search driver for the two template methods.
fn template_search(
    name: &'static str,
    design: &Design,
    src: &str,
    candidates: Vec<Candidate>,
    budget: usize,
    backend: SimBackend,
) -> MethodOutcome {
    let wall = Instant::now();
    let mut iterations = 0;
    // Unrepaired code that already passes: accept as-is (the escape
    // hatch the paper criticises).
    if public_verdict(design, src, backend) == Some(true) {
        return MethodOutcome {
            final_code: src.to_string(),
            claimed_success: true,
            iterations: 0,
            time: wall.elapsed(),
            usage: Usage::default(),
        };
    }
    for c in candidates.into_iter().take(budget) {
        iterations += 1;
        let candidate = apply(src, &c);
        if candidate == src {
            continue;
        }
        if public_verdict(design, &candidate, backend) == Some(true) {
            return MethodOutcome {
                final_code: candidate,
                claimed_success: true,
                iterations,
                time: wall.elapsed(),
                usage: Usage::default(),
            };
        }
        let _ = name;
    }
    MethodOutcome {
        final_code: src.to_string(),
        claimed_success: false,
        iterations,
        time: wall.elapsed(),
        usage: Usage::default(),
    }
}

/// Strider-style repair: signal-value-transition-guided defect repair.
/// Mismatching output signals (from the public run) select suspicious
/// statements via the DFG; templates are tried there first.
#[derive(Debug, Default)]
pub struct StriderRepair {
    /// Candidate budget per instance.
    pub budget: usize,
    backend: SimBackend,
}

impl StriderRepair {
    /// Default configuration (300-candidate budget).
    pub fn new() -> Self {
        StriderRepair { budget: 300, backend: SimBackend::from_env() }
    }

    /// Runs the method's internal acceptance tests on `backend`.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }
}

impl RepairMethod for StriderRepair {
    fn name(&self) -> &str {
        "Strider"
    }

    fn repair(&mut self, design: &Design, src: &str) -> MethodOutcome {
        // Functional-only method: syntax-broken inputs are returned
        // unrepaired (the paper evaluates Strider on functional errors).
        let Ok(file) = uvllm_verilog::parse(src) else {
            return MethodOutcome {
                final_code: src.to_string(),
                claimed_success: false,
                iterations: 0,
                time: std::time::Duration::ZERO,
                usage: Usage::default(),
            };
        };
        // Localize: which outputs mismatch on the public tests?
        let mismatch_signals: Vec<String> = match directed_stage_with(src, design, self.backend) {
            UvmOutcome::Ran(run) => {
                let mut s: Vec<String> = run.mismatches.iter().map(|m| m.signal.clone()).collect();
                s.sort();
                s.dedup();
                s
            }
            UvmOutcome::BuildFailed(_) => Vec::new(),
        };
        let regions: Option<Vec<Span>> = file.module(design.name).map(|module| {
            let dfg = Dfg::build(module);
            let mut spans: Vec<Span> = Vec::new();
            for sig in &mismatch_signals {
                let slice = dfg.static_slice(sig);
                spans.extend(slice.sites.iter().map(|i| dfg.sites[*i].span));
            }
            spans
        });
        let regions = regions.filter(|r| !r.is_empty());
        let mut candidates = template_candidates(src, regions.as_deref());
        // Fall back to a global search when localization found nothing.
        if candidates.is_empty() {
            candidates = template_candidates(src, None);
        }
        template_search("Strider", design, src, candidates, self.budget, self.backend)
    }
}

/// RTLrepair-style repair: a global template search over operator,
/// constant and declaration-width changes (its strength on "incorrect
/// bitwidth" in Fig. 6 comes from the width templates).
#[derive(Debug, Default)]
pub struct RtlRepair {
    /// Candidate budget per instance.
    pub budget: usize,
    backend: SimBackend,
}

impl RtlRepair {
    /// Default configuration (400-candidate budget).
    pub fn new() -> Self {
        RtlRepair { budget: 400, backend: SimBackend::from_env() }
    }

    /// Runs the method's internal acceptance tests on `backend`.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }
}

impl RepairMethod for RtlRepair {
    fn name(&self) -> &str {
        "RTLrepair"
    }

    fn repair(&mut self, design: &Design, src: &str) -> MethodOutcome {
        if uvllm_verilog::parse(src).is_err() {
            return MethodOutcome {
                final_code: src.to_string(),
                claimed_success: false,
                iterations: 0,
                time: std::time::Duration::ZERO,
                usage: Usage::default(),
            };
        }
        // Width templates first (the method's signature strength), then
        // the generic operator/constant space.
        let mut candidates = bitwidth_candidates(src);
        candidates.extend(template_candidates(src, None));
        template_search("RTLrepair", design, src, candidates, self.budget, self.backend)
    }
}

/// Maps suspicious line numbers to statement spans (exposed for tests).
pub fn line_spans(src: &str, lines: &[u32]) -> Vec<Span> {
    let map = LineMap::new(src);
    lines
        .iter()
        .filter_map(|l| {
            let start = map.line_start(*l)?;
            let end = map.line_start(l + 1).unwrap_or(src.len());
            Some(Span::new(start, end))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm::metrics::{fix_confirmed, hit_confirmed};
    use uvllm_designs::by_name;

    #[test]
    fn strider_fixes_a_value_error_it_can_see() {
        let d = by_name("counter_12").unwrap();
        // Wrap constant off by two — the directed vectors do not reach
        // the wrap, so the bug is invisible to Strider's own tests: it
        // accepts the code unrepaired (claimed success, FR fail).
        let buggy = d.source.replace("== 4'd11", "== 4'd13");
        let mut strider = StriderRepair::new();
        let out = strider.repair(d, &buggy);
        assert!(out.claimed_success);
        assert!(hit_confirmed(d, &out.final_code));
        assert!(!fix_confirmed(d, &out.final_code), "overfit accepted");
    }

    #[test]
    fn strider_repairs_visible_operator_bug() {
        let d = by_name("alu_8bit").unwrap();
        // `a + b` -> `a - b` in the op-0 arm; the directed vectors DO
        // exercise op 0, so Strider sees the failure and its operator
        // template genuinely repairs it.
        let buggy = d.source.replace("3'd0: y = a + b;", "3'd0: y = a - b;");
        assert_ne!(buggy, d.source);
        let mut strider = StriderRepair::new();
        let out = strider.repair(d, &buggy);
        assert!(out.claimed_success, "template should find the fix");
        assert!(hit_confirmed(d, &out.final_code));
        assert!(fix_confirmed(d, &out.final_code), "this one is a true fix");
    }

    #[test]
    fn rtlrepair_width_template_repairs_shrunk_range() {
        let d = by_name("adder_8bit").unwrap();
        // Narrow the sum port: visible even on the weak vectors?
        // 10+20=30 fits in 7 bits, but 100+27=127 fits too — use the
        // mutated *internal* width of sum [6:0]: 127 still fits! The
        // cin vector gives 7+8+1=16. All weak vectors fit 7 bits, so the
        // weak tests cannot see it... unless the X-padding differs: a
        // [6:0] sum leaves bit 7 undriven in an 8-bit read -> mismatch.
        let buggy = d.source.replace("output [7:0] sum", "output [6:0] sum");
        assert_ne!(buggy, d.source);
        let mut rtl = RtlRepair::new();
        let out = rtl.repair(d, &buggy);
        if out.claimed_success {
            assert!(hit_confirmed(d, &out.final_code));
        }
    }

    #[test]
    fn methods_give_up_on_syntax_errors() {
        let d = by_name("mux4").unwrap();
        let broken = d.source.replace(';', "");
        let mut strider = StriderRepair::new();
        assert!(!strider.repair(d, &broken).claimed_success);
        let mut rtl = RtlRepair::new();
        assert!(!rtl.repair(d, &broken).claimed_success);
    }

    #[test]
    fn literal_shift_forms() {
        assert_eq!(shift_literal("4'd11", 1).as_deref(), Some("4'd12"));
        assert_eq!(shift_literal("4'd11", -1).as_deref(), Some("4'd10"));
        assert_eq!(shift_literal("8'hff", 1).as_deref(), Some("8'h100"));
        assert_eq!(shift_literal("8'd0", -1), None);
        assert_eq!(shift_literal("5", 1).as_deref(), Some("6"));
    }
}
