//! LLM-driven baselines: MEIC-style iterative repair and direct
//! GPT-4-turbo prompting.
//!
//! Both use the *same* underlying model as UVLLM (the harness passes the
//! same calibrated oracle) — what differs is the harness around it:
//! MEIC iterates against a finite directed testbench with raw logs and
//! whole-code regeneration; GPT-direct samples repairs from spec + code
//! alone. The paper's comparison is exactly about this harness gap.

use crate::method::{MethodOutcome, RepairMethod};
use std::time::{Duration, Instant};
use uvllm::stages::{directed_stage_with, UvmOutcome};
use uvllm_designs::Design;
use uvllm_llm::{AgentRole, CompleteResponse, ErrorInfo, LlmService, OutputMode, RepairPrompt};
use uvllm_sim::SimBackend;

/// MEIC-style baseline: iterate LLM whole-code repairs against the
/// finite public testbench, feeding raw logs back, until the tests pass
/// or the iteration budget is spent.
pub struct MeicRepair<'m> {
    llm: &'m mut dyn LlmService,
    /// Iteration budget (MEIC uses a dual-agent loop of ~10 rounds).
    pub max_iterations: usize,
    backend: SimBackend,
}

impl<'m> MeicRepair<'m> {
    /// Wraps an LLM service handle (see [`uvllm_llm::DirectService`]
    /// for adapting a bare model).
    pub fn new(llm: &'m mut dyn LlmService) -> Self {
        MeicRepair { llm, max_iterations: 10, backend: SimBackend::from_env() }
    }

    /// Runs the method's internal acceptance tests on `backend`.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }
}

impl RepairMethod for MeicRepair<'_> {
    fn name(&self) -> &str {
        "MEIC"
    }

    fn repair(&mut self, design: &Design, src: &str) -> MethodOutcome {
        let mut code = src.to_string();
        let mut time = Duration::ZERO;
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            let wall = Instant::now();
            // Run the method's own (weak) acceptance test.
            let log = match directed_stage_with(&code, design, self.backend) {
                UvmOutcome::Ran(run) => {
                    if run.all_passed() {
                        // NOTE: if the weak tests never trip over the
                        // bug, MEIC exits here *without any repair* —
                        // the escape the paper measured at ~10%.
                        time += wall.elapsed();
                        return MethodOutcome {
                            final_code: code,
                            claimed_success: true,
                            iterations,
                            time,
                            usage: self.llm.usage(),
                        };
                    }
                    run.log.render()
                }
                UvmOutcome::BuildFailed(msg) => {
                    // Compiler output, minimally processed.
                    let lint = uvllm_lint::lint(&code);
                    if lint.diagnostics.is_empty() {
                        format!("%Error: dut.v:1:1: {msg}")
                    } else {
                        lint.render(&code)
                    }
                }
            };
            time += wall.elapsed();
            let prompt = RepairPrompt::new(AgentRole::WholeCodeReviewer, design.spec, &code)
                .with_error_info(ErrorInfo::RawLog(tail(&log, 15)))
                .with_output_mode(OutputMode::Complete);
            let ticket = self.llm.submit(&prompt);
            let Ok(completion) = self.llm.await_completion(ticket) else { break };
            // MEIC's dual-agent design runs a second, scoring model pass
            // over every candidate (comparable prompt, shorter output);
            // account its latency without disturbing the repair draw.
            time += completion.latency + completion.latency.mul_f32(0.8);
            if let Ok(resp) = CompleteResponse::parse(&completion.content) {
                if !resp.code.trim().is_empty() {
                    code = resp.code;
                }
            }
        }
        // Budget exhausted: report the last candidate, claimed state
        // from a final check.
        let wall = Instant::now();
        let claimed = matches!(
            directed_stage_with(&code, design, self.backend),
            UvmOutcome::Ran(r) if r.all_passed()
        );
        time += wall.elapsed();
        MethodOutcome {
            final_code: code,
            claimed_success: claimed,
            iterations,
            time,
            usage: self.llm.usage(),
        }
    }
}

/// Plain GPT-4-turbo baseline: up to `samples` independent whole-code
/// repairs from specification + code only (pass@k style); the first
/// candidate that passes the public tests is kept.
pub struct GptDirect<'m> {
    llm: &'m mut dyn LlmService,
    /// Samples per instance (the paper asks the model 5 times).
    pub samples: usize,
    backend: SimBackend,
}

impl<'m> GptDirect<'m> {
    /// Wraps an LLM service handle (see [`uvllm_llm::DirectService`]
    /// for adapting a bare model).
    pub fn new(llm: &'m mut dyn LlmService) -> Self {
        GptDirect { llm, samples: 5, backend: SimBackend::from_env() }
    }

    /// Runs the method's internal acceptance tests on `backend`.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }
}

impl RepairMethod for GptDirect<'_> {
    fn name(&self) -> &str {
        "GPT-4-turbo"
    }

    fn repair(&mut self, design: &Design, src: &str) -> MethodOutcome {
        let mut time = Duration::ZERO;
        let mut best = src.to_string();
        let mut iterations = 0;
        for _ in 0..self.samples {
            iterations += 1;
            let prompt = RepairPrompt::new(AgentRole::WholeCodeReviewer, design.spec, src)
                .with_output_mode(OutputMode::Complete);
            let ticket = self.llm.submit(&prompt);
            let Ok(completion) = self.llm.await_completion(ticket) else { break };
            time += completion.latency;
            let Ok(resp) = CompleteResponse::parse(&completion.content) else { continue };
            if resp.code.trim().is_empty() {
                continue;
            }
            let wall = Instant::now();
            let passed = matches!(
                directed_stage_with(&resp.code, design, self.backend),
                UvmOutcome::Ran(r) if r.all_passed()
            );
            time += wall.elapsed();
            best = resp.code;
            if passed {
                return MethodOutcome {
                    final_code: best,
                    claimed_success: true,
                    iterations,
                    time,
                    usage: self.llm.usage(),
                };
            }
        }
        MethodOutcome {
            final_code: best,
            claimed_success: false,
            iterations,
            time,
            usage: self.llm.usage(),
        }
    }
}

fn tail(text: &str, n: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_designs::by_name;
    use uvllm_errgen::{mutate, ErrorKind};
    use uvllm_llm::{DirectService, ModelProfile, OracleLlm};

    #[test]
    fn meic_escapes_when_weak_tests_miss_the_bug() {
        // Carry-chain bug invisible to the weak vectors: MEIC "succeeds"
        // without calling the LLM at all.
        let d = by_name("adder_8bit").unwrap();
        let buggy = d.source.replace(
            "assign {cout, sum} = a + b + {7'd0, cin};",
            "assign sum = a + b + {7'd0, cin};\nassign cout = 1'b0;",
        );
        let mut oracle = DirectService::new(uvllm_llm::ScriptedLlm::new([]));
        let mut meic = MeicRepair::new(&mut oracle);
        let out = meic.repair(d, &buggy);
        assert!(out.claimed_success);
        assert_eq!(out.usage.calls, 0, "no repair was ever attempted");
        assert_eq!(out.final_code, buggy);
        // Externally: HR hits, FR does not — the paper's headline gap.
        assert!(uvllm::metrics::hit_confirmed(d, &out.final_code));
        assert!(!uvllm::metrics::fix_confirmed(d, &out.final_code));
    }

    #[test]
    fn meic_repairs_visible_bugs_sometimes() {
        let d = by_name("alu_8bit").unwrap();
        let mut repaired = 0;
        for seed in 0..8 {
            let Ok(m) = mutate(d.source, ErrorKind::OperatorMisuse, seed) else { continue };
            if !uvllm::metrics::mutant_is_detectable(d, &m.mutated_src) {
                continue;
            }
            let mut oracle = DirectService::new(OracleLlm::new(
                m.ground_truth.clone(),
                d.source,
                ModelProfile::Gpt4TurboWeakHarness,
                seed,
            ));
            let mut meic = MeicRepair::new(&mut oracle);
            let out = meic.repair(d, &m.mutated_src);
            if out.claimed_success && uvllm::metrics::fix_confirmed(d, &out.final_code) {
                repaired += 1;
            }
        }
        assert!(repaired >= 1, "MEIC should repair at least one instance");
    }

    #[test]
    fn gpt_direct_tracks_usage_and_samples() {
        let d = by_name("alu_8bit").unwrap();
        let m = mutate(d.source, ErrorKind::OperatorMisuse, 3).unwrap();
        let mut oracle = DirectService::new(OracleLlm::new(
            m.ground_truth.clone(),
            d.source,
            ModelProfile::Gpt4Turbo,
            3,
        ));
        let mut gpt = GptDirect::new(&mut oracle);
        let out = gpt.repair(d, &m.mutated_src);
        assert!(out.iterations >= 1 && out.iterations <= 5);
        assert!(out.usage.calls >= 1);
        assert!(out.time > Duration::ZERO);
    }
}
