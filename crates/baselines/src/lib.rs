//! # uvllm-baselines
//!
//! The comparison methods of the paper's evaluation (§IV):
//!
//! * [`MeicRepair`] — MEIC-style iterative LLM repair against a finite
//!   directed testbench with raw logs and whole-code regeneration.
//! * [`GptDirect`] — plain GPT-4-turbo prompting (spec + code, 5
//!   samples).
//! * [`StriderRepair`] — signal-value-transition-guided template repair
//!   (no LLM), localized via the DFG.
//! * [`RtlRepair`] — global template search over operator, constant and
//!   declaration-width changes (no LLM).
//!
//! All four accept a candidate as soon as *their own* testbench passes;
//! the harness then measures Hit Rate (public tests) and Fix Rate
//! (extended differential validation) externally — reproducing the
//! HR-vs-FR gaps of Figures 5 and 6.

pub mod llm_methods;
pub mod method;
pub mod template;

pub use llm_methods::{GptDirect, MeicRepair};
pub use method::{MethodOutcome, RepairMethod};
pub use template::{RtlRepair, StriderRepair};
