//! Integration: time-aware dynamic slicing driven by *real* simulator
//! waveforms (the exact data path of Algorithm 2 in production).

use std::collections::HashMap;
use uvllm_dfg::{suspicious_lines, Dfg, SliceOptions};
use uvllm_sim::{elaborate, Logic, Simulator, Waveform};

const ALU: &str = "module alu(input [7:0] a, input [7:0] b, input [1:0] op,\n\
                   output reg [7:0] y);\n\
                   always @(*) begin\n\
                   case (op)\n\
                   2'd0: y = a + b;\n\
                   2'd1: y = a - b;\n\
                   2'd2: y = a & b;\n\
                   default: y = a | b;\n\
                   endcase\n\
                   end\nendmodule\n";

fn run_and_capture(op: u128) -> (Simulator, Waveform) {
    let file = uvllm_verilog::parse(ALU).unwrap();
    let design = elaborate(&file, "alu").unwrap();
    let mut sim = Simulator::new(design).unwrap();
    let mut wave = Waveform::new(&sim);
    sim.poke_by_name("a", Logic::from_u128(8, 0x0F)).unwrap();
    sim.poke_by_name("b", Logic::from_u128(8, 0x01)).unwrap();
    sim.poke_by_name("op", Logic::from_u128(2, op)).unwrap();
    sim.set_time(10);
    wave.capture(&sim);
    (sim, wave)
}

#[test]
fn dynamic_slice_follows_the_executed_case_arm() {
    let file = uvllm_verilog::parse(ALU).unwrap();
    let module = file.module("alu").unwrap().clone();
    let dfg = Dfg::build(&module);

    // op = 1: only the subtraction arm executed.
    let (_, wave) = run_and_capture(1);
    let snapshot = wave.snapshot_at(10);
    let slice = dfg.dynamic_slice("y", &snapshot, &SliceOptions::default());
    assert_eq!(slice.sites.len(), 1, "exactly the executed arm");
    assert!(dfg.sites[slice.sites[0]].reads.contains(&"b".to_string()));
    let lines = slice.lines(&dfg, ALU);
    assert_eq!(lines.len(), 1);
    let text = ALU.lines().nth(lines[0] as usize - 1).unwrap();
    assert!(text.contains("a - b"), "suspicious line should be the sub arm: {text}");

    // op = 3: the default arm.
    let (_, wave) = run_and_capture(3);
    let snapshot = wave.snapshot_at(10);
    let slice = dfg.dynamic_slice("y", &snapshot, &SliceOptions::default());
    assert_eq!(slice.sites.len(), 1);
    let lines = slice.lines(&dfg, ALU);
    let text = ALU.lines().nth(lines[0] as usize - 1).unwrap();
    assert!(text.contains("a | b"), "default arm expected: {text}");
}

#[test]
fn static_slice_covers_all_arms() {
    let file = uvllm_verilog::parse(ALU).unwrap();
    let module = file.module("alu").unwrap().clone();
    let dfg = Dfg::build(&module);
    let slice = dfg.static_slice("y");
    assert_eq!(slice.sites.len(), 4, "all four case arms write y");
}

#[test]
fn suspicious_lines_shrink_with_dynamic_information() {
    let file = uvllm_verilog::parse(ALU).unwrap();
    let module = file.module("alu").unwrap().clone();

    // Without a snapshot: the whole cone.
    let static_lines = suspicious_lines(&module, ALU, &["y".to_string()], &HashMap::new());
    // With the op=2 snapshot: only the AND arm.
    let (_, wave) = run_and_capture(2);
    let snapshot = wave.snapshot_at(10);
    let dynamic_lines = suspicious_lines(&module, ALU, &["y".to_string()], &snapshot);
    assert!(
        dynamic_lines.len() < static_lines.len(),
        "dynamic ({}) must be denser than static ({}) information",
        dynamic_lines.len(),
        static_lines.len()
    );
    assert!(dynamic_lines.iter().any(|(_, t)| t.contains("a & b")));
}

#[test]
fn slicing_through_sequential_state() {
    // The mismatch is on a register output; the slice must walk back
    // through the register into the combinational next-state logic.
    let src = "module acc(input clk, input rst_n, input en, input [7:0] d,\n\
               output reg [7:0] q);\n\
               wire [7:0] next;\n\
               assign next = q + d;\n\
               always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 8'd0;\n\
               else if (en) q <= next;\n\
               end\nendmodule\n";
    let file = uvllm_verilog::parse(src).unwrap();
    let module = file.module("acc").unwrap().clone();
    let dfg = Dfg::build(&module);
    let mut snapshot = HashMap::new();
    snapshot.insert("rst_n".to_string(), Logic::bit(true));
    snapshot.insert("en".to_string(), Logic::bit(true));
    let slice = dfg.dynamic_slice("q", &snapshot, &SliceOptions::default());
    // Reaches both the enabled register write and the adder, not the
    // reset branch.
    let lines = slice.lines(&dfg, src);
    let texts: Vec<&str> =
        lines.iter().map(|l| src.lines().nth(*l as usize - 1).unwrap()).collect();
    assert!(texts.iter().any(|t| t.contains("q <= next")), "{texts:?}");
    assert!(texts.iter().any(|t| t.contains("next = q + d")), "{texts:?}");
    assert!(!texts.iter().any(|t| t.contains("8'd0")), "reset branch pruned: {texts:?}");
}
