//! DFG construction and static / time-aware dynamic slicing.

use std::collections::{HashMap, HashSet, VecDeque};
use uvllm_sim::logic::{Logic, Tri};
use uvllm_verilog::ast::*;
use uvllm_verilog::span::{LineMap, Span};

/// A guard under which an assignment site executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// `if (cond)` — `taken_then` records which branch the site is in.
    If { cond: Expr, taken_then: bool },
    /// A `case` arm: the site executes when `sel` matches one of
    /// `labels` (or none of `all_labels` for the default arm).
    Case { sel: Expr, labels: Vec<Expr>, all_labels: Vec<Expr>, is_default: bool },
}

/// One assignment site in the data-flow graph.
#[derive(Debug, Clone)]
pub struct Site {
    /// Signals written (base names).
    pub targets: Vec<String>,
    /// Signals read by the right-hand side and by index expressions.
    pub reads: Vec<String>,
    /// Guard stack (outermost first).
    pub guards: Vec<Guard>,
    /// Span of the assignment statement.
    pub span: Span,
    /// True when this site is a continuous assignment.
    pub continuous: bool,
}

impl Site {
    /// All signals read by this site including guard conditions — the
    /// edges followed during slicing.
    pub fn influence_reads(&self) -> Vec<String> {
        let mut out = self.reads.clone();
        for g in &self.guards {
            match g {
                Guard::If { cond, .. } => out.extend(cond.idents().iter().map(|s| s.to_string())),
                Guard::Case { sel, .. } => out.extend(sel.idents().iter().map(|s| s.to_string())),
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Options controlling slice construction.
#[derive(Debug, Clone, Copy)]
pub struct SliceOptions {
    /// Maximum backward traversal depth.
    pub max_depth: usize,
    /// Include sites whose guards evaluate to unknown (X) — conservative.
    pub include_unknown: bool,
}

impl Default for SliceOptions {
    fn default() -> Self {
        SliceOptions { max_depth: 8, include_unknown: true }
    }
}

/// The result of a slice: contributing sites and the signal frontier.
#[derive(Debug, Clone, Default)]
pub struct Slice {
    /// Indices into [`Dfg::sites`] in discovery (breadth-first) order.
    pub sites: Vec<usize>,
    /// Signals visited during traversal.
    pub signals: Vec<String>,
}

impl Slice {
    /// Source lines (1-based, deduplicated, ascending) of the slice.
    pub fn lines(&self, dfg: &Dfg, src: &str) -> Vec<u32> {
        let map = LineMap::new(src);
        let mut lines: Vec<u32> =
            self.sites.iter().map(|i| map.line(dfg.sites[*i].span.start)).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

/// A per-module data-flow graph over assignment sites.
#[derive(Debug, Clone)]
pub struct Dfg {
    /// Every assignment site in the module.
    pub sites: Vec<Site>,
    by_target: HashMap<String, Vec<usize>>,
}

impl Dfg {
    /// Builds the DFG for `module`.
    pub fn build(module: &Module) -> Self {
        let mut sites = Vec::new();
        for item in &module.items {
            match item {
                Item::Assign(a) => {
                    sites.push(site_from_assign(&a.lhs, &a.rhs, a.span, &[], true));
                }
                Item::Always(a) => {
                    let mut guards = Vec::new();
                    collect_sites(&a.body, &mut guards, &mut sites);
                }
                Item::Initial(i) => {
                    let mut guards = Vec::new();
                    collect_sites(&i.body, &mut guards, &mut sites);
                }
                _ => {}
            }
        }
        let mut by_target: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, s) in sites.iter().enumerate() {
            for t in &s.targets {
                by_target.entry(t.clone()).or_default().push(i);
            }
        }
        Dfg { sites, by_target }
    }

    /// Sites that write `signal`.
    pub fn writers(&self, signal: &str) -> &[usize] {
        self.by_target.get(signal).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Static cone of influence of `signal` (unbounded depth).
    pub fn static_slice(&self, signal: &str) -> Slice {
        self.slice(signal, None, &SliceOptions { max_depth: usize::MAX, include_unknown: true })
    }

    /// Time-aware dynamic slice: only sites whose guard conditions are
    /// satisfied (or unknown) under `snapshot` are followed.
    pub fn dynamic_slice(
        &self,
        signal: &str,
        snapshot: &HashMap<String, Logic>,
        options: &SliceOptions,
    ) -> Slice {
        self.slice(signal, Some(snapshot), options)
    }

    fn slice(
        &self,
        signal: &str,
        snapshot: Option<&HashMap<String, Logic>>,
        options: &SliceOptions,
    ) -> Slice {
        let mut out = Slice::default();
        let mut seen_sites = HashSet::new();
        let mut seen_signals = HashSet::new();
        let mut queue: VecDeque<(String, usize)> = VecDeque::new();
        queue.push_back((signal.to_string(), 0));
        seen_signals.insert(signal.to_string());
        while let Some((sig, depth)) = queue.pop_front() {
            out.signals.push(sig.clone());
            if depth >= options.max_depth {
                continue;
            }
            for &site_idx in self.writers(&sig) {
                let site = &self.sites[site_idx];
                if let Some(snap) = snapshot {
                    if !guards_active(&site.guards, snap, options.include_unknown) {
                        continue;
                    }
                }
                if seen_sites.insert(site_idx) {
                    out.sites.push(site_idx);
                }
                for read in site.influence_reads() {
                    if seen_signals.insert(read.clone()) {
                        queue.push_back((read, depth + 1));
                    }
                }
            }
        }
        out
    }
}

fn site_from_assign(
    lhs: &LValue,
    rhs: &Expr,
    span: Span,
    guards: &[Guard],
    continuous: bool,
) -> Site {
    let mut reads: Vec<String> = rhs.idents().iter().map(|s| s.to_string()).collect();
    collect_lvalue_index_reads(lhs, &mut reads);
    reads.sort();
    reads.dedup();
    Site {
        targets: lhs.base_names().iter().map(|s| s.to_string()).collect(),
        reads,
        guards: guards.to_vec(),
        span,
        continuous,
    }
}

fn collect_lvalue_index_reads(lv: &LValue, out: &mut Vec<String>) {
    match lv {
        LValue::Ident(_, _) => {}
        LValue::Index(_, i, _) => out.extend(i.idents().iter().map(|s| s.to_string())),
        LValue::Part(_, m, l, _) => {
            out.extend(m.idents().iter().map(|s| s.to_string()));
            out.extend(l.idents().iter().map(|s| s.to_string()));
        }
        LValue::Concat(parts, _) => {
            for p in parts {
                collect_lvalue_index_reads(p, out);
            }
        }
    }
}

fn collect_sites(stmt: &Stmt, guards: &mut Vec<Guard>, sites: &mut Vec<Site>) {
    match stmt {
        Stmt::Block(b) => {
            for s in &b.stmts {
                collect_sites(s, guards, sites);
            }
        }
        Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
            sites.push(site_from_assign(&a.lhs, &a.rhs, a.span, guards, false));
        }
        Stmt::If(i) => {
            guards.push(Guard::If { cond: i.cond.clone(), taken_then: true });
            collect_sites(&i.then_branch, guards, sites);
            guards.pop();
            if let Some(e) = &i.else_branch {
                guards.push(Guard::If { cond: i.cond.clone(), taken_then: false });
                collect_sites(e, guards, sites);
                guards.pop();
            }
        }
        Stmt::Case(c) => {
            let all_labels: Vec<Expr> =
                c.arms.iter().flat_map(|a| a.labels.iter().cloned()).collect();
            for arm in &c.arms {
                guards.push(Guard::Case {
                    sel: c.expr.clone(),
                    labels: arm.labels.clone(),
                    all_labels: all_labels.clone(),
                    is_default: false,
                });
                collect_sites(&arm.body, guards, sites);
                guards.pop();
            }
            if let Some(d) = &c.default {
                guards.push(Guard::Case {
                    sel: c.expr.clone(),
                    labels: Vec::new(),
                    all_labels,
                    is_default: true,
                });
                collect_sites(d, guards, sites);
                guards.pop();
            }
        }
        Stmt::For(f) => {
            // Loop guards are not evaluated dynamically; the body is
            // included unconditionally (conservative).
            collect_sites(&f.body, guards, sites);
        }
        Stmt::SysCall(_) | Stmt::Null(_) => {}
    }
}

/// Checks whether every guard on a site is compatible with `snapshot`.
fn guards_active(
    guards: &[Guard],
    snapshot: &HashMap<String, Logic>,
    include_unknown: bool,
) -> bool {
    for g in guards {
        let verdict = match g {
            Guard::If { cond, taken_then } => match eval_ast(cond, snapshot).truthiness() {
                Tri::True => *taken_then,
                Tri::False => !*taken_then,
                Tri::Unknown => include_unknown,
            },
            Guard::Case { sel, labels, all_labels, is_default } => {
                let sv = eval_ast(sel, snapshot);
                if !sv.is_fully_known() {
                    include_unknown
                } else if *is_default {
                    // Default fires when no label matches.
                    !all_labels.iter().any(|l| label_matches(&sv, l, snapshot))
                } else {
                    labels.iter().any(|l| label_matches(&sv, l, snapshot))
                }
            }
        };
        if !verdict {
            return false;
        }
    }
    true
}

fn label_matches(sel: &Logic, label: &Expr, snapshot: &HashMap<String, Logic>) -> bool {
    let lv = eval_ast(label, snapshot);
    match (sel.to_u128(), lv.to_u128()) {
        (Some(a), Some(b)) => a == b,
        _ => sel.wildcard_eq(&lv, false),
    }
}

/// Best-effort AST-level expression evaluation against a named snapshot.
///
/// Used only for guard truthiness during dynamic slicing; widths are
/// approximated (32-bit context), unknown names evaluate to X.
pub fn eval_ast(e: &Expr, env: &HashMap<String, Logic>) -> Logic {
    match e {
        Expr::Number(n) => Logic::from_planes(n.width.unwrap_or(32), n.value, n.xz),
        Expr::Ident(name) => env.get(name).copied().unwrap_or_else(|| Logic::xs(32)),
        Expr::Unary(op, a) => {
            let v = eval_ast(a, env);
            let w = v.width();
            match op {
                UnaryOp::LogNot => v.log_not(),
                UnaryOp::BitNot => v.bitnot(w),
                UnaryOp::Neg => v.neg(w),
                UnaryOp::Plus => v,
                UnaryOp::RedAnd => v.red_and(),
                UnaryOp::RedOr => v.red_or(),
                UnaryOp::RedXor => v.red_xor(),
                UnaryOp::RedNand => v.red_and().bitnot(1),
                UnaryOp::RedNor => v.red_or().bitnot(1),
                UnaryOp::RedXnor => v.red_xor().bitnot(1),
            }
        }
        Expr::Binary(op, a, b) => {
            let x = eval_ast(a, env);
            let y = eval_ast(b, env);
            let w = x.width().max(y.width());
            match op {
                BinaryOp::Add => x.add(&y, w),
                BinaryOp::Sub => x.sub(&y, w),
                BinaryOp::Mul => x.mul(&y, w),
                BinaryOp::Div => x.div(&y, w),
                BinaryOp::Mod => x.rem(&y, w),
                BinaryOp::Pow => x.pow(&y, w),
                BinaryOp::Shl => x.shl(&y, w),
                BinaryOp::Shr => x.shr(&y, w),
                BinaryOp::AShr => x.ashr(&y, w),
                BinaryOp::Lt => x.cmp_lt(&y),
                BinaryOp::Le => y.cmp_lt(&x).log_not(),
                BinaryOp::Gt => y.cmp_lt(&x),
                BinaryOp::Ge => x.cmp_lt(&y).log_not(),
                BinaryOp::Eq => x.log_eq(&y),
                BinaryOp::Ne => x.log_ne(&y),
                BinaryOp::CaseEq => x.case_eq(&y),
                BinaryOp::CaseNe => x.case_eq(&y).bitnot(1),
                BinaryOp::LogAnd => x.log_and(&y),
                BinaryOp::LogOr => x.log_or(&y),
                BinaryOp::BitAnd => x.bitand(&y, w),
                BinaryOp::BitOr => x.bitor(&y, w),
                BinaryOp::BitXor => x.bitxor(&y, w),
                BinaryOp::BitXnor => x.bitxnor(&y, w),
            }
        }
        Expr::Ternary(c, t, f) => match eval_ast(c, env).truthiness() {
            Tri::True => eval_ast(t, env),
            Tri::False => eval_ast(f, env),
            Tri::Unknown => {
                let tv = eval_ast(t, env);
                let fv = eval_ast(f, env);
                let w = tv.width().max(fv.width());
                tv.merge(&fv, w)
            }
        },
        Expr::Index(base, index) => {
            let b = eval_ast(base, env);
            match eval_ast(index, env).to_u128() {
                Some(i) if i < 128 => b.get_bit(i as u32),
                _ => Logic::xs(1),
            }
        }
        Expr::Part(base, msb, lsb) => {
            let b = eval_ast(base, env);
            match (eval_ast(msb, env).to_u128(), eval_ast(lsb, env).to_u128()) {
                (Some(m), Some(l)) if m >= l && m < 128 => {
                    b.get_slice(l as u32, (m - l + 1) as u32)
                }
                _ => Logic::xs(1),
            }
        }
        Expr::Concat(items) => {
            let mut acc: Option<Logic> = None;
            for item in items {
                let v = eval_ast(item, env);
                acc = Some(match acc {
                    None => v,
                    Some(hi) => Logic::concat(hi, v),
                });
            }
            acc.unwrap_or_else(|| Logic::zeros(1))
        }
        Expr::Repeat(count, items) => {
            let n = eval_ast(count, env).to_u128().unwrap_or(0).min(128);
            let mut acc: Option<Logic> = None;
            for _ in 0..n {
                for item in items {
                    let v = eval_ast(item, env);
                    acc = Some(match acc {
                        None => v,
                        Some(hi) => Logic::concat(hi, v),
                    });
                }
            }
            acc.unwrap_or_else(|| Logic::zeros(1))
        }
    }
}

/// Convenience used by the repair pipeline: suspicious `(line, text)`
/// pairs for a set of mismatch signals under a waveform snapshot.
pub fn suspicious_lines(
    module: &Module,
    src: &str,
    mismatch_signals: &[String],
    snapshot: &HashMap<String, Logic>,
) -> Vec<(u32, String)> {
    let dfg = Dfg::build(module);
    let options = SliceOptions::default();
    let mut lines: Vec<u32> = Vec::new();
    for sig in mismatch_signals {
        let slice = if snapshot.is_empty() {
            dfg.static_slice(sig)
        } else {
            dfg.dynamic_slice(sig, snapshot, &options)
        };
        lines.extend(slice.lines(&dfg, src));
    }
    lines.sort_unstable();
    lines.dedup();
    let src_lines: Vec<&str> = src.lines().collect();
    lines
        .into_iter()
        .filter_map(|l| src_lines.get((l - 1) as usize).map(|t| (l, t.trim().to_string())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_verilog::parse;

    fn module_of(src: &str) -> Module {
        parse(src).unwrap().top().unwrap().clone()
    }

    #[test]
    fn builds_sites_with_guards() {
        let m = module_of(
            "module m(input s, input a, input b, output reg y);\n\
             always @(*) begin\nif (s) y = a; else y = b;\nend\nendmodule\n",
        );
        let dfg = Dfg::build(&m);
        assert_eq!(dfg.sites.len(), 2);
        assert_eq!(dfg.writers("y").len(), 2);
        assert!(matches!(dfg.sites[0].guards[0], Guard::If { taken_then: true, .. }));
        assert!(matches!(dfg.sites[1].guards[0], Guard::If { taken_then: false, .. }));
    }

    #[test]
    fn static_slice_follows_chain() {
        let m = module_of(
            "module m(input a, output y);\nwire t1, t2;\n\
             assign t1 = ~a;\nassign t2 = t1;\nassign y = t2;\nendmodule\n",
        );
        let dfg = Dfg::build(&m);
        let slice = dfg.static_slice("y");
        assert_eq!(slice.sites.len(), 3);
        assert!(slice.signals.contains(&"a".to_string()));
    }

    #[test]
    fn dynamic_slice_prunes_untaken_branch() {
        let src = "module m(input s, input a, input b, output reg y);\n\
                   always @(*) begin\nif (s) y = a; else y = b;\nend\nendmodule\n";
        let m = module_of(src);
        let dfg = Dfg::build(&m);
        let mut snap = HashMap::new();
        snap.insert("s".to_string(), Logic::bit(true));
        let slice = dfg.dynamic_slice("y", &snap, &SliceOptions::default());
        assert_eq!(slice.sites.len(), 1);
        assert!(dfg.sites[slice.sites[0]].reads.contains(&"a".to_string()));
        // Unknown condition keeps both (conservative).
        let slice2 = dfg.dynamic_slice("y", &HashMap::new(), &SliceOptions::default());
        assert_eq!(slice2.sites.len(), 2);
    }

    #[test]
    fn dynamic_slice_through_case() {
        let src = "module m(input [1:0] s, input a, input b, output reg y);\n\
                   always @(*) begin\ncase (s)\n2'b00: y = a;\n2'b01: y = b;\n\
                   default: y = 1'b0;\nendcase\nend\nendmodule\n";
        let m = module_of(src);
        let dfg = Dfg::build(&m);
        let mut snap = HashMap::new();
        snap.insert("s".to_string(), Logic::from_u128(2, 1));
        let slice = dfg.dynamic_slice("y", &snap, &SliceOptions::default());
        assert_eq!(slice.sites.len(), 1);
        assert!(dfg.sites[slice.sites[0]].reads.contains(&"b".to_string()));
        // Selector 3 matches no arm -> default.
        snap.insert("s".to_string(), Logic::from_u128(2, 3));
        let slice = dfg.dynamic_slice("y", &snap, &SliceOptions::default());
        assert_eq!(slice.sites.len(), 1);
        assert!(matches!(
            dfg.sites[slice.sites[0]].guards[0],
            Guard::Case { is_default: true, .. }
        ));
    }

    #[test]
    fn slice_lines_point_at_source() {
        let src =
            "module m(input a, output y);\nwire t;\nassign t = ~a;\nassign y = t;\nendmodule\n";
        let m = module_of(src);
        let dfg = Dfg::build(&m);
        let slice = dfg.static_slice("y");
        let lines = slice.lines(&dfg, src);
        assert_eq!(lines, vec![3, 4]);
    }

    #[test]
    fn suspicious_lines_helper() {
        let src = "module m(input s, input a, input b, output reg y);\n\
                   always @(*) begin\nif (s) y = a;\nelse y = b;\nend\nendmodule\n";
        let m = module_of(src);
        let mut snap = HashMap::new();
        snap.insert("s".to_string(), Logic::bit(false));
        let lines = suspicious_lines(&m, src, &["y".to_string()], &snap);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].1.contains("else"), "got {:?}", lines);
    }

    #[test]
    fn slice_depth_limit_respected() {
        let mut src = String::from("module m(input a, output y);\n");
        let n = 20;
        src.push_str("wire ");
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        src.push_str(&names.join(", "));
        src.push_str(";\n");
        src.push_str("assign t0 = a;\n");
        for i in 1..n {
            src.push_str(&format!("assign t{} = t{};\n", i, i - 1));
        }
        src.push_str(&format!("assign y = t{};\nendmodule\n", n - 1));
        let m = module_of(&src);
        let dfg = Dfg::build(&m);
        let slice = dfg.dynamic_slice(
            "y",
            &HashMap::new(),
            &SliceOptions { max_depth: 3, include_unknown: true },
        );
        assert!(slice.sites.len() <= 4);
        let full = dfg.static_slice("y");
        assert_eq!(full.sites.len(), (n + 1) as usize);
    }

    #[test]
    fn eval_ast_basics() {
        let mut env = HashMap::new();
        env.insert("a".to_string(), Logic::from_u128(8, 5));
        env.insert("b".to_string(), Logic::from_u128(8, 3));
        let e = uvllm_verilog::parse_expr("a + b * 2").unwrap();
        assert_eq!(eval_ast(&e, &env).to_u128(), Some(11));
        let cmp = uvllm_verilog::parse_expr("a >= 5").unwrap();
        assert_eq!(eval_ast(&cmp, &env).truthiness(), Tri::True);
        let unk = uvllm_verilog::parse_expr("missing == 1").unwrap();
        assert_eq!(eval_ast(&unk, &env).truthiness(), Tri::Unknown);
    }
}
