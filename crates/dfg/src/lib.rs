//! # uvllm-dfg
//!
//! Data-flow graphs and slicing for the UVLLM post-processing stage
//! (§III-C of the paper, Algorithm 2).
//!
//! [`Dfg::build`] extracts every assignment site of a module together
//! with the guard conditions (`if`/`case` context) under which it
//! executes. Two slicing modes answer "which code can explain a wrong
//! value on signal *s*":
//!
//! * [`Dfg::static_slice`] — the classic cone of influence: transitively
//!   every site whose target feeds `s`.
//! * [`Dfg::dynamic_slice`] — the paper's *time-aware* slice: guard
//!   conditions are evaluated against a waveform snapshot taken at the
//!   mismatch timestamp, so only sites on *executed* paths survive,
//!   giving the repair agent far denser information.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use uvllm_dfg::Dfg;
//!
//! let src = "module m(input a, input b, input s, output reg y);\n\
//!            always @(*) begin\nif (s) y = a; else y = b;\nend\nendmodule\n";
//! let file = uvllm_verilog::parse(src)?;
//! let dfg = Dfg::build(file.top().unwrap());
//! let slice = dfg.static_slice("y");
//! assert_eq!(slice.sites.len(), 2); // both branches feed y
//! # Ok(())
//! # }
//! ```

pub mod slice;

pub use slice::{suspicious_lines, Dfg, Guard, Site, Slice, SliceOptions};
