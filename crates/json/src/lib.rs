//! Minimal dependency-free JSON: a value type, a strict parser and
//! compact/pretty printers.
//!
//! Used by `uvllm-llm` for the structured-output schema of Fig. 4 and by
//! `uvllm-campaign` for its JSONL result sink. Object members preserve
//! insertion order so serialisation is byte-stable — the campaign
//! engine's determinism guarantee rests on that.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers are held as `f64` (integers up to 2^53 survive
    /// exactly, far beyond anything serialised here).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Members in insertion order (no key sorting, no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64` when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses `text` as one JSON value (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                })
            }
        }
    }
}

/// Convenience constructor for string values.
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs: join when a low surrogate
                            // follows, replace lone surrogates.
                            let c = if (0xD800..0xDC00).contains(&cp)
                                && self.bytes.get(self.pos) == Some(&b'\\')
                                && self.bytes.get(self.pos + 1) == Some(&b'u')
                            {
                                let lo_hex = self
                                    .bytes
                                    .get(self.pos + 2..self.pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                match u32::from_str_radix(lo_hex, 16) {
                                    Ok(lo) if (0xDC00..0xE000).contains(&lo) => {
                                        self.pos += 6;
                                        let joined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(joined).unwrap_or('\u{FFFD}')
                                    }
                                    _ => '\u{FFFD}',
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
        let back_pretty = Json::parse(&v.render_pretty()).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn preserves_member_order() {
        let v = Json::Obj(vec![("zz".into(), Json::Num(1.0)), ("aa".into(), Json::Num(2.0))]);
        assert_eq!(v.render(), r#"{"zz":1,"aa":2}"#);
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Json::Str("quote \" slash \\ tab \t nl \n".into());
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap().as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("[1, 2").is_err());
    }

    #[test]
    fn unicode_in_strings_survives() {
        let v = Json::parse("{\"k\": \"héllo — ≤ 𝄞\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo — ≤ 𝄞"));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-0.5).render(), "-0.5");
    }
}
