//! Deterministic in-workspace stand-in for the `rand` crate.
//!
//! The repository builds without network access, so instead of the real
//! `rand` this tiny crate provides exactly the API subset the workspace
//! uses: [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`RngExt::random`] /
//! [`RngExt::random_range`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is fully deterministic across platforms and worker
//! counts — a hard requirement for the campaign engine, which must
//! produce byte-identical evaluation rows at any parallelism level.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges usable with [`RngExt::random_range`].
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw in `[0, bound)` by rejection sampling.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Widening-multiply method (Lemire) with rejection for exactness.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uniform_range!(u64, usize, u32);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws one value of `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a (half-open or inclusive) range.
    fn random_range<Rg: UniformRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias so code written against `rand::Rng` also compiles.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the real `rand::rngs::StdRng` (ChaCha12), but statistically
    /// strong, tiny, and — the property everything here depends on —
    /// bit-for-bit reproducible from a `u64` seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{bounded, RngCore};

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.random_range(0..5usize)] = true;
            let v = r.random_range(10..=12u64);
            assert!((10..=12).contains(&v));
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle is virtually never the identity");
    }

    #[test]
    fn mean_is_centred() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
