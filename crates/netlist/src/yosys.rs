//! Yosys-JSON netlist interchange.
//!
//! [`export`] serialises an elaborated [`Design`] into the JSON
//! netlist format produced by `yosys -o design.json` (one module,
//! `ports` / `cells` / `netnames` / `memories` sections, global bit
//! ids); [`import`] reads such a file back into a [`Design`] that
//! simulates on both kernels — whether it came from this exporter or
//! from a real Yosys run on third-party RTL.
//!
//! # Mapping
//!
//! Processes whose shape matches a Yosys word-level cell are exported
//! as that cell (`$add`, `$mux`, `$dff`, `$reduce_*`, …). Everything
//! else — multi-statement always blocks, case dispatch, initial
//! blocks — becomes a `$uvllm.process` extension cell whose `BODY` and
//! `TRIGGER` parameters hold a deterministic S-expression rendering of
//! the lowered IR (signals referenced by name, no connections). Yosys
//! itself ignores unknown cell types, so exported files stay loadable
//! there; this importer round-trips them losslessly (source spans are
//! the only thing dropped).
//!
//! Memories (`words > 1`) live in the `memories` section and have no
//! bit ids; simulator-specific signal metadata rides along as netname
//! attributes (`uvllm_kind`, `uvllm_lsb`).
//!
//! # Determinism and round-trips
//!
//! Export is a pure function of the design: bit ids are assigned
//! ports-first (inputs, outputs, then remaining scalars in id order),
//! cells are named `$p<n>` in process order, and every object is
//! rendered with a fixed member order. The CI contract is a JSON-level
//! fixpoint: `export(import(export(d)))` is byte-identical to
//! `export(d)` for every design — signal ids may be renumbered on
//! import (scalars before memories), but nothing observable in the
//! JSON or in the simulated port waveforms changes.
//!
//! Width semantics note: operand widths of imported word-level cells
//! follow this simulator's (unsigned) elaboration rules — `A_SIGNED` /
//! `B_SIGNED` are ignored, so signed Yosys netlists are outside the
//! supported subset and X/Z handling follows the four-state evaluator.

use std::collections::HashMap;
use std::fmt;

use uvllm_json::Json;
use uvllm_sim::elab::{
    expr_signals, Design, LExpr, LExprKind, LStmt, LTarget, Process, SignalId, SignalInfo,
    SignalKind, Trigger,
};
use uvllm_sim::logic::Logic;
use uvllm_verilog::ast::{BinaryOp, CaseKind, Edge, UnaryOp};
use uvllm_verilog::span::Span;

/// Import failure (malformed JSON, unsupported cell, dangling name…).
#[derive(Debug, Clone, PartialEq)]
pub struct ImportError {
    pub message: String,
}

impl ImportError {
    fn new(message: impl Into<String>) -> ImportError {
        ImportError { message: message.into() }
    }
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "yosys import error: {}", self.message)
    }
}

impl std::error::Error for ImportError {}

fn err<T>(message: impl Into<String>) -> Result<T, ImportError> {
    Err(ImportError::new(message))
}

// ===========================================================================
// Export
// ===========================================================================

/// First global bit id; Yosys reserves 0/1 for constants in older
/// dialects, so ids conventionally start at 2.
const FIRST_BIT: u64 = 2;

/// Exports `design` as a Yosys-JSON document.
pub fn export(design: &Design) -> Json {
    let bits = BitMap::assign(design);

    let mut ports = Vec::new();
    for (&id, direction) in design
        .inputs()
        .iter()
        .map(|id| (id, "input"))
        .chain(design.outputs().iter().map(|id| (id, "output")))
    {
        let info = design.signal(id);
        ports.push((
            info.name.clone(),
            Json::Obj(vec![
                ("direction".into(), Json::Str(direction.into())),
                ("bits".into(), bits.bits_json(id, info.width)),
            ]),
        ));
    }

    let mut cells = Vec::new();
    for (idx, process) in design.processes().iter().enumerate() {
        cells.push((format!("$p{idx}"), cell_for_process(design, &bits, process)));
    }

    let mut netnames = Vec::new();
    for &id in &bits.order {
        let info = design.signal(id);
        netnames.push((
            info.name.clone(),
            Json::Obj(vec![
                ("hide_name".into(), Json::Num(0.0)),
                ("bits".into(), bits.bits_json(id, info.width)),
                ("attributes".into(), signal_attributes(info)),
            ]),
        ));
    }

    let mut memories = Vec::new();
    for (i, info) in design.signals().iter().enumerate() {
        if info.words > 1 {
            let _ = SignalId(i as u32);
            memories.push((
                info.name.clone(),
                Json::Obj(vec![
                    ("hide_name".into(), Json::Num(0.0)),
                    ("attributes".into(), signal_attributes(info)),
                    ("width".into(), Json::Num(info.width as f64)),
                    ("start_offset".into(), Json::Num(info.array_lo as f64)),
                    ("size".into(), Json::Num(info.words as f64)),
                ]),
            ));
        }
    }

    let module = Json::Obj(vec![
        ("attributes".into(), Json::Obj(vec![("top".into(), Json::Num(1.0))])),
        ("ports".into(), Json::Obj(ports)),
        ("cells".into(), Json::Obj(cells)),
        ("netnames".into(), Json::Obj(netnames)),
        ("memories".into(), Json::Obj(memories)),
    ]);

    Json::Obj(vec![
        ("creator".into(), Json::Str("uvllm-netlist".into())),
        ("modules".into(), Json::Obj(vec![(design.top.clone(), module)])),
    ])
}

/// [`export`] rendered as pretty JSON with a trailing newline (the
/// on-disk format the round-trip gate compares byte-for-byte).
pub fn export_string(design: &Design) -> String {
    let mut out = export(design).render_pretty();
    out.push('\n');
    out
}

fn signal_attributes(info: &SignalInfo) -> Json {
    let mut attrs = Vec::new();
    if info.kind == SignalKind::Var {
        attrs.push(("uvllm_kind".into(), Json::Str("var".into())));
    }
    if info.lsb != 0 {
        attrs.push(("uvllm_lsb".into(), Json::Num(info.lsb as f64)));
    }
    Json::Obj(attrs)
}

/// Global bit ids for every scalar signal (memories have none).
struct BitMap {
    /// Base bit id per signal (index = `SignalId`), `None` for memories.
    base: Vec<Option<u64>>,
    /// Scalar signals in bit-id order (ports first).
    order: Vec<SignalId>,
}

impl BitMap {
    fn assign(design: &Design) -> BitMap {
        let mut base = vec![None; design.signals().len()];
        let mut order = Vec::new();
        let mut next = FIRST_BIT;
        let ports = design.inputs().iter().chain(design.outputs());
        let rest = (0..design.signals().len() as u32).map(SignalId);
        for id in ports.copied().chain(rest) {
            let info = design.signal(id);
            if info.words > 1 || base[id.0 as usize].is_some() {
                continue;
            }
            base[id.0 as usize] = Some(next);
            order.push(id);
            next += info.width as u64;
        }
        BitMap { base, order }
    }

    fn base(&self, id: SignalId) -> Option<u64> {
        self.base[id.0 as usize]
    }

    fn bits_json(&self, id: SignalId, width: u32) -> Json {
        let base = self.base(id).expect("scalar signal has bit ids");
        Json::Arr((0..width as u64).map(|i| Json::Num((base + i) as f64)).collect())
    }
}

/// One connection bit: a global net id or a constant bit.
#[derive(Clone, Copy, PartialEq)]
enum Bit {
    Id(u64),
    Const(char),
}

impl Bit {
    fn to_json(self) -> Json {
        match self {
            Bit::Id(id) => Json::Num(id as f64),
            Bit::Const(c) => Json::Str(c.to_string()),
        }
    }
}

fn const_bit_char(value: &Logic, i: u32) -> char {
    let val = (value.val() >> i) & 1;
    let xz = (value.xz() >> i) & 1;
    match (xz, val) {
        (0, 0) => '0',
        (0, _) => '1',
        (_, 0) => 'x',
        _ => 'z',
    }
}

/// Renders an expression as an LSB-first bit-id vector, when it is a
/// pure wiring expression (signals, constants, static selects and
/// concatenations thereof). Anything computational returns `None`.
fn bits_of_expr(design: &Design, bits: &BitMap, e: &LExpr) -> Option<Vec<Bit>> {
    let out = match &e.kind {
        LExprKind::Sig(s) => {
            let base = bits.base(*s)?;
            (0..design.signal(*s).width as u64).map(|i| Bit::Id(base + i)).collect()
        }
        LExprKind::Const(l) => (0..l.width()).map(|i| Bit::Const(const_bit_char(l, i))).collect(),
        LExprKind::PartSel(s, off) => {
            let base = bits.base(*s)?;
            let width = design.signal(*s).width;
            if off + e.width > width {
                return None;
            }
            (0..e.width as u64).map(|i| Bit::Id(base + *off as u64 + i)).collect()
        }
        LExprKind::BitSel(s, index) => {
            // Only constant, in-range indices are wiring; out-of-range
            // constant selects are a hard X.
            let LExprKind::Const(l) = &index.kind else { return None };
            let base = bits.base(*s)?;
            match l.to_u128() {
                Some(i) if i < design.signal(*s).width as u128 => {
                    vec![Bit::Id(base + i as u64)]
                }
                Some(_) => vec![Bit::Const('x')],
                None => return None,
            }
        }
        LExprKind::Concat(items) => {
            // Truncating concats (> 128 bits) are not pure wiring.
            let total: u32 = items.iter().map(|i| i.width).sum();
            if total != e.width {
                return None;
            }
            let mut out = Vec::with_capacity(total as usize);
            for item in items.iter().rev() {
                let mut item_bits = bits_of_expr(design, bits, item)?;
                if item_bits.len() != item.width as usize {
                    return None;
                }
                out.append(&mut item_bits);
            }
            out
        }
        _ => return None,
    };
    if out.len() == e.width.max(1) as usize {
        Some(out)
    } else {
        None
    }
}

fn bits_json(v: Vec<Bit>) -> Json {
    Json::Arr(v.into_iter().map(Bit::to_json).collect())
}

/// Maps a [`BinaryOp`] to its Yosys cell type (those without one —
/// `RedNand`-style ops live only on the unary side — fall back to
/// `$uvllm.process`).
fn binary_cell_type(op: BinaryOp) -> Option<&'static str> {
    use BinaryOp::*;
    Some(match op {
        Add => "$add",
        Sub => "$sub",
        Mul => "$mul",
        Div => "$div",
        Mod => "$mod",
        Pow => "$pow",
        Shl => "$shl",
        Shr => "$shr",
        AShr => "$sshr",
        Lt => "$lt",
        Le => "$le",
        Gt => "$gt",
        Ge => "$ge",
        Eq => "$eq",
        Ne => "$ne",
        CaseEq => "$eqx",
        CaseNe => "$nex",
        LogAnd => "$logic_and",
        LogOr => "$logic_or",
        BitAnd => "$and",
        BitOr => "$or",
        BitXor => "$xor",
        BitXnor => "$xnor",
    })
}

fn unary_cell_type(op: UnaryOp) -> Option<&'static str> {
    use UnaryOp::*;
    match op {
        BitNot => Some("$not"),
        Neg => Some("$neg"),
        Plus => Some("$pos"),
        LogNot => Some("$logic_not"),
        RedAnd => Some("$reduce_and"),
        RedOr => Some("$reduce_or"),
        RedXor => Some("$reduce_xor"),
        RedXnor => Some("$reduce_xnor"),
        // No Yosys equivalent: keep the process form.
        RedNand | RedNor => None,
    }
}

fn cell(
    ty: &str,
    parameters: Vec<(String, Json)>,
    connections: Vec<(&'static str, &'static str, Json)>,
) -> Json {
    let port_directions =
        connections.iter().map(|(n, d, _)| (n.to_string(), Json::Str(d.to_string()))).collect();
    let conns = connections.into_iter().map(|(n, _, v)| (n.to_string(), v)).collect();
    Json::Obj(vec![
        ("hide_name".into(), Json::Num(1.0)),
        ("type".into(), Json::Str(ty.into())),
        ("parameters".into(), Json::Obj(parameters)),
        ("attributes".into(), Json::Obj(Vec::new())),
        ("port_directions".into(), Json::Obj(port_directions)),
        ("connections".into(), Json::Obj(conns)),
    ])
}

fn num(n: u32) -> Json {
    Json::Num(n as f64)
}

/// Exports one process: a standard Yosys cell when the shape allows,
/// otherwise a `$uvllm.process` extension cell.
fn cell_for_process(design: &Design, bits: &BitMap, process: &Process) -> Json {
    if let Some(cell) = standard_cell(design, bits, process) {
        return cell;
    }
    cell(
        "$uvllm.process",
        vec![
            ("BODY".into(), Json::Str(sexpr_stmt(design, &process.body))),
            ("TRIGGER".into(), Json::Str(sexpr_trigger(design, &process.trigger))),
        ],
        Vec::new(),
    )
}

fn standard_cell(design: &Design, bits: &BitMap, process: &Process) -> Option<Json> {
    match &process.trigger {
        Trigger::Comb(deps) => {
            let LStmt::Assign { lhs: LTarget::Whole(y), rhs, blocking: true, .. } = &process.body
            else {
                return None;
            };
            if *deps != expr_signals(rhs) || design.signal(*y).words != 1 {
                return None;
            }
            let wy = design.signal(*y).width;
            let y_bits = bits.bits_json(*y, wy);
            match &rhs.kind {
                LExprKind::Binary(op, a, b) => {
                    let ty = binary_cell_type(*op)?;
                    let a_bits = bits_of_expr(design, bits, a)?;
                    let b_bits = bits_of_expr(design, bits, b)?;
                    Some(cell(
                        ty,
                        vec![
                            ("A_SIGNED".into(), num(0)),
                            ("A_WIDTH".into(), num(a_bits.len() as u32)),
                            ("B_SIGNED".into(), num(0)),
                            ("B_WIDTH".into(), num(b_bits.len() as u32)),
                            ("Y_WIDTH".into(), num(wy)),
                        ],
                        vec![
                            ("A", "input", bits_json(a_bits)),
                            ("B", "input", bits_json(b_bits)),
                            ("Y", "output", y_bits),
                        ],
                    ))
                }
                LExprKind::Unary(op, a) => {
                    let ty = unary_cell_type(*op)?;
                    let a_bits = bits_of_expr(design, bits, a)?;
                    Some(cell(
                        ty,
                        vec![
                            ("A_SIGNED".into(), num(0)),
                            ("A_WIDTH".into(), num(a_bits.len() as u32)),
                            ("Y_WIDTH".into(), num(wy)),
                        ],
                        vec![("A", "input", bits_json(a_bits)), ("Y", "output", y_bits)],
                    ))
                }
                LExprKind::Ternary(c, t, f) => {
                    // Yosys $mux: Y = S ? B : A, with a 1-bit selector
                    // and equal-width data legs.
                    if c.width != 1 || t.width != wy || f.width != wy {
                        return None;
                    }
                    let s_bits = bits_of_expr(design, bits, c)?;
                    let t_bits = bits_of_expr(design, bits, t)?;
                    let f_bits = bits_of_expr(design, bits, f)?;
                    Some(cell(
                        "$mux",
                        vec![("WIDTH".into(), num(wy))],
                        vec![
                            ("A", "input", bits_json(f_bits)),
                            ("B", "input", bits_json(t_bits)),
                            ("S", "input", bits_json(s_bits)),
                            ("Y", "output", y_bits),
                        ],
                    ))
                }
                // Pure wiring: export as the identity cell.
                _ => {
                    let a_bits = bits_of_expr(design, bits, rhs)?;
                    Some(cell(
                        "$pos",
                        vec![
                            ("A_SIGNED".into(), num(0)),
                            ("A_WIDTH".into(), num(a_bits.len() as u32)),
                            ("Y_WIDTH".into(), num(wy)),
                        ],
                        vec![("A", "input", bits_json(a_bits)), ("Y", "output", y_bits)],
                    ))
                }
            }
        }
        Trigger::Seq(edges) => {
            let [(clk, Some(edge))] = edges.as_slice() else { return None };
            let clk_info = design.signal(*clk);
            if clk_info.width != 1 || clk_info.words != 1 {
                return None;
            }
            let LStmt::Assign { lhs: LTarget::Whole(q), rhs, blocking: false, .. } = &process.body
            else {
                return None;
            };
            let q_info = design.signal(*q);
            if q_info.words != 1 || rhs.width != q_info.width {
                return None;
            }
            let d_bits = bits_of_expr(design, bits, rhs)?;
            Some(cell(
                "$dff",
                vec![
                    ("CLK_POLARITY".into(), num(if *edge == Edge::Pos { 1 } else { 0 })),
                    ("WIDTH".into(), num(q_info.width)),
                ],
                vec![
                    ("CLK", "input", bits.bits_json(*clk, 1)),
                    ("D", "input", bits_json(d_bits)),
                    ("Q", "output", bits.bits_json(*q, q_info.width)),
                ],
            ))
        }
        Trigger::Initial => None,
    }
}

// ===========================================================================
// S-expressions for $uvllm.process
// ===========================================================================

fn quote(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

fn binop_name(op: BinaryOp) -> &'static str {
    use BinaryOp::*;
    match op {
        Add => "Add",
        Sub => "Sub",
        Mul => "Mul",
        Div => "Div",
        Mod => "Mod",
        Pow => "Pow",
        Shl => "Shl",
        Shr => "Shr",
        AShr => "AShr",
        Lt => "Lt",
        Le => "Le",
        Gt => "Gt",
        Ge => "Ge",
        Eq => "Eq",
        Ne => "Ne",
        CaseEq => "CaseEq",
        CaseNe => "CaseNe",
        LogAnd => "LogAnd",
        LogOr => "LogOr",
        BitAnd => "BitAnd",
        BitOr => "BitOr",
        BitXor => "BitXor",
        BitXnor => "BitXnor",
    }
}

fn binop_from(name: &str) -> Option<BinaryOp> {
    use BinaryOp::*;
    Some(match name {
        "Add" => Add,
        "Sub" => Sub,
        "Mul" => Mul,
        "Div" => Div,
        "Mod" => Mod,
        "Pow" => Pow,
        "Shl" => Shl,
        "Shr" => Shr,
        "AShr" => AShr,
        "Lt" => Lt,
        "Le" => Le,
        "Gt" => Gt,
        "Ge" => Ge,
        "Eq" => Eq,
        "Ne" => Ne,
        "CaseEq" => CaseEq,
        "CaseNe" => CaseNe,
        "LogAnd" => LogAnd,
        "LogOr" => LogOr,
        "BitAnd" => BitAnd,
        "BitOr" => BitOr,
        "BitXor" => BitXor,
        "BitXnor" => BitXnor,
        _ => return None,
    })
}

fn unop_name(op: UnaryOp) -> &'static str {
    use UnaryOp::*;
    match op {
        LogNot => "LogNot",
        BitNot => "BitNot",
        Neg => "Neg",
        Plus => "Plus",
        RedAnd => "RedAnd",
        RedOr => "RedOr",
        RedXor => "RedXor",
        RedNand => "RedNand",
        RedNor => "RedNor",
        RedXnor => "RedXnor",
    }
}

fn unop_from(name: &str) -> Option<UnaryOp> {
    use UnaryOp::*;
    Some(match name {
        "LogNot" => LogNot,
        "BitNot" => BitNot,
        "Neg" => Neg,
        "Plus" => Plus,
        "RedAnd" => RedAnd,
        "RedOr" => RedOr,
        "RedXor" => RedXor,
        "RedNand" => RedNand,
        "RedNor" => RedNor,
        "RedXnor" => RedXnor,
        _ => None?,
    })
}

fn name_of(design: &Design, id: SignalId) -> String {
    quote(&design.signal(id).name)
}

fn const_string(l: &Logic) -> String {
    // MSB-first, like Verilog literals.
    (0..l.width()).rev().map(|i| const_bit_char(l, i)).collect()
}

fn sexpr_expr(design: &Design, e: &LExpr) -> String {
    let w = e.width;
    match &e.kind {
        LExprKind::Const(l) => format!("(const {w} {})", quote(&const_string(l))),
        LExprKind::Sig(s) => format!("(sig {w} {})", name_of(design, *s)),
        LExprKind::Word(s, index) => {
            format!("(word {w} {} {})", name_of(design, *s), sexpr_expr(design, index))
        }
        LExprKind::BitSel(s, index) => {
            format!("(bitsel {w} {} {})", name_of(design, *s), sexpr_expr(design, index))
        }
        LExprKind::PartSel(s, off) => {
            format!("(part {w} {} {off})", name_of(design, *s))
        }
        LExprKind::Unary(op, a) => {
            format!("(un {w} {} {})", unop_name(*op), sexpr_expr(design, a))
        }
        LExprKind::Binary(op, a, b) => format!(
            "(bin {w} {} {} {})",
            binop_name(*op),
            sexpr_expr(design, a),
            sexpr_expr(design, b)
        ),
        LExprKind::Ternary(c, t, f) => format!(
            "(tern {w} {} {} {})",
            sexpr_expr(design, c),
            sexpr_expr(design, t),
            sexpr_expr(design, f)
        ),
        LExprKind::Concat(items) => {
            let body: Vec<String> = items.iter().map(|i| sexpr_expr(design, i)).collect();
            format!("(cat {w} {})", body.join(" "))
        }
    }
}

fn sexpr_target(design: &Design, t: &LTarget) -> String {
    match t {
        LTarget::Whole(s) => format!("(whole {})", name_of(design, *s)),
        LTarget::Bit(s, index) => {
            format!("(bit {} {})", name_of(design, *s), sexpr_expr(design, index))
        }
        LTarget::Part(s, off, w) => format!("(part {} {off} {w})", name_of(design, *s)),
        LTarget::Word(s, index) => {
            format!("(word {} {})", name_of(design, *s), sexpr_expr(design, index))
        }
        LTarget::Concat(parts) => {
            let body: Vec<String> = parts.iter().map(|p| sexpr_target(design, p)).collect();
            format!("(tcat {})", body.join(" "))
        }
    }
}

fn sexpr_stmt(design: &Design, s: &LStmt) -> String {
    match s {
        LStmt::Block(stmts) => {
            let body: Vec<String> = stmts.iter().map(|s| sexpr_stmt(design, s)).collect();
            if body.is_empty() {
                "(block)".into()
            } else {
                format!("(block {})", body.join(" "))
            }
        }
        LStmt::Assign { lhs, rhs, blocking, .. } => format!(
            "(assign {} {} {})",
            if *blocking { "b" } else { "n" },
            sexpr_target(design, lhs),
            sexpr_expr(design, rhs)
        ),
        LStmt::If { cond, then_branch, else_branch, .. } => {
            let mut out =
                format!("(if {} {}", sexpr_expr(design, cond), sexpr_stmt(design, then_branch));
            if let Some(eb) = else_branch {
                out.push(' ');
                out.push_str(&sexpr_stmt(design, eb));
            }
            out.push(')');
            out
        }
        LStmt::Case { kind, expr, arms, default, .. } => {
            let kind_name = match kind {
                CaseKind::Case => "case",
                CaseKind::Casez => "casez",
                CaseKind::Casex => "casex",
            };
            let mut out = format!("({kind_name} {}", sexpr_expr(design, expr));
            for (labels, body) in arms {
                let labels: Vec<String> = labels.iter().map(|l| sexpr_expr(design, l)).collect();
                out.push_str(&format!(
                    " (arm ({}) {})",
                    labels.join(" "),
                    sexpr_stmt(design, body)
                ));
            }
            if let Some(d) = default {
                out.push_str(&format!(" (default {})", sexpr_stmt(design, d)));
            }
            out.push(')');
            out
        }
        LStmt::Nop => "(nop)".into(),
    }
}

fn sexpr_trigger(design: &Design, t: &Trigger) -> String {
    match t {
        Trigger::Comb(deps) => {
            let names: Vec<String> = deps.iter().map(|s| name_of(design, *s)).collect();
            if names.is_empty() {
                "(comb)".into()
            } else {
                format!("(comb {})", names.join(" "))
            }
        }
        Trigger::Seq(edges) => {
            let entries: Vec<String> = edges
                .iter()
                .map(|(s, e)| {
                    let edge = match e {
                        Some(Edge::Pos) => "pos",
                        Some(Edge::Neg) => "neg",
                        None => "any",
                    };
                    format!("({} {edge})", name_of(design, *s))
                })
                .collect();
            format!("(seq {})", entries.join(" "))
        }
        Trigger::Initial => "(initial)".into(),
    }
}

// ---------------------------------------------------------------------------
// S-expression parsing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum SExpr {
    Atom(String),
    Str(String),
    List(Vec<SExpr>),
}

fn parse_sexpr(text: &str) -> Result<SExpr, ImportError> {
    let mut tokens = tokenize(text)?;
    tokens.reverse();
    let root = parse_tokens(&mut tokens)?;
    if !tokens.is_empty() {
        return err("trailing tokens in S-expression");
    }
    Ok(root)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open,
    Close,
    Atom(String),
    Str(String),
}

fn tokenize(text: &str) -> Result<Vec<Token>, ImportError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '(' => out.push(Token::Open),
            ')' => out.push(Token::Close),
            '"' => {
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e) => s.push(e),
                            None => return err("unterminated escape in S-expression"),
                        },
                        Some(c) => s.push(c),
                        None => return err("unterminated string in S-expression"),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_whitespace() => {}
            c => {
                let mut atom = String::new();
                atom.push(c);
                while let Some(&n) = chars.peek() {
                    if n.is_whitespace() || n == '(' || n == ')' || n == '"' {
                        break;
                    }
                    atom.push(n);
                    chars.next();
                }
                out.push(Token::Atom(atom));
            }
        }
    }
    Ok(out)
}

fn parse_tokens(tokens: &mut Vec<Token>) -> Result<SExpr, ImportError> {
    match tokens.pop() {
        Some(Token::Open) => {
            let mut items = Vec::new();
            loop {
                match tokens.last() {
                    Some(Token::Close) => {
                        tokens.pop();
                        return Ok(SExpr::List(items));
                    }
                    Some(_) => items.push(parse_tokens(tokens)?),
                    None => return err("unbalanced S-expression"),
                }
            }
        }
        Some(Token::Close) => err("unexpected ')' in S-expression"),
        Some(Token::Atom(a)) => Ok(SExpr::Atom(a)),
        Some(Token::Str(s)) => Ok(SExpr::Str(s)),
        None => err("empty S-expression"),
    }
}

impl SExpr {
    fn list(&self) -> Result<&[SExpr], ImportError> {
        match self {
            SExpr::List(items) => Ok(items),
            _ => err("expected S-expression list"),
        }
    }

    fn atom(&self) -> Result<&str, ImportError> {
        match self {
            SExpr::Atom(a) => Ok(a),
            _ => err("expected S-expression atom"),
        }
    }

    fn string(&self) -> Result<&str, ImportError> {
        match self {
            SExpr::Str(s) => Ok(s),
            _ => err("expected quoted name in S-expression"),
        }
    }

    fn number(&self) -> Result<u32, ImportError> {
        self.atom()?.parse::<u32>().map_err(|_| ImportError::new("expected number"))
    }
}

fn const_from_string(text: &str) -> Result<Logic, ImportError> {
    let width = text.chars().count() as u32;
    if width == 0 || width > 128 {
        return err(format!("constant width {width} out of range 1..=128"));
    }
    let (mut val, mut xz) = (0u128, 0u128);
    // MSB-first in the string.
    for (i, c) in text.chars().rev().enumerate() {
        let (v, x) = match c {
            '0' => (0, 0),
            '1' => (1, 0),
            'x' => (0, 1),
            'z' => (1, 1),
            _ => return err(format!("bad constant digit '{c}'")),
        };
        val |= v << i;
        xz |= x << i;
    }
    Ok(Logic::from_planes(width, val, xz))
}

struct SexprCtx<'a> {
    design: &'a Design,
}

impl SexprCtx<'_> {
    fn signal(&self, name: &SExpr) -> Result<SignalId, ImportError> {
        let name = name.string()?;
        self.design
            .signal_id(name)
            .ok_or_else(|| ImportError::new(format!("unknown signal '{name}'")))
    }

    fn expr(&self, s: &SExpr) -> Result<LExpr, ImportError> {
        let items = s.list()?;
        let [head, rest @ ..] = items else { return err("empty expression") };
        let kind = head.atom()?;
        let width = |i: usize| -> Result<u32, ImportError> {
            rest.get(i).ok_or_else(|| ImportError::new("missing width"))?.number()
        };
        match (kind, rest) {
            ("const", [w, text]) => Ok(LExpr {
                kind: LExprKind::Const(const_from_string(text.string()?)?),
                width: w.number()?,
            }),
            ("sig", [w, name]) => {
                Ok(LExpr { kind: LExprKind::Sig(self.signal(name)?), width: w.number()? })
            }
            ("word", [w, name, index]) => Ok(LExpr {
                kind: LExprKind::Word(self.signal(name)?, Box::new(self.expr(index)?)),
                width: w.number()?,
            }),
            ("bitsel", [w, name, index]) => Ok(LExpr {
                kind: LExprKind::BitSel(self.signal(name)?, Box::new(self.expr(index)?)),
                width: w.number()?,
            }),
            ("part", [w, name, off]) => Ok(LExpr {
                kind: LExprKind::PartSel(self.signal(name)?, off.number()?),
                width: w.number()?,
            }),
            ("un", [w, op, a]) => {
                let op =
                    unop_from(op.atom()?).ok_or_else(|| ImportError::new("unknown unary op"))?;
                Ok(LExpr {
                    kind: LExprKind::Unary(op, Box::new(self.expr(a)?)),
                    width: w.number()?,
                })
            }
            ("bin", [w, op, a, b]) => {
                let op =
                    binop_from(op.atom()?).ok_or_else(|| ImportError::new("unknown binary op"))?;
                Ok(LExpr {
                    kind: LExprKind::Binary(op, Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
                    width: w.number()?,
                })
            }
            ("tern", [w, c, t, f]) => Ok(LExpr {
                kind: LExprKind::Ternary(
                    Box::new(self.expr(c)?),
                    Box::new(self.expr(t)?),
                    Box::new(self.expr(f)?),
                ),
                width: w.number()?,
            }),
            ("cat", [_, ..]) => {
                let items: Result<Vec<LExpr>, _> = rest[1..].iter().map(|i| self.expr(i)).collect();
                Ok(LExpr { kind: LExprKind::Concat(items?), width: width(0)? })
            }
            _ => err(format!("malformed expression '({kind} …)'")),
        }
    }

    fn target(&self, s: &SExpr) -> Result<LTarget, ImportError> {
        let items = s.list()?;
        let [head, rest @ ..] = items else { return err("empty target") };
        match (head.atom()?, rest) {
            ("whole", [name]) => Ok(LTarget::Whole(self.signal(name)?)),
            ("bit", [name, index]) => Ok(LTarget::Bit(self.signal(name)?, self.expr(index)?)),
            ("part", [name, off, w]) => {
                Ok(LTarget::Part(self.signal(name)?, off.number()?, w.number()?))
            }
            ("word", [name, index]) => Ok(LTarget::Word(self.signal(name)?, self.expr(index)?)),
            ("tcat", parts) => {
                let parts: Result<Vec<LTarget>, _> = parts.iter().map(|p| self.target(p)).collect();
                Ok(LTarget::Concat(parts?))
            }
            (kind, _) => err(format!("malformed target '({kind} …)'")),
        }
    }

    fn stmt(&self, s: &SExpr) -> Result<LStmt, ImportError> {
        let items = s.list()?;
        let [head, rest @ ..] = items else { return err("empty statement") };
        match (head.atom()?, rest) {
            ("block", stmts) => {
                let stmts: Result<Vec<LStmt>, _> = stmts.iter().map(|s| self.stmt(s)).collect();
                Ok(LStmt::Block(stmts?))
            }
            ("assign", [mode, target, value]) => Ok(LStmt::Assign {
                lhs: self.target(target)?,
                rhs: self.expr(value)?,
                blocking: match mode.atom()? {
                    "b" => true,
                    "n" => false,
                    m => return err(format!("bad assign mode '{m}'")),
                },
                span: Span::default(),
            }),
            ("if", [cond, then_branch]) => Ok(LStmt::If {
                cond: self.expr(cond)?,
                then_branch: Box::new(self.stmt(then_branch)?),
                else_branch: None,
                span: Span::default(),
            }),
            ("if", [cond, then_branch, else_branch]) => Ok(LStmt::If {
                cond: self.expr(cond)?,
                then_branch: Box::new(self.stmt(then_branch)?),
                else_branch: Some(Box::new(self.stmt(else_branch)?)),
                span: Span::default(),
            }),
            (kind @ ("case" | "casez" | "casex"), [sel, arms @ ..]) => {
                let case_kind = match kind {
                    "case" => CaseKind::Case,
                    "casez" => CaseKind::Casez,
                    _ => CaseKind::Casex,
                };
                let mut parsed_arms = Vec::new();
                let mut default = None;
                for arm in arms {
                    let arm_items = arm.list()?;
                    match arm_items {
                        [h, labels, body] if h.atom() == Ok("arm") => {
                            let labels: Result<Vec<LExpr>, _> =
                                labels.list()?.iter().map(|l| self.expr(l)).collect();
                            parsed_arms.push((labels?, self.stmt(body)?));
                        }
                        [h, body] if h.atom() == Ok("default") => {
                            if default.is_some() {
                                return err("duplicate case default");
                            }
                            default = Some(Box::new(self.stmt(body)?));
                        }
                        _ => return err("malformed case arm"),
                    }
                }
                Ok(LStmt::Case {
                    kind: case_kind,
                    expr: self.expr(sel)?,
                    arms: parsed_arms,
                    default,
                    span: Span::default(),
                })
            }
            ("nop", []) => Ok(LStmt::Nop),
            (kind, _) => err(format!("malformed statement '({kind} …)'")),
        }
    }

    fn trigger(&self, s: &SExpr) -> Result<Trigger, ImportError> {
        let items = s.list()?;
        let [head, rest @ ..] = items else { return err("empty trigger") };
        match (head.atom()?, rest) {
            ("comb", deps) => {
                let deps: Result<Vec<SignalId>, _> = deps.iter().map(|d| self.signal(d)).collect();
                Ok(Trigger::Comb(deps?))
            }
            ("seq", edges) => {
                let mut out = Vec::new();
                for entry in edges {
                    let [name, edge] = entry.list()? else {
                        return err("malformed seq edge");
                    };
                    let edge = match edge.atom()? {
                        "pos" => Some(Edge::Pos),
                        "neg" => Some(Edge::Neg),
                        "any" => None,
                        e => return err(format!("bad edge '{e}'")),
                    };
                    out.push((self.signal(name)?, edge));
                }
                Ok(Trigger::Seq(out))
            }
            ("initial", []) => Ok(Trigger::Initial),
            (kind, _) => err(format!("malformed trigger '({kind} …)'")),
        }
    }
}

// ===========================================================================
// Import
// ===========================================================================

/// Imports a Yosys-JSON document holding exactly one module.
pub fn import_str(text: &str) -> Result<Design, ImportError> {
    let json = Json::parse(text).map_err(|e| ImportError::new(format!("bad JSON: {e}")))?;
    import(&json)
}

/// Imports a parsed Yosys-JSON document holding exactly one module.
pub fn import(json: &Json) -> Result<Design, ImportError> {
    let Some(Json::Obj(modules)) = json.get("modules") else {
        return err("missing 'modules' object");
    };
    let [(name, module)] = modules.as_slice() else {
        return err(format!("expected exactly one module, found {}", modules.len()));
    };
    import_module(name, module)
}

fn obj<'a>(json: &'a Json, key: &str) -> Result<&'a [(String, Json)], ImportError> {
    match json.get(key) {
        Some(Json::Obj(members)) => Ok(members),
        None => Ok(&[]),
        _ => err(format!("'{key}' is not an object")),
    }
}

fn attr_kind(attrs: Option<&Json>) -> SignalKind {
    match attrs.and_then(|a| a.get("uvllm_kind")).and_then(Json::as_str) {
        Some("var") => SignalKind::Var,
        _ => SignalKind::Net,
    }
}

fn attr_lsb(attrs: Option<&Json>) -> u32 {
    attrs.and_then(|a| a.get("uvllm_lsb")).and_then(Json::as_u64).unwrap_or(0) as u32
}

/// One pending alias bit: this signal's bit `offset` is driven by an
/// already-owned net bit or a constant.
struct AliasBit {
    signal: SignalId,
    offset: u32,
    source: Bit,
}

struct Importer {
    design: Design,
    /// Global bit id → owning (signal, bit offset).
    owners: HashMap<u64, (SignalId, u32)>,
    aliases: Vec<AliasBit>,
}

fn import_module(name: &str, module: &Json) -> Result<Design, ImportError> {
    let mut imp =
        Importer { design: Design::new_empty(name), owners: HashMap::new(), aliases: Vec::new() };
    let netnames = obj(module, "netnames")?;
    let attrs_of = |name: &str| -> Option<&Json> {
        netnames.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.get("attributes"))
    };

    // Ports first (their declaration order fixes the port lists and the
    // re-export bit-id layout), then the remaining netnames, then
    // memories, then cells.
    for (port_name, port) in obj(module, "ports")? {
        let direction = port
            .get("direction")
            .and_then(Json::as_str)
            .ok_or_else(|| ImportError::new(format!("port '{port_name}': no direction")))?;
        let (is_input, is_output) = match direction {
            "input" => (true, false),
            "output" => (false, true),
            d => return err(format!("port '{port_name}': unsupported direction '{d}'")),
        };
        let attrs = attrs_of(port_name);
        imp.add_scalar(port_name, port.get("bits"), attrs, is_input, is_output)?;
    }
    for (net_name, net) in netnames {
        if imp.design.signal_id(net_name).is_some() {
            continue;
        }
        imp.add_scalar(net_name, net.get("bits"), net.get("attributes"), false, false)?;
    }
    for (mem_name, mem) in obj(module, "memories")? {
        let width = get_u32(mem, "width")
            .ok_or_else(|| ImportError::new(format!("memory '{mem_name}': no width")))?;
        let size = get_u32(mem, "size")
            .ok_or_else(|| ImportError::new(format!("memory '{mem_name}': no size")))?;
        let attrs = mem.get("attributes");
        imp.design
            .add_signal(SignalInfo {
                name: mem_name.clone(),
                width,
                kind: match attrs.is_some_and(|a| a.get("uvllm_kind").is_some()) {
                    true => attr_kind(attrs),
                    false => SignalKind::Var,
                },
                words: size,
                lsb: attr_lsb(attrs),
                array_lo: get_u32(mem, "start_offset").unwrap_or(0),
                is_input: false,
                is_output: false,
            })
            .map_err(ImportError::new)?;
    }

    for (cell_name, cell) in obj(module, "cells")? {
        imp.add_cell(cell_name, cell)?;
    }
    imp.flush_aliases();
    Ok(imp.design)
}

fn get_u32(json: &Json, key: &str) -> Option<u32> {
    json.get(key).and_then(Json::as_u64).map(|n| n as u32)
}

/// Parses one connection bit (net id or constant digit string).
fn parse_bit(b: &Json) -> Result<Bit, ImportError> {
    match b {
        Json::Num(_) => Ok(Bit::Id(
            b.as_u64().ok_or_else(|| ImportError::new("bit ids must be non-negative integers"))?,
        )),
        Json::Str(s) => match s.as_str() {
            "0" => Ok(Bit::Const('0')),
            "1" => Ok(Bit::Const('1')),
            "x" => Ok(Bit::Const('x')),
            "z" => Ok(Bit::Const('z')),
            _ => err(format!("bad constant bit '{s}'")),
        },
        _ => err("connection bits must be numbers or constant strings"),
    }
}

fn parse_bits(bits: Option<&Json>, what: &str) -> Result<Vec<Bit>, ImportError> {
    let Some(Json::Arr(items)) = bits else {
        return err(format!("{what}: missing bits array"));
    };
    items.iter().map(parse_bit).collect()
}

impl Importer {
    fn add_scalar(
        &mut self,
        name: &str,
        bits: Option<&Json>,
        attrs: Option<&Json>,
        is_input: bool,
        is_output: bool,
    ) -> Result<(), ImportError> {
        let bits = parse_bits(bits, &format!("net '{name}'"))?;
        let width = bits.len() as u32;
        let id = self
            .design
            .add_signal(SignalInfo {
                name: name.into(),
                width,
                kind: attr_kind(attrs),
                words: 1,
                lsb: attr_lsb(attrs),
                array_lo: 0,
                is_input,
                is_output,
            })
            .map_err(ImportError::new)?;
        for (offset, bit) in bits.into_iter().enumerate() {
            let offset = offset as u32;
            match bit {
                Bit::Id(bid) if !self.owners.contains_key(&bid) => {
                    self.owners.insert(bid, (id, offset));
                }
                // Aliased or constant bit: this net re-names another
                // net's bit (or a constant) — synthesise a driver.
                source => self.aliases.push(AliasBit { signal: id, offset, source }),
            }
        }
        Ok(())
    }

    /// Resolves connection bits to a canonical read expression:
    /// maximal runs of consecutive signal bits / constant digits,
    /// concatenated MSB-first.
    fn expr_of_bits(&self, bits: &[Bit], what: &str) -> Result<LExpr, ImportError> {
        if bits.is_empty() {
            return err(format!("{what}: empty connection"));
        }
        // LSB-first runs.
        enum Run {
            Sig(SignalId, u32, u32),
            Const(Vec<char>),
        }
        let mut runs: Vec<Run> = Vec::new();
        for bit in bits {
            match *bit {
                Bit::Id(bid) => {
                    let &(sig, off) = self.owners.get(&bid).ok_or_else(|| {
                        ImportError::new(format!("{what}: undeclared bit id {bid}"))
                    })?;
                    match runs.last_mut() {
                        Some(Run::Sig(s, start, len)) if *s == sig && *start + *len == off => {
                            *len += 1;
                        }
                        _ => runs.push(Run::Sig(sig, off, 1)),
                    }
                }
                Bit::Const(c) => match runs.last_mut() {
                    Some(Run::Const(chars)) => chars.push(c),
                    _ => runs.push(Run::Const(vec![c])),
                },
            }
        }
        let exprs: Vec<LExpr> = runs
            .into_iter()
            .map(|run| match run {
                Run::Sig(sig, start, len) => {
                    let info = self.design.signal(sig);
                    if start == 0 && len == info.width {
                        LExpr { kind: LExprKind::Sig(sig), width: len }
                    } else {
                        LExpr { kind: LExprKind::PartSel(sig, start), width: len }
                    }
                }
                Run::Const(chars) => {
                    let width = chars.len() as u32;
                    let (mut val, mut xz) = (0u128, 0u128);
                    for (i, c) in chars.into_iter().enumerate() {
                        let (v, x) = match c {
                            '0' => (0, 0),
                            '1' => (1, 0),
                            'x' => (0, 1),
                            _ => (1, 1),
                        };
                        val |= v << i;
                        xz |= x << i;
                    }
                    LExpr { kind: LExprKind::Const(Logic::from_planes(width, val, xz)), width }
                }
            })
            .collect();
        let total = bits.len() as u32;
        if total > 128 {
            return err(format!("{what}: connection wider than 128 bits"));
        }
        match <[LExpr; 1]>::try_from(exprs) {
            Ok([single]) => Ok(single),
            // Concat items are MSB-first; runs were built LSB-first.
            Err(multi) => Ok(LExpr {
                kind: LExprKind::Concat(multi.into_iter().rev().collect()),
                width: total,
            }),
        }
    }

    /// Resolves output-connection bits to a write target.
    fn target_of_bits(&self, bits: &[Bit], what: &str) -> Result<LTarget, ImportError> {
        let mut runs: Vec<(SignalId, u32, u32)> = Vec::new();
        for bit in bits {
            let Bit::Id(bid) = *bit else {
                return err(format!("{what}: constant bit in output connection"));
            };
            let &(sig, off) = self
                .owners
                .get(&bid)
                .ok_or_else(|| ImportError::new(format!("{what}: undeclared bit id {bid}")))?;
            match runs.last_mut() {
                Some((s, start, len)) if *s == sig && *start + *len == off => *len += 1,
                _ => runs.push((sig, off, 1)),
            }
        }
        let targets: Vec<LTarget> = runs
            .into_iter()
            .map(|(sig, start, len)| {
                if start == 0 && len == self.design.signal(sig).width {
                    LTarget::Whole(sig)
                } else {
                    LTarget::Part(sig, start, len)
                }
            })
            .collect();
        match <[LTarget; 1]>::try_from(targets) {
            Ok([single]) => Ok(single),
            Err(multi) => Ok(LTarget::Concat(multi.into_iter().rev().collect())),
        }
    }

    /// A 1-bit connection that names a whole 1-bit signal (clock /
    /// reset lines of flop cells).
    fn control_signal(&self, bits: &[Bit], what: &str) -> Result<SignalId, ImportError> {
        let [Bit::Id(bid)] = bits else {
            return err(format!("{what}: expected a single-bit net"));
        };
        let &(sig, off) = self
            .owners
            .get(bid)
            .ok_or_else(|| ImportError::new(format!("{what}: undeclared bit id {bid}")))?;
        if off != 0 || self.design.signal(sig).width != 1 {
            return err(format!("{what}: control nets must be whole 1-bit signals"));
        }
        Ok(sig)
    }

    fn connection(&self, cell: &Json, port: &str, what: &str) -> Result<Vec<Bit>, ImportError> {
        let conns = cell
            .get("connections")
            .ok_or_else(|| ImportError::new(format!("{what}: missing connections object")))?;
        parse_bits(conns.get(port), &format!("{what}.{port}"))
    }

    fn comb_assign(&mut self, target: LTarget, rhs: LExpr) {
        let deps = expr_signals(&rhs);
        self.design.add_process(Process {
            trigger: Trigger::Comb(deps),
            body: LStmt::Assign { lhs: target, rhs, blocking: true, span: Span::default() },
            span: Span::default(),
        });
    }

    fn add_cell(&mut self, name: &str, cell: &Json) -> Result<(), ImportError> {
        let ty = cell
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ImportError::new(format!("cell '{name}': missing type")))?;
        let what = format!("cell '{name}' ({ty})");

        if ty == "$uvllm.process" {
            let params = cell
                .get("parameters")
                .ok_or_else(|| ImportError::new(format!("{what}: missing parameters")))?;
            let body_text = params
                .get("BODY")
                .and_then(Json::as_str)
                .ok_or_else(|| ImportError::new(format!("{what}: missing BODY")))?;
            let trigger_text = params
                .get("TRIGGER")
                .and_then(Json::as_str)
                .ok_or_else(|| ImportError::new(format!("{what}: missing TRIGGER")))?;
            let ctx = SexprCtx { design: &self.design };
            let body = ctx.stmt(&parse_sexpr(body_text)?)?;
            let trigger = ctx.trigger(&parse_sexpr(trigger_text)?)?;
            self.design.add_process(Process { trigger, body, span: Span::default() });
            return Ok(());
        }

        if let Some(op) = binary_op_of_cell(ty) {
            let a = self.expr_of_bits(&self.connection(cell, "A", &what)?, &what)?;
            let b = self.expr_of_bits(&self.connection(cell, "B", &what)?, &what)?;
            let target = self.target_of_bits(&self.connection(cell, "Y", &what)?, &what)?;
            let width = binary_result_width(op, &a, &b);
            let rhs = LExpr { kind: LExprKind::Binary(op, Box::new(a), Box::new(b)), width };
            self.comb_assign(target, rhs);
            return Ok(());
        }
        if let Some(op) = unary_op_of_cell(ty) {
            let a = self.expr_of_bits(&self.connection(cell, "A", &what)?, &what)?;
            let target = self.target_of_bits(&self.connection(cell, "Y", &what)?, &what)?;
            let width = unary_result_width(op, &a);
            let rhs = LExpr { kind: LExprKind::Unary(op, Box::new(a)), width };
            self.comb_assign(target, rhs);
            return Ok(());
        }
        match ty {
            "$mux" => {
                let f = self.expr_of_bits(&self.connection(cell, "A", &what)?, &what)?;
                let t = self.expr_of_bits(&self.connection(cell, "B", &what)?, &what)?;
                let s = self.expr_of_bits(&self.connection(cell, "S", &what)?, &what)?;
                let target = self.target_of_bits(&self.connection(cell, "Y", &what)?, &what)?;
                let width = t.width.max(f.width);
                let rhs = LExpr {
                    kind: LExprKind::Ternary(Box::new(s), Box::new(t), Box::new(f)),
                    width,
                };
                self.comb_assign(target, rhs);
                Ok(())
            }
            "$dff" => {
                let clk = self.control_signal(&self.connection(cell, "CLK", &what)?, &what)?;
                let d = self.expr_of_bits(&self.connection(cell, "D", &what)?, &what)?;
                let q = self.target_of_bits(&self.connection(cell, "Q", &what)?, &what)?;
                let edge = clk_edge(cell, "CLK_POLARITY");
                self.design.add_process(Process {
                    trigger: Trigger::Seq(vec![(clk, Some(edge))]),
                    body: LStmt::Assign { lhs: q, rhs: d, blocking: false, span: Span::default() },
                    span: Span::default(),
                });
                Ok(())
            }
            "$adff" => {
                let clk = self.control_signal(&self.connection(cell, "CLK", &what)?, &what)?;
                let arst = self.control_signal(&self.connection(cell, "ARST", &what)?, &what)?;
                let d = self.expr_of_bits(&self.connection(cell, "D", &what)?, &what)?;
                let q = self.target_of_bits(&self.connection(cell, "Q", &what)?, &what)?;
                let width = d.width;
                let clk_edge = clk_edge(cell, "CLK_POLARITY");
                let arst_pol = param_u64(cell, "ARST_POLARITY").unwrap_or(1) != 0;
                let value = param_logic(cell, "ARST_VALUE", width)
                    .unwrap_or_else(|| Logic::zeros(width.max(1)));
                let arst_read = LExpr { kind: LExprKind::Sig(arst), width: 1 };
                let cond = if arst_pol {
                    arst_read
                } else {
                    LExpr { kind: LExprKind::Unary(UnaryOp::LogNot, Box::new(arst_read)), width: 1 }
                };
                let reset_value = LExpr { kind: LExprKind::Const(value), width: width.max(1) };
                self.design.add_process(Process {
                    trigger: Trigger::Seq(vec![
                        (clk, Some(clk_edge)),
                        (arst, Some(if arst_pol { Edge::Pos } else { Edge::Neg })),
                    ]),
                    body: LStmt::If {
                        cond,
                        then_branch: Box::new(LStmt::Assign {
                            lhs: q.clone(),
                            rhs: reset_value,
                            blocking: false,
                            span: Span::default(),
                        }),
                        else_branch: Some(Box::new(LStmt::Assign {
                            lhs: q,
                            rhs: d,
                            blocking: false,
                            span: Span::default(),
                        })),
                        span: Span::default(),
                    },
                    span: Span::default(),
                });
                Ok(())
            }
            _ => err(format!("{what}: unsupported cell type")),
        }
    }

    /// Emits buffer processes for alias/constant netname bits,
    /// grouping consecutive offsets fed from consecutive sources.
    fn flush_aliases(&mut self) {
        let aliases = std::mem::take(&mut self.aliases);
        let mut i = 0;
        while i < aliases.len() {
            let first = &aliases[i];
            let mut bits = vec![first.source];
            let mut j = i + 1;
            while j < aliases.len() {
                let prev = &aliases[j - 1];
                let next = &aliases[j];
                let contiguous = next.signal == prev.signal && next.offset == prev.offset + 1;
                if !contiguous {
                    break;
                }
                bits.push(next.source);
                j += 1;
            }
            let len = (j - i) as u32;
            let info = self.design.signal(first.signal);
            let target = if first.offset == 0 && len == info.width {
                LTarget::Whole(first.signal)
            } else {
                LTarget::Part(first.signal, first.offset, len)
            };
            if let Ok(rhs) = self.expr_of_bits(&bits, "alias net") {
                self.comb_assign(target, rhs);
            }
            i = j;
        }
    }
}

fn binary_op_of_cell(ty: &str) -> Option<BinaryOp> {
    use BinaryOp::*;
    Some(match ty {
        "$add" => Add,
        "$sub" => Sub,
        "$mul" => Mul,
        "$div" => Div,
        "$mod" => Mod,
        "$pow" => Pow,
        "$shl" | "$sshl" => Shl,
        "$shr" => Shr,
        "$sshr" => AShr,
        "$lt" => Lt,
        "$le" => Le,
        "$gt" => Gt,
        "$ge" => Ge,
        "$eq" => Eq,
        "$ne" => Ne,
        "$eqx" => CaseEq,
        "$nex" => CaseNe,
        "$logic_and" => LogAnd,
        "$logic_or" => LogOr,
        "$and" => BitAnd,
        "$or" => BitOr,
        "$xor" => BitXor,
        "$xnor" => BitXnor,
        _ => return None,
    })
}

fn unary_op_of_cell(ty: &str) -> Option<UnaryOp> {
    use UnaryOp::*;
    Some(match ty {
        "$not" => BitNot,
        "$neg" => Neg,
        "$pos" => Plus,
        "$logic_not" => LogNot,
        "$reduce_and" => RedAnd,
        // $reduce_bool (Y = A != 0) coincides with |A for the unsigned
        // subset this importer supports.
        "$reduce_or" | "$reduce_bool" => RedOr,
        "$reduce_xor" => RedXor,
        "$reduce_xnor" => RedXnor,
        _ => return None,
    })
}

/// Self-determined result widths per this simulator's elaboration
/// rules (unsigned): arithmetic takes the operand max, comparisons and
/// logic are 1 bit, shifts follow the shifted operand.
fn binary_result_width(op: BinaryOp, a: &LExpr, b: &LExpr) -> u32 {
    use BinaryOp::*;
    match op {
        Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | BitXnor => a.width.max(b.width),
        Pow | Shl | Shr | AShr => a.width,
        Lt | Le | Gt | Ge | Eq | Ne | CaseEq | CaseNe | LogAnd | LogOr => 1,
    }
}

fn unary_result_width(op: UnaryOp, a: &LExpr) -> u32 {
    use UnaryOp::*;
    match op {
        BitNot | Neg | Plus => a.width,
        LogNot | RedAnd | RedOr | RedXor | RedNand | RedNor | RedXnor => 1,
    }
}

fn clk_edge(cell: &Json, key: &str) -> Edge {
    if param_u64(cell, key).unwrap_or(1) != 0 {
        Edge::Pos
    } else {
        Edge::Neg
    }
}

fn param_u64(cell: &Json, key: &str) -> Option<u64> {
    let v = cell.get("parameters")?.get(key)?;
    match v {
        Json::Num(_) => v.as_u64(),
        // Yosys also emits parameters as binary digit strings.
        Json::Str(s) if s.bytes().all(|b| b == b'0' || b == b'1') && !s.is_empty() => {
            u64::from_str_radix(s, 2).ok()
        }
        _ => None,
    }
}

fn param_logic(cell: &Json, key: &str, width: u32) -> Option<Logic> {
    let width = width.max(1);
    let v = cell.get("parameters")?.get(key)?;
    match v {
        Json::Num(_) => v.as_u64().map(|n| Logic::from_u128(width, n as u128)),
        Json::Str(s) => const_from_string(s).ok().map(|l| l.resize(width)),
        _ => None,
    }
}
