//! Post-elaboration netlist passes and Yosys-JSON interchange.
//!
//! This crate sits between elaboration ([`uvllm_sim::elab`]) and the
//! two simulation kernels. It rewrites an elaborated [`Design`] in
//! place through a small pipeline of semantics-preserving passes, and
//! imports/exports designs in Yosys' JSON netlist format so
//! third-party RTL can join a campaign and elaborated designs can
//! round-trip out to other tools (see [`yosys`]).
//!
//! # Pass framework
//!
//! A [`Pass`] is a named rewrite returning how many rewrites it
//! performed; a [`PassManager`] runs its passes in rounds until a full
//! round changes nothing (capped, see [`PassManager::MAX_ROUNDS`]).
//! Running the pipeline on its own output is therefore a no-op by
//! construction — the idempotence tests pin `Design: PartialEq` over
//! a double run.
//!
//! Every pass preserves *observable* four-state semantics: port and
//! surviving-signal waveforms are bit-identical on both kernels, for
//! any stimulus, X-propagation included. Passes may orphan internal
//! signals (leaving them undriven/unread) but never renumber them.
//!
//! The soundness argument leans on one invariant shared with the
//! kernels: every expression position has a *static* evaluation
//! context width (the `ctx` of [`uvllm_sim::eval::eval`]), fully
//! determined by the enclosing statement and operator — so a pass can
//! replay the exact runtime widths at rewrite time. The walker in
//! [`passes`] mirrors those rules; `eval.rs` is the normative source.
//!
//! # Levels
//!
//! | level | passes |
//! |-------|--------|
//! | `O0`  | none (identity) |
//! | `O1`  | const folding, operand canonicalization |
//! | `O2`  | `O1` + buffer removal |
//! | `O3`  | `O2` + comb-chain rebalancing |
//!
//! [`opt_profile`] packages a level as a [`uvllm_sim::OptProfile`] so
//! the elaboration cache keys variants separately;
//! [`install_default_opt`] makes it the process default consumed by
//! `elaborate_source_cached` / `compile_source_cached` (this is what
//! the campaign CLI's `--opt-level` does).

pub mod passes;
pub mod yosys;

mod metrics;

use std::sync::Arc;

use uvllm_sim::compile::CompiledDesign;
use uvllm_sim::elab::Design;
use uvllm_sim::OptProfile;

pub use passes::{BufferRemoval, Canonicalize, ConstFold, Rebalance};

/// A named, in-place rewrite of an elaborated design.
pub trait Pass {
    /// Stable pass name (used in stats and metrics).
    fn name(&self) -> &'static str;

    /// Applies the pass, returning the number of rewrites performed
    /// (0 means the design was already a fixpoint of this pass).
    fn run(&self, design: &mut Design) -> u64;
}

/// Optimization level selecting a standard pass pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// Identity — the elaborated design is used as-is.
    O0,
    /// Constant folding + operand canonicalization.
    O1,
    /// `O1` plus buffer/identity-assign removal.
    O2,
    /// `O2` plus comb-chain rebalancing (single-reader inlining).
    O3,
}

impl OptLevel {
    /// Parses a numeric level (`0..=3`).
    pub fn from_u8(n: u8) -> Option<OptLevel> {
        match n {
            0 => Some(OptLevel::O0),
            1 => Some(OptLevel::O1),
            2 => Some(OptLevel::O2),
            3 => Some(OptLevel::O3),
            _ => None,
        }
    }

    /// Cache label for this level; empty for `O0` (the identity label
    /// used by un-optimized cache entries).
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
        }
    }
}

/// Rewrite tally for one pass across all rounds of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    pub name: &'static str,
    pub rewrites: u64,
}

/// Deterministic statistics from one [`PassManager::run`].
///
/// All counts are exact and reproducible: passes walk the design
/// single-threaded in process/statement order, so the same input
/// design always yields the same stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStats {
    /// Rounds executed (including the final all-quiet round).
    pub rounds: u32,
    /// Per-pass rewrite totals, in pipeline order.
    pub per_pass: Vec<PassStat>,
    /// Levelized comb depth before any pass ran.
    pub depth_before: u32,
    /// Levelized comb depth after the pipeline reached fixpoint.
    pub depth_after: u32,
}

impl PipelineStats {
    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> u64 {
        self.per_pass.iter().map(|p| p.rewrites).sum()
    }

    /// Rewrites performed by the pass named `name` (0 if absent).
    pub fn rewrites(&self, name: &str) -> u64 {
        self.per_pass.iter().find(|p| p.name == name).map_or(0, |p| p.rewrites)
    }
}

/// Runs a pipeline of passes to fixpoint.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Round cap: a backstop against a (buggy) pass pair that keeps
    /// undoing each other. The standard passes strictly shrink the
    /// design (nodes, inversions or processes), so real pipelines
    /// converge in a handful of rounds.
    pub const MAX_ROUNDS: u32 = 32;

    /// An empty pipeline (identity).
    pub fn new() -> PassManager {
        PassManager { passes: Vec::new() }
    }

    /// Appends a pass (builder style).
    pub fn with_pass(mut self, pass: Box<dyn Pass>) -> PassManager {
        self.passes.push(pass);
        self
    }

    /// The standard pipeline for `level` (empty for `O0`).
    pub fn standard(level: OptLevel) -> PassManager {
        let mut pm = PassManager::new();
        if level >= OptLevel::O1 {
            pm = pm.with_pass(Box::new(ConstFold)).with_pass(Box::new(Canonicalize));
        }
        if level >= OptLevel::O2 {
            pm = pm.with_pass(Box::new(BufferRemoval));
        }
        if level >= OptLevel::O3 {
            pm = pm.with_pass(Box::new(Rebalance));
        }
        pm
    }

    /// Pass names, in pipeline order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs all passes in rounds until a full round performs no
    /// rewrite, and reports deterministic per-pass statistics.
    pub fn run(&self, design: &mut Design) -> PipelineStats {
        let depth_before = levelized_depth(design);
        let mut per_pass: Vec<PassStat> =
            self.passes.iter().map(|p| PassStat { name: p.name(), rewrites: 0 }).collect();
        let mut rounds = 0;
        while rounds < Self::MAX_ROUNDS {
            rounds += 1;
            let mut round_rewrites = 0;
            for (i, pass) in self.passes.iter().enumerate() {
                let _span = uvllm_obs::Span::enter("netlist.pass");
                let n = pass.run(design);
                per_pass[i].rewrites += n;
                round_rewrites += n;
            }
            if round_rewrites == 0 {
                break;
            }
        }
        let stats =
            PipelineStats { rounds, per_pass, depth_before, depth_after: levelized_depth(design) };
        metrics::record(&stats);
        stats
    }
}

/// Levelized combinational depth of a design: the length of the
/// longest writer→reader chain of combinational processes, as seen by
/// the compiled kernel's topological scheduler (1 = all comb processes
/// are sources, 0 = no comb processes). Cyclic comb designs report the
/// depth of the acyclic prefix.
pub fn levelized_depth(design: &Design) -> u32 {
    let cd = CompiledDesign::from_arc(Arc::new(design.clone()));
    cd.comb_order().iter().map(|&pid| cd.level(pid) + 1).max().unwrap_or(0)
}

/// Packages `level` as a cache [`OptProfile`]: `None` for [`OptLevel::O0`]
/// (identity — no profile needed), otherwise a profile whose transform
/// runs the standard pipeline and records per-pass metrics.
pub fn opt_profile(level: OptLevel) -> Option<OptProfile> {
    match level {
        OptLevel::O0 => None,
        _ => Some(OptProfile::new(level.label(), {
            Arc::new(move |design: &mut Design| {
                PassManager::standard(level).run(design);
            })
        })),
    }
}

/// Installs `level` as the process-default optimization profile picked
/// up by `elaborate_source_cached` / `compile_source_cached` /
/// `checkout_sim` (campaign `--opt-level` plumbing). `O0` resets to
/// the identity profile.
pub fn install_default_opt(level: OptLevel) {
    uvllm_sim::set_default_opt_profile(opt_profile(level).unwrap_or_else(OptProfile::none));
}
