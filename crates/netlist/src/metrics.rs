//! Registry handles for the netlist layer (`netlist.*`), resolved once.
//!
//! Everything is a monotonic counter so campaign metrics stay
//! independent of worker scheduling order (the `uvllm-metrics/v1`
//! snapshot contract): per-run values are summed, never sampled.

use std::sync::OnceLock;
use uvllm_obs::{registry, Counter};

use crate::PipelineStats;

/// Pass-pipeline counters (`netlist.*`).
#[derive(Debug)]
struct NetlistMetrics {
    /// Pipeline runs completed ([`crate::PassManager::run`]).
    runs: &'static Counter,
    /// Signal-free subtrees folded to constants (plus masking
    /// identities and pruned constant branches).
    cells_folded: &'static Counter,
    /// Commutative operand swaps performed.
    ops_canonicalized: &'static Counter,
    /// Buffer processes removed.
    buffers_removed: &'static Counter,
    /// Single-reader producers inlined.
    chains_rebalanced: &'static Counter,
    /// Sum of levelized comb depth before the pipeline, across runs.
    depth_before_total: &'static Counter,
    /// Sum of levelized comb depth after the pipeline, across runs.
    depth_after_total: &'static Counter,
}

fn metrics() -> &'static NetlistMetrics {
    static METRICS: OnceLock<NetlistMetrics> = OnceLock::new();
    METRICS.get_or_init(|| NetlistMetrics {
        runs: registry().counter("netlist.runs"),
        cells_folded: registry().counter("netlist.cells_folded"),
        ops_canonicalized: registry().counter("netlist.ops_canonicalized"),
        buffers_removed: registry().counter("netlist.buffers_removed"),
        chains_rebalanced: registry().counter("netlist.chains_rebalanced"),
        depth_before_total: registry().counter("netlist.depth_before_total"),
        depth_after_total: registry().counter("netlist.depth_after_total"),
    })
}

/// Flushes one pipeline run's stats into the registry.
pub(crate) fn record(stats: &PipelineStats) {
    let m = metrics();
    m.runs.add(1);
    m.cells_folded.add(stats.rewrites("const_fold"));
    m.ops_canonicalized.add(stats.rewrites("canonicalize"));
    m.buffers_removed.add(stats.rewrites("buffer_removal"));
    m.chains_rebalanced.add(stats.rewrites("rebalance"));
    m.depth_before_total.add(stats.depth_before as u64);
    m.depth_after_total.add(stats.depth_after as u64);
}
