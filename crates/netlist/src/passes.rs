//! The standard rewrite passes and the shared context-width walker.
//!
//! # The context walker
//!
//! Both kernels evaluate every expression position at a *statically
//! determined* context width (`ctx` of [`uvllm_sim::eval::eval`]):
//! assignment right-hand sides at the target width, comparison
//! operands at `max(a.width, b.width)`, shift amounts and logical /
//! reduction operands self-determined, and so on. [`rewrite_exprs`]
//! replays exactly those rules while handing each node to a rewrite
//! callback, so a pass can prove at rewrite time that a replacement
//! evaluates identically at runtime. `eval.rs` is the normative
//! source for the rules; the unit tests cross-check a few of the
//! subtle ones (shift amounts, comparison contexts) against it.

use uvllm_sim::elab::{
    expr_signals, stmt_read_signals, stmt_written_signals, Design, LExpr, LExprKind, LStmt,
    LTarget, SignalId, Trigger,
};
use uvllm_sim::eval::{eval, ValueReader};
use uvllm_sim::logic::{mask, Logic, Tri};
use uvllm_verilog::ast::{BinaryOp, UnaryOp};

use crate::Pass;

// ---------------------------------------------------------------------------
// Context-width walker
// ---------------------------------------------------------------------------

/// Context widths of a binary node's operands when the node itself is
/// evaluated in context `w = max(ctx, node.width, 1)`. Mirrors
/// `eval_binary`'s call sites in `eval.rs`.
fn binary_operand_ctx(op: BinaryOp, a: &LExpr, b: &LExpr, w: u32) -> (u32, u32) {
    use BinaryOp::*;
    match op {
        Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | BitXnor => (w, w),
        Pow | Shl | Shr | AShr => (w, b.width),
        Lt | Le | Gt | Ge | Eq | Ne | CaseEq | CaseNe => {
            let ow = a.width.max(b.width);
            (ow, ow)
        }
        LogAnd | LogOr => (a.width, b.width),
    }
}

/// Context width of a unary node's operand (see `eval.rs`): logical
/// not and reductions are self-determined, the rest inherit `w`.
fn unary_operand_ctx(op: UnaryOp, a: &LExpr, w: u32) -> u32 {
    use UnaryOp::*;
    match op {
        LogNot | RedAnd | RedOr | RedXor | RedNand | RedNor | RedXnor => a.width,
        BitNot | Neg | Plus => w,
    }
}

/// Post-order walk of `e` at context `ctx`, calling `f(node, ctx)` on
/// every node after its children. `f` may rewrite the node in place;
/// replacements are not re-visited.
fn rewrite_expr(e: &mut LExpr, ctx: u32, f: &mut impl FnMut(&mut LExpr, u32)) {
    let w = ctx.max(e.width).max(1);
    match &mut e.kind {
        LExprKind::Const(_) | LExprKind::Sig(_) | LExprKind::PartSel(_, _) => {}
        LExprKind::Word(_, index) | LExprKind::BitSel(_, index) => {
            let ictx = index.width;
            rewrite_expr(index, ictx, f);
        }
        LExprKind::Unary(op, a) => {
            let actx = unary_operand_ctx(*op, a, w);
            rewrite_expr(a, actx, f);
        }
        LExprKind::Binary(op, a, b) => {
            let (actx, bctx) = binary_operand_ctx(*op, a, b, w);
            rewrite_expr(a, actx, f);
            rewrite_expr(b, bctx, f);
        }
        LExprKind::Ternary(c, t, fb) => {
            let cctx = c.width;
            rewrite_expr(c, cctx, f);
            rewrite_expr(t, w, f);
            rewrite_expr(fb, w, f);
        }
        LExprKind::Concat(items) => {
            for item in items {
                let ictx = item.width;
                rewrite_expr(item, ictx, f);
            }
        }
    }
    f(e, ctx);
}

/// Walks every expression of `s` with its static context width (see
/// module docs) and lets `f` rewrite nodes in place. Target index
/// expressions are included (self-determined, like the kernels).
pub(crate) fn rewrite_exprs(design: &Design, s: &mut LStmt, f: &mut impl FnMut(&mut LExpr, u32)) {
    match s {
        LStmt::Block(stmts) => {
            for stmt in stmts {
                rewrite_exprs(design, stmt, f);
            }
        }
        LStmt::Assign { lhs, rhs, .. } => {
            rewrite_target_indices(lhs, f);
            let ctx = lhs.width(design);
            rewrite_expr(rhs, ctx, f);
        }
        LStmt::If { cond, then_branch, else_branch, .. } => {
            let cctx = cond.width;
            rewrite_expr(cond, cctx, f);
            rewrite_exprs(design, then_branch, f);
            if let Some(eb) = else_branch {
                rewrite_exprs(design, eb, f);
            }
        }
        LStmt::Case { expr, arms, default, .. } => {
            let sctx = expr.width;
            rewrite_expr(expr, sctx, f);
            for (labels, body) in arms {
                for label in labels {
                    let lctx = label.width;
                    rewrite_expr(label, lctx, f);
                }
                rewrite_exprs(design, body, f);
            }
            if let Some(d) = default {
                rewrite_exprs(design, d, f);
            }
        }
        LStmt::Nop => {}
    }
}

fn rewrite_target_indices(t: &mut LTarget, f: &mut impl FnMut(&mut LExpr, u32)) {
    match t {
        LTarget::Whole(_) | LTarget::Part(_, _, _) => {}
        LTarget::Bit(_, index) | LTarget::Word(_, index) => {
            let ictx = index.width;
            rewrite_expr(index, ictx, f);
        }
        LTarget::Concat(parts) => {
            for part in parts {
                rewrite_target_indices(part, f);
            }
        }
    }
}

/// Number of expression nodes (blowup guard for inlining).
fn expr_size(e: &LExpr) -> u32 {
    1 + match &e.kind {
        LExprKind::Const(_) | LExprKind::Sig(_) | LExprKind::PartSel(_, _) => 0,
        LExprKind::Word(_, i) | LExprKind::BitSel(_, i) => expr_size(i),
        LExprKind::Unary(_, a) => expr_size(a),
        LExprKind::Binary(_, a, b) => expr_size(a) + expr_size(b),
        LExprKind::Ternary(c, t, f) => expr_size(c) + expr_size(t) + expr_size(f),
        LExprKind::Concat(items) => items.iter().map(expr_size).sum(),
    }
}

fn expr_has_signals(e: &LExpr) -> bool {
    match &e.kind {
        LExprKind::Const(_) => false,
        LExprKind::Sig(_) | LExprKind::PartSel(_, _) => true,
        LExprKind::Word(_, _) | LExprKind::BitSel(_, _) => true,
        LExprKind::Unary(_, a) => expr_has_signals(a),
        LExprKind::Binary(_, a, b) => expr_has_signals(a) || expr_has_signals(b),
        LExprKind::Ternary(c, t, f) => {
            expr_has_signals(c) || expr_has_signals(t) || expr_has_signals(f)
        }
        LExprKind::Concat(items) => items.iter().any(expr_has_signals),
    }
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Reader for signal-free expressions; folding never consults it.
struct NoSignals;

impl ValueReader for NoSignals {
    fn read(&self, _: SignalId) -> Logic {
        unreachable!("const folding only evaluates signal-free subtrees")
    }
    fn read_word(&self, _: SignalId, _: u64) -> Logic {
        unreachable!("const folding only evaluates signal-free subtrees")
    }
    fn word_count(&self, _: SignalId) -> u64 {
        unreachable!("const folding only evaluates signal-free subtrees")
    }
    fn width(&self, _: SignalId) -> u32 {
        unreachable!("const folding only evaluates signal-free subtrees")
    }
}

/// Folds signal-free subtrees to constants and applies the two
/// four-state-sound masking identities (`x & 0 → 0`, `x | 1…1 → 1…1`);
/// prunes `if` statements whose condition is a fully-known constant.
///
/// Each fold evaluates the subtree with the *runtime's own* evaluator
/// at the position's static context width, so the replacement constant
/// is exact, X-propagation included. Value-preserving identities that
/// are NOT four-state sound (`x + 0 → x`, `x * 0 → 0`: an X in `x`
/// poisons the whole result at runtime) are deliberately absent.
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const_fold"
    }

    fn run(&self, design: &mut Design) -> u64 {
        let mut folds = 0u64;
        let mut processes = std::mem::take(design.processes_mut());
        for process in &mut processes {
            rewrite_exprs(design, &mut process.body, &mut |e, ctx| {
                folds += fold_node(e, ctx);
            });
            folds += prune_const_branches(&mut process.body);
        }
        *design.processes_mut() = processes;
        folds
    }
}

/// Folds one node (children already folded); returns rewrites done.
fn fold_node(e: &mut LExpr, ctx: u32) -> u64 {
    if matches!(e.kind, LExprKind::Const(_)) {
        return 0;
    }
    let w = ctx.max(e.width).max(1);
    if !expr_has_signals(e) {
        // The runtime evaluates this position at exactly `ctx`, so the
        // widened constant (width `w ≥ e.width`) replays bit-for-bit.
        let value = eval(&NoSignals, e, ctx);
        *e = LExpr { kind: LExprKind::Const(value), width: w };
        return 1;
    }
    if let LExprKind::Binary(op, a, b) = &e.kind {
        let folded = match op {
            // 0 & x = 0 for every four-state x (operands evaluated at w;
            // a known all-zero constant zero-extends to zero).
            BinaryOp::BitAnd if is_known_zero(a) || is_known_zero(b) => Some(Logic::zeros(w)),
            // 1 | x = 1 — but only when the constant covers all w bits.
            BinaryOp::BitOr if is_known_ones(a, w) || is_known_ones(b, w) => Some(Logic::ones(w)),
            _ => None,
        };
        if let Some(value) = folded {
            *e = LExpr { kind: LExprKind::Const(value), width: w };
            return 1;
        }
    }
    0
}

fn is_known_zero(e: &LExpr) -> bool {
    matches!(&e.kind, LExprKind::Const(l) if l.xz() == 0 && l.val() == 0)
}

fn is_known_ones(e: &LExpr, w: u32) -> bool {
    matches!(&e.kind, LExprKind::Const(l) if l.xz() == 0 && l.val() == mask(w))
}

/// Replaces `if` statements whose condition folded to a fully-known
/// constant with the taken branch (both kernels branch identically on
/// known conditions; unknown conditions are left alone — the kernels
/// have merge semantics there). Returns the number of prunes.
fn prune_const_branches(s: &mut LStmt) -> u64 {
    match s {
        LStmt::Block(stmts) => stmts.iter_mut().map(prune_const_branches).sum(),
        LStmt::If { cond, then_branch, else_branch, .. } => {
            let mut n = prune_const_branches(then_branch);
            if let Some(eb) = else_branch.as_mut() {
                n += prune_const_branches(eb);
            }
            let taken = match &cond.kind {
                LExprKind::Const(l) => match l.truthiness() {
                    Tri::True => Some(std::mem::replace(then_branch.as_mut(), LStmt::Nop)),
                    Tri::False => Some(match else_branch.take() {
                        Some(eb) => *eb,
                        None => LStmt::Nop,
                    }),
                    Tri::Unknown => None,
                },
                _ => None,
            };
            match taken {
                Some(branch) => {
                    *s = branch;
                    n + 1
                }
                None => n,
            }
        }
        LStmt::Case { arms, default, .. } => {
            let mut n: u64 = arms.iter_mut().map(|(_, b)| prune_const_branches(b)).sum();
            if let Some(d) = default.as_mut() {
                n += prune_const_branches(d);
            }
            n
        }
        LStmt::Assign { .. } | LStmt::Nop => 0,
    }
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

/// Orders the operands of commutative operators by a deterministic
/// structural key (constants rank last, so `c + x` becomes `x + c`).
///
/// Only operators whose evaluation is symmetric in *both* value and
/// context width are touched: arithmetic/bitwise operands share the
/// parent context, comparisons share `max(a.width, b.width)`, and
/// logical and/or are self-determined — so swapping is observationally
/// invisible. `Sub`, shifts and relational operators stay put.
pub struct Canonicalize;

impl Pass for Canonicalize {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run(&self, design: &mut Design) -> u64 {
        let mut swaps = 0u64;
        let mut processes = std::mem::take(design.processes_mut());
        for process in &mut processes {
            rewrite_exprs(design, &mut process.body, &mut |e, _ctx| {
                if let LExprKind::Binary(op, a, b) = &mut e.kind {
                    if is_commutative(*op) && expr_cmp(a, b) == std::cmp::Ordering::Greater {
                        std::mem::swap(a, b);
                        swaps += 1;
                    }
                }
            });
        }
        *design.processes_mut() = processes;
        swaps
    }
}

fn is_commutative(op: BinaryOp) -> bool {
    use BinaryOp::*;
    matches!(
        op,
        Add | Mul | BitAnd | BitOr | BitXor | BitXnor | Eq | Ne | CaseEq | CaseNe | LogAnd | LogOr
    )
}

fn kind_rank(e: &LExpr) -> u8 {
    match &e.kind {
        LExprKind::Sig(_) => 0,
        LExprKind::Word(_, _) => 1,
        LExprKind::BitSel(_, _) => 2,
        LExprKind::PartSel(_, _) => 3,
        LExprKind::Unary(_, _) => 4,
        LExprKind::Binary(_, _, _) => 5,
        LExprKind::Ternary(_, _, _) => 6,
        LExprKind::Concat(_) => 7,
        // Constants rank last: the canonical form keeps them on the rhs.
        LExprKind::Const(_) => 8,
    }
}

/// Total structural order on expressions (canonicalization key).
fn expr_cmp(a: &LExpr, b: &LExpr) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let by_rank = kind_rank(a).cmp(&kind_rank(b)).then(a.width.cmp(&b.width));
    if by_rank != Ordering::Equal {
        return by_rank;
    }
    match (&a.kind, &b.kind) {
        (LExprKind::Sig(x), LExprKind::Sig(y)) => x.0.cmp(&y.0),
        (LExprKind::Word(x, i), LExprKind::Word(y, j))
        | (LExprKind::BitSel(x, i), LExprKind::BitSel(y, j)) => {
            x.0.cmp(&y.0).then_with(|| expr_cmp(i, j))
        }
        (LExprKind::PartSel(x, i), LExprKind::PartSel(y, j)) => x.0.cmp(&y.0).then(i.cmp(j)),
        (LExprKind::Unary(oa, x), LExprKind::Unary(ob, y)) => {
            (*oa as u8).cmp(&(*ob as u8)).then_with(|| expr_cmp(x, y))
        }
        (LExprKind::Binary(oa, x1, x2), LExprKind::Binary(ob, y1, y2)) => (*oa as u8)
            .cmp(&(*ob as u8))
            .then_with(|| expr_cmp(x1, y1))
            .then_with(|| expr_cmp(x2, y2)),
        (LExprKind::Ternary(c1, t1, f1), LExprKind::Ternary(c2, t2, f2)) => {
            expr_cmp(c1, c2).then_with(|| expr_cmp(t1, t2)).then_with(|| expr_cmp(f1, f2))
        }
        (LExprKind::Concat(xs), LExprKind::Concat(ys)) => xs.len().cmp(&ys.len()).then_with(|| {
            xs.iter()
                .zip(ys)
                .map(|(x, y)| expr_cmp(x, y))
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        }),
        (LExprKind::Const(x), LExprKind::Const(y)) => {
            x.width().cmp(&y.width()).then(x.val().cmp(&y.val())).then(x.xz().cmp(&y.xz()))
        }
        _ => Ordering::Equal,
    }
}

// ---------------------------------------------------------------------------
// Buffer removal
// ---------------------------------------------------------------------------

/// Removes pure buffer processes (`assign y = x;`) by substituting the
/// source signal into every reader and deleting the process.
///
/// Guards (all required — each blocks a real hazard):
/// - `y` is an internal scalar (`words == 1`, not a port) with the
///   buffer as its only writer, and `x` is a scalar;
/// - every process touching `y` is combinational with sensitivity
///   equal to its inferred reads — sequential or `initial` readers
///   (and edge lists) would observe `y`'s one-delta lag, which the
///   substitution removes;
/// - on a width change, `y` only ever appears as a whole read (the
///   substitute is then an explicit truncation / zero-extension, which
///   is what the buffer's own assignment staging performed).
///
/// Orphans `y` in the signal table (ids are append-only).
pub struct BufferRemoval;

impl Pass for BufferRemoval {
    fn name(&self) -> &'static str {
        "buffer_removal"
    }

    fn run(&self, design: &mut Design) -> u64 {
        let mut removed = 0u64;
        // Each success deletes a process, so this terminates; restart
        // the scan after each removal (indices shift).
        loop {
            let n = design.processes().len();
            let mut changed = false;
            for pid in 0..n {
                if try_remove_buffer(design, pid) {
                    removed += 1;
                    changed = true;
                    break;
                }
            }
            if !changed {
                return removed;
            }
        }
    }
}

/// Matches `process[pid]` against the buffer shape and commits the
/// removal if every guard holds.
fn try_remove_buffer(design: &mut Design, pid: usize) -> bool {
    let p = &design.processes()[pid];
    let Trigger::Comb(deps) = &p.trigger else { return false };
    let LStmt::Assign { lhs: LTarget::Whole(y), rhs, blocking: true, .. } = &p.body else {
        return false;
    };
    let y = *y;
    let LExprKind::Sig(x) = rhs.kind else { return false };
    if x == y || deps.as_slice() != [x] {
        return false;
    }
    let sy = design.signal(y);
    let sx = design.signal(x);
    if sy.is_input || sy.is_output || sy.words != 1 || sx.words != 1 {
        return false;
    }
    let (wy, wx) = (sy.width, sx.width);

    let Some(readers) = touching_processes(design, pid, y) else { return false };

    // Build substituted bodies first; commit only if every reader's
    // occurrences of `y` are substitutable.
    let mut new_bodies = Vec::with_capacity(readers.len());
    for &qid in &readers {
        let mut body = design.processes()[qid].body.clone();
        let mut ok = true;
        rewrite_exprs(design, &mut body, &mut |e, _ctx| {
            substitute_buffer_read(e, y, x, wy, wx, &mut ok);
        });
        if !ok {
            return false;
        }
        new_bodies.push((qid, body));
    }

    for (qid, body) in new_bodies {
        let deps = stmt_read_signals(&body);
        let q = &mut design.processes_mut()[qid];
        q.body = body;
        q.trigger = Trigger::Comb(deps);
    }
    design.processes_mut().remove(pid);
    true
}

/// Collects the processes (other than `pid`) that read `y` or list it
/// in their sensitivity; `None` if any of them disqualifies the
/// rewrite (non-comb, stale sensitivity, or a second writer).
fn touching_processes(design: &Design, pid: usize, y: SignalId) -> Option<Vec<usize>> {
    let mut readers = Vec::new();
    for (qid, q) in design.processes().iter().enumerate() {
        if qid == pid {
            continue;
        }
        if stmt_written_signals(&q.body).contains(&y) {
            return None;
        }
        let reads = stmt_read_signals(&q.body);
        let reads_y = reads.contains(&y);
        match &q.trigger {
            Trigger::Comb(qdeps) => {
                if reads_y || qdeps.contains(&y) {
                    // Only rewrite readers whose sensitivity is the
                    // inferred one — we recompute it after substituting.
                    if *qdeps != reads {
                        return None;
                    }
                    readers.push(qid);
                }
            }
            Trigger::Seq(edges) => {
                if reads_y || edges.iter().any(|(s, _)| *s == y) {
                    return None;
                }
            }
            Trigger::Initial => {
                if reads_y {
                    return None;
                }
            }
        }
    }
    Some(readers)
}

/// Rewrites one occurrence of `y` to read `x` directly. Same width:
/// any read shape maps 1:1. Different width: only whole reads qualify,
/// and the substitute replays the buffer's staging (`x` truncated or
/// zero-extended to `y`'s width) — context-independent, so no `ctx`
/// check is needed.
fn substitute_buffer_read(
    e: &mut LExpr,
    y: SignalId,
    x: SignalId,
    wy: u32,
    wx: u32,
    ok: &mut bool,
) {
    match &mut e.kind {
        LExprKind::Sig(s) if *s == y => {
            if wx == wy {
                e.kind = LExprKind::Sig(x);
            } else if wx > wy {
                *e = LExpr { kind: LExprKind::PartSel(x, 0), width: wy };
            } else {
                *e = LExpr {
                    kind: LExprKind::Concat(vec![
                        LExpr { kind: LExprKind::Const(Logic::zeros(wy - wx)), width: wy - wx },
                        LExpr { kind: LExprKind::Sig(x), width: wx },
                    ]),
                    width: wy,
                };
            }
        }
        LExprKind::BitSel(s, _) if *s == y => {
            if wx == wy {
                *s = x;
            } else {
                *ok = false;
            }
        }
        LExprKind::PartSel(s, _) if *s == y => {
            if wx == wy {
                *s = x;
            } else {
                *ok = false;
            }
        }
        LExprKind::Word(s, _) if *s == y => *ok = false,
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Comb-chain rebalancing
// ---------------------------------------------------------------------------

/// Inlines single-reader combinational assignments into their reader,
/// collapsing writer→reader chains and shrinking the compiled kernel's
/// levelized depth (fewer scheduler waves per settle).
///
/// A producer `assign y = rhs;` is inlined into its unique reader `Q`
/// when the substitution provably replays the producer's staging:
/// `rhs.width == y.width`, every occurrence of `y` in `Q` is a whole
/// read at a static context ≤ `y.width` (so the runtime evaluates the
/// inlined `rhs` at exactly the width the producer used), `Q` is
/// combinational with inferred sensitivity, and `rhs` does not read
/// `y`. A size guard keeps the duplication bounded.
pub struct Rebalance;

/// Inlined-expression growth cap: occurrences × producer size.
const INLINE_SIZE_LIMIT: u32 = 64;

impl Pass for Rebalance {
    fn name(&self) -> &'static str {
        "rebalance"
    }

    fn run(&self, design: &mut Design) -> u64 {
        let mut inlined = 0u64;
        loop {
            let n = design.processes().len();
            let mut changed = false;
            for pid in 0..n {
                if try_inline(design, pid) {
                    inlined += 1;
                    changed = true;
                    break;
                }
            }
            if !changed {
                return inlined;
            }
        }
    }
}

fn try_inline(design: &mut Design, pid: usize) -> bool {
    let p = &design.processes()[pid];
    let Trigger::Comb(deps) = &p.trigger else { return false };
    let LStmt::Assign { lhs: LTarget::Whole(y), rhs, blocking: true, .. } = &p.body else {
        return false;
    };
    let y = *y;
    let sy = design.signal(y);
    if sy.is_input || sy.is_output || sy.words != 1 {
        return false;
    }
    let wy = sy.width;
    if rhs.width != wy {
        return false;
    }
    let rhs_reads = expr_signals(rhs);
    if rhs_reads.contains(&y) || *deps != rhs_reads {
        return false;
    }

    let Some(readers) = touching_processes(design, pid, y) else { return false };
    // Exactly one reader: inlining into several would duplicate the
    // producer without removing a level from most of them.
    let [qid] = readers.as_slice() else { return false };
    let qid = *qid;

    let rhs = rhs.clone();
    let mut body = design.processes()[qid].body.clone();
    let mut occurrences = 0u32;
    let mut ok = true;
    rewrite_exprs(design, &mut body, &mut |e, ctx| match &e.kind {
        LExprKind::Sig(s) if *s == y => {
            // ctx ≤ wy ⇒ the runtime evaluates this position at width
            // max(ctx, wy) = wy — exactly how the producer staged `y`.
            if ctx <= wy && e.width == wy {
                *e = rhs.clone();
                occurrences += 1;
            } else {
                ok = false;
            }
        }
        LExprKind::BitSel(s, _) | LExprKind::PartSel(s, _) | LExprKind::Word(s, _) if *s == y => {
            ok = false;
        }
        _ => {}
    });
    if !ok || occurrences == 0 || occurrences.saturating_mul(expr_size(&rhs)) > INLINE_SIZE_LIMIT {
        return false;
    }

    let deps = stmt_read_signals(&body);
    let q = &mut design.processes_mut()[qid];
    q.body = body;
    q.trigger = Trigger::Comb(deps);
    design.processes_mut().remove(pid);
    true
}
