//! Unit and property tests for the pass framework: per-pass rewrite
//! behaviour, context-width soundness corners, pipeline idempotence
//! and deterministic statistics.

use std::sync::Arc;
use uvllm_designs::all;
use uvllm_netlist::{install_default_opt, levelized_depth, opt_profile, OptLevel, PassManager};
use uvllm_sim::{elaborate, AnySim, Design, SimBackend, SimControl};

fn elaborated(source: &str, top: &str) -> Design {
    let file = uvllm_verilog::parse(source).unwrap();
    elaborate(&file, top).unwrap()
}

fn run(design: &mut Design, level: OptLevel) -> uvllm_netlist::PipelineStats {
    PassManager::standard(level).run(design)
}

/// Settles a design on both kernels and returns the named signal as a
/// `(val, xz)` pair (asserting kernel agreement on the way).
fn settled_value(design: &Design, name: &str) -> (u128, u128) {
    let design = Arc::new(design.clone());
    let id = design.signal_id(name).unwrap();
    let mut out = None;
    for backend in [SimBackend::EventDriven, SimBackend::Compiled] {
        let mut sim = AnySim::new(&design, backend).unwrap();
        sim.settle().unwrap();
        let v = sim.peek_word(id, 0);
        let pair = (v.val(), v.xz());
        if let Some(prev) = out {
            assert_eq!(prev, pair, "kernels disagree on '{name}'");
        }
        out = Some(pair);
    }
    out.unwrap()
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

#[test]
fn const_fold_reduces_signal_free_subtrees() {
    let mut design = elaborated(
        "module t(input [7:0] a, output [7:0] y);\n\
         assign y = a + (8'd2 + 8'd3);\nendmodule\n",
        "t",
    );
    let stats = run(&mut design, OptLevel::O1);
    assert!(stats.rewrites("const_fold") >= 1, "stats: {stats:?}");
}

/// The classic context-width trap: `(4'd15 + 4'd1)` must fold at the
/// *assignment* context (8 bits, where the carry survives), not at its
/// self-determined 4 bits (where it would wrap to 0).
#[test]
fn const_fold_respects_context_widths() {
    let src = "module t(output [7:0] y);\n\
               assign y = (4'd15 + 4'd1) >> 1;\nendmodule\n";
    let base = elaborated(src, "t");
    let mut opt = base.clone();
    let stats = run(&mut opt, OptLevel::O1);
    assert!(stats.rewrites("const_fold") >= 1);
    assert_eq!(settled_value(&base, "y"), (8, 0));
    assert_eq!(settled_value(&opt, "y"), (8, 0));
}

/// `x + 0` must NOT be dropped: an X in `x` poisons the sum at
/// runtime, so the identity is unsound in four-state logic. The
/// undriven `a` keeps `y` all-X, optimized or not.
#[test]
fn const_fold_keeps_x_poisoning_add() {
    let src = "module t(input [3:0] a, output [3:0] y);\n\
               assign y = a + 4'd0;\nendmodule\n";
    let base = elaborated(src, "t");
    let mut opt = base.clone();
    run(&mut opt, OptLevel::O1);
    assert_eq!(settled_value(&base, "y").1, 0xF, "baseline: X-poisoned sum");
    assert_eq!(settled_value(&opt, "y").1, 0xF, "optimized: X-poisoned sum");
}

/// `x & 0` IS four-state sound (0 wins against X) and folds away the
/// undriven operand entirely.
#[test]
fn const_fold_applies_and_zero_identity() {
    let src = "module t(input [3:0] a, output [3:0] y);\n\
               assign y = a & 4'd0;\nendmodule\n";
    let base = elaborated(src, "t");
    let mut opt = base.clone();
    let stats = run(&mut opt, OptLevel::O1);
    assert!(stats.rewrites("const_fold") >= 1);
    assert_eq!(settled_value(&base, "y"), (0, 0));
    assert_eq!(settled_value(&opt, "y"), (0, 0));
}

#[test]
fn const_fold_prunes_known_branches() {
    let src = "module t(input [3:0] a, output reg [3:0] y);\n\
               always @(*) begin\n\
               if (1'b1) y = a; else y = 4'd0;\n\
               end\nendmodule\n";
    let mut opt = elaborated(src, "t");
    let stats = run(&mut opt, OptLevel::O1);
    assert!(stats.rewrites("const_fold") >= 1, "stats: {stats:?}");
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

#[test]
fn canonicalize_moves_constants_right() {
    let src = "module t(input [3:0] a, output [3:0] y);\n\
               assign y = 4'd3 + a;\nendmodule\n";
    let mut opt = elaborated(src, "t");
    let stats = run(&mut opt, OptLevel::O1);
    assert_eq!(stats.rewrites("canonicalize"), 1, "stats: {stats:?}");
}

#[test]
fn canonicalize_leaves_noncommutative_ops_alone() {
    let src = "module t(input [3:0] a, output [3:0] y, output z);\n\
               assign y = 4'd9 - a;\n\
               assign z = 4'd9 < a;\nendmodule\n";
    let mut opt = elaborated(src, "t");
    let stats = run(&mut opt, OptLevel::O1);
    assert_eq!(stats.rewrites("canonicalize"), 0, "stats: {stats:?}");
}

// ---------------------------------------------------------------------------
// Buffer removal
// ---------------------------------------------------------------------------

#[test]
fn buffer_removal_collapses_chains() {
    let src = "module t(input [3:0] a, output [3:0] y);\n\
               wire [3:0] b, c;\n\
               assign b = a;\n\
               assign c = b;\n\
               assign y = c + 4'd1;\nendmodule\n";
    let mut opt = elaborated(src, "t");
    let nprocs = opt.processes().len();
    let stats = run(&mut opt, OptLevel::O2);
    assert_eq!(stats.rewrites("buffer_removal"), 2, "stats: {stats:?}");
    assert_eq!(opt.processes().len(), nprocs - 2);
}

/// Output-port buffers must survive: the port itself is observable.
#[test]
fn buffer_removal_spares_ports() {
    let src = "module t(input [3:0] a, output [3:0] y);\n\
               assign y = a;\nendmodule\n";
    let mut opt = elaborated(src, "t");
    let stats = run(&mut opt, OptLevel::O2);
    assert_eq!(stats.rewrites("buffer_removal"), 0);
    assert_eq!(opt.processes().len(), 1);
}

/// A buffer feeding a sequential reader keeps its one-delta lag and
/// must not be removed.
#[test]
fn buffer_removal_spares_seq_readers() {
    let src = "module t(input clk, input [3:0] a, output reg [3:0] y);\n\
               wire [3:0] b;\n\
               assign b = a;\n\
               always @(posedge clk) y <= b;\nendmodule\n";
    let mut opt = elaborated(src, "t");
    let stats = run(&mut opt, OptLevel::O2);
    assert_eq!(stats.rewrites("buffer_removal"), 0, "stats: {stats:?}");
}

// ---------------------------------------------------------------------------
// Rebalancing
// ---------------------------------------------------------------------------

#[test]
fn rebalance_flattens_comb_chains() {
    let src = "module t(input [7:0] a, input [7:0] b, input [7:0] c,\n\
               input [7:0] d, input [7:0] e, output [7:0] y);\n\
               wire [7:0] t1, t2, t3;\n\
               assign t1 = a ^ b;\n\
               assign t2 = t1 ^ c;\n\
               assign t3 = t2 ^ d;\n\
               assign y = t3 ^ e;\nendmodule\n";
    let base = elaborated(src, "t");
    let before = levelized_depth(&base);
    assert_eq!(before, 4, "chain should levelize four deep");
    let mut opt = base.clone();
    let stats = run(&mut opt, OptLevel::O3);
    assert!(stats.rewrites("rebalance") >= 3, "stats: {stats:?}");
    assert_eq!(stats.depth_before, 4);
    assert_eq!(stats.depth_after, 1, "chain should collapse to one level");
    assert_eq!(levelized_depth(&opt), 1);
}

/// A producer with two readers stays put (inlining would duplicate it
/// without removing a level from both).
#[test]
fn rebalance_spares_shared_producers() {
    let src = "module t(input [7:0] a, input [7:0] b, output [7:0] y, output [7:0] z);\n\
               wire [7:0] s;\n\
               assign s = a + b;\n\
               assign y = s + 8'd1;\n\
               assign z = s + 8'd2;\nendmodule\n";
    let mut opt = elaborated(src, "t");
    let stats = run(&mut opt, OptLevel::O3);
    assert_eq!(stats.rewrites("rebalance"), 0, "stats: {stats:?}");
}

// ---------------------------------------------------------------------------
// Pipeline properties
// ---------------------------------------------------------------------------

/// Satellite acceptance: running the pipeline twice yields a
/// structurally identical design (`Design: PartialEq`) and a quiet
/// second run, on every catalog design at every level.
#[test]
fn pipeline_is_idempotent_on_all_designs() {
    for d in all() {
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let mut once = elaborated(d.source, d.name);
            run(&mut once, level);
            let mut twice = once.clone();
            let stats = run(&mut twice, level);
            assert_eq!(
                stats.total_rewrites(),
                0,
                "{}@{}: second run rewrote: {stats:?}",
                d.name,
                level.label()
            );
            assert_eq!(stats.rounds, 1, "{}@{}", d.name, level.label());
            assert!(once == twice, "{}@{}: designs diverged", d.name, level.label());
        }
    }
}

/// Stats are a pure function of the input design: two fresh runs agree
/// field-for-field.
#[test]
fn pipeline_stats_are_deterministic() {
    for d in all() {
        let stats: Vec<_> = (0..2)
            .map(|_| {
                let mut design = elaborated(d.source, d.name);
                run(&mut design, OptLevel::O3)
            })
            .collect();
        assert_eq!(stats[0], stats[1], "{}: stats diverged across runs", d.name);
    }
}

#[test]
fn pass_pipeline_composition_follows_levels() {
    assert!(PassManager::standard(OptLevel::O0).pass_names().is_empty());
    assert_eq!(
        PassManager::standard(OptLevel::O3).pass_names(),
        ["const_fold", "canonicalize", "buffer_removal", "rebalance"]
    );
}

// ---------------------------------------------------------------------------
// Cache profile plumbing
// ---------------------------------------------------------------------------

#[test]
fn opt_profiles_carry_level_labels() {
    assert!(opt_profile(OptLevel::O0).is_none());
    let p = opt_profile(OptLevel::O2).unwrap();
    assert_eq!(p.label(), "O2");
    assert!(!p.is_identity());
    assert_eq!(OptLevel::from_u8(3), Some(OptLevel::O3));
    assert_eq!(OptLevel::from_u8(4), None);
}

#[test]
fn install_default_opt_round_trips() {
    install_default_opt(OptLevel::O1);
    assert_eq!(uvllm_sim::default_opt_profile().label(), "O1");
    install_default_opt(OptLevel::O0);
    assert!(uvllm_sim::default_opt_profile().is_identity());
}
