//! Yosys-JSON interchange tests.
//!
//! The CI contract is a JSON-level fixpoint: for every catalog design,
//! `export → import → export` must reproduce the first export
//! byte-for-byte. Signal ids may renumber on import (scalars before
//! memories), so design-level equality is NOT required — but the
//! imported design must still be port-waveform-identical to the
//! original on both kernels, which the behavioural half checks.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use uvllm_designs::all;
use uvllm_netlist::yosys;
use uvllm_sim::{elaborate, AnySim, Design, Logic, SimBackend, SimControl};

const CYCLES: usize = 50;

fn elaborated(source: &str, top: &str) -> Design {
    let file = uvllm_verilog::parse(source).unwrap();
    elaborate(&file, top).unwrap()
}

// ---------------------------------------------------------------------------
// Fixpoint
// ---------------------------------------------------------------------------

/// The headline satellite gate: `export(import(export(d)))` is
/// byte-identical to `export(d)` for all catalog designs.
#[test]
fn export_import_export_is_a_fixpoint_on_all_designs() {
    for d in all() {
        let design = elaborated(d.source, d.name);
        let first = yosys::export_string(&design);
        let imported =
            yosys::import_str(&first).unwrap_or_else(|e| panic!("{}: import failed: {e}", d.name));
        let second = yosys::export_string(&imported);
        assert_eq!(first, second, "{}: round-trip is not a fixpoint", d.name);
    }
}

/// Export is a pure function: two exports of the same design are
/// byte-identical (deterministic bit ids, member order, cell names).
#[test]
fn export_is_deterministic() {
    for d in all().iter().take(5) {
        let design = elaborated(d.source, d.name);
        assert_eq!(
            yosys::export_string(&design),
            yosys::export_string(&design),
            "{}: non-deterministic export",
            d.name
        );
    }
}

// ---------------------------------------------------------------------------
// Behavioural equivalence of imported designs
// ---------------------------------------------------------------------------

fn wide(rng: &mut StdRng) -> u128 {
    ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128
}

fn poke_all(sims: &mut [AnySim; 4], name: &str, v: Logic, ctx: &str) {
    for sim in sims.iter_mut() {
        sim.poke_by_name(name, v).unwrap_or_else(|e| panic!("{ctx}: poke {name}: {e}"));
    }
}

/// Compares ports by NAME (ids may renumber across the round-trip).
fn assert_ports_identical(sims: &[AnySim; 4], base: &Design, ctx: &str) {
    for &port in base.inputs().iter().chain(base.outputs()) {
        let name = &base.signal(port).name;
        let reference = sims[0].peek_by_name(name).unwrap();
        for (i, sim) in sims.iter().enumerate().skip(1) {
            let got = sim.peek_by_name(name).unwrap();
            assert_eq!(
                got, reference,
                "{ctx}: port '{name}': sim#{i} diverged ({got} != {reference})"
            );
        }
    }
}

/// Drives the original and the round-tripped design on both kernels in
/// lockstep under seeded random stimulus, comparing ports by name.
#[test]
fn imported_designs_are_port_identical_on_all_designs() {
    for d in all() {
        let base = Arc::new(elaborated(d.source, d.name));
        let round = Arc::new(yosys::import_str(&yosys::export_string(&base)).unwrap());
        let iface = (d.iface)();
        let ctx = format!("{}:roundtrip", d.name);
        let mut sims = [
            AnySim::new(&base, SimBackend::EventDriven).unwrap(),
            AnySim::new(&base, SimBackend::Compiled).unwrap(),
            AnySim::new(&round, SimBackend::EventDriven).unwrap(),
            AnySim::new(&round, SimBackend::Compiled).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(0x9059 ^ fnv(d.name));

        if let Some(reset) = &iface.reset {
            let assert_v = Logic::bit(!reset.active_low);
            let deassert_v = Logic::bit(reset.active_low);
            poke_all(&mut sims, &reset.name, assert_v, &ctx);
            if let Some(clk) = &iface.clock {
                poke_all(&mut sims, clk, Logic::bit(false), &ctx);
                for _ in 0..2 {
                    poke_all(&mut sims, clk, Logic::bit(true), &ctx);
                    poke_all(&mut sims, clk, Logic::bit(false), &ctx);
                }
            }
            poke_all(&mut sims, &reset.name, deassert_v, &ctx);
        } else if let Some(clk) = &iface.clock {
            poke_all(&mut sims, clk, Logic::bit(false), &ctx);
        }
        assert_ports_identical(&sims, &base, &format!("{ctx} post-reset"));

        for cycle in 0..CYCLES {
            for p in &iface.inputs {
                let v = Logic::from_u128(p.width, wide(&mut rng));
                poke_all(&mut sims, &p.name, v, &ctx);
            }
            if let Some(clk) = &iface.clock {
                poke_all(&mut sims, clk, Logic::bit(true), &ctx);
            }
            for sim in sims.iter_mut() {
                sim.settle().unwrap();
            }
            assert_ports_identical(&sims, &base, &format!("{ctx} cycle {cycle}"));
            if let Some(clk) = &iface.clock {
                poke_all(&mut sims, clk, Logic::bit(false), &ctx);
            }
        }
    }
}

fn fnv(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Export structure
// ---------------------------------------------------------------------------

#[test]
fn export_uses_standard_cells_for_simple_shapes() {
    let design = elaborated(
        "module t(input clk, input [3:0] a, input [3:0] b, input s,\n\
         output [3:0] sum, output reg [3:0] q, output [3:0] m);\n\
         assign sum = a + b;\n\
         assign m = s ? a : b;\n\
         always @(posedge clk) q <= sum;\nendmodule\n",
        "t",
    );
    let text = yosys::export_string(&design);
    assert!(text.contains("\"$add\""), "adder should export as $add:\n{text}");
    assert!(text.contains("\"$mux\""), "ternary should export as $mux:\n{text}");
    assert!(text.contains("\"$dff\""), "register should export as $dff:\n{text}");
    assert!(
        !text.contains("$uvllm.process"),
        "no fallback cells expected for standard shapes:\n{text}"
    );
}

#[test]
fn export_falls_back_to_process_cells() {
    let design = elaborated(
        "module t(input [1:0] sel, output reg [3:0] y);\n\
         always @(*) begin\n\
         case (sel)\n\
         2'd0: y = 4'd1;\n\
         2'd1: y = 4'd2;\n\
         default: y = 4'd0;\n\
         endcase\n\
         end\nendmodule\n",
        "t",
    );
    let text = yosys::export_string(&design);
    assert!(text.contains("$uvllm.process"), "case dispatch needs the extension cell:\n{text}");
    assert!(text.contains("(case "), "BODY should carry the case S-expression:\n{text}");
}

#[test]
fn export_places_memories_outside_the_bit_space() {
    let design = elaborated(
        "module t(input clk, input we, input [1:0] addr, input [7:0] din,\n\
         output [7:0] dout);\n\
         reg [7:0] mem [3:0];\n\
         always @(posedge clk) if (we) mem[addr] <= din;\n\
         assign dout = mem[addr];\nendmodule\n",
        "t",
    );
    let json = yosys::export(&design);
    let module = match json.get("modules") {
        Some(uvllm_json::Json::Obj(m)) => &m[0].1,
        _ => panic!("missing module"),
    };
    let memories = module.get("memories").unwrap();
    assert!(memories.get("mem").is_some(), "array signal should land in 'memories'");
    let netnames = module.get("netnames").unwrap();
    assert!(netnames.get("mem").is_none(), "memories must not claim bit ids");
}

// ---------------------------------------------------------------------------
// Import of third-party (hand-written) netlists
// ---------------------------------------------------------------------------

/// A minimal hand-written netlist in the shape Yosys itself produces:
/// an adder feeding a register, plus an aliased output net.
const THIRD_PARTY: &str = r#"{
  "creator": "Yosys 0.38",
  "modules": {
    "third": {
      "ports": {
        "clk": { "direction": "input", "bits": [2] },
        "a": { "direction": "input", "bits": [3, 4, 5, 6] },
        "b": { "direction": "input", "bits": [7, 8, 9, 10] },
        "q": { "direction": "output", "bits": [11, 12, 13, 14] },
        "mirror": { "direction": "output", "bits": [11, 12, 13, 14] }
      },
      "cells": {
        "add0": {
          "hide_name": 0,
          "type": "$add",
          "parameters": { "A_SIGNED": 0, "A_WIDTH": 4, "B_SIGNED": 0, "B_WIDTH": 4, "Y_WIDTH": 4 },
          "attributes": {},
          "port_directions": { "A": "input", "B": "input", "Y": "output" },
          "connections": { "A": [3, 4, 5, 6], "B": [7, 8, 9, 10], "Y": [15, 16, 17, 18] }
        },
        "dff0": {
          "hide_name": 0,
          "type": "$dff",
          "parameters": { "CLK_POLARITY": 1, "WIDTH": 4 },
          "attributes": {},
          "port_directions": { "CLK": "input", "D": "input", "Q": "output" },
          "connections": { "CLK": [2], "D": [15, 16, 17, 18], "Q": [11, 12, 13, 14] }
        }
      },
      "netnames": {
        "sum": { "hide_name": 0, "bits": [15, 16, 17, 18], "attributes": {} }
      }
    }
  }
}"#;

#[test]
fn import_accepts_third_party_netlists() {
    let design = yosys::import_str(THIRD_PARTY).unwrap();
    assert_eq!(design.top, "third");
    // `mirror` aliases `q`'s bits and gets a synthesized buffer driver.
    let design = Arc::new(design);
    for backend in [SimBackend::EventDriven, SimBackend::Compiled] {
        let mut sim = AnySim::new(&design, backend).unwrap();
        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
        sim.poke_by_name("a", Logic::from_u128(4, 5)).unwrap();
        sim.poke_by_name("b", Logic::from_u128(4, 6)).unwrap();
        sim.poke_by_name("clk", Logic::bit(true)).unwrap();
        sim.settle().unwrap();
        let q = sim.peek_by_name("q").unwrap();
        assert_eq!(q.to_u128(), Some(11), "{backend:?}: q = a + b after the edge");
        let mirror = sim.peek_by_name("mirror").unwrap();
        assert_eq!(mirror.to_u128(), Some(11), "{backend:?}: mirror aliases q");
    }
}

#[test]
fn import_handles_constant_bits_in_connections() {
    let text = r#"{
  "modules": {
    "t": {
      "ports": {
        "a": { "direction": "input", "bits": [2, 3] },
        "y": { "direction": "output", "bits": [4, 5, 6, 7] }
      },
      "cells": {
        "c0": {
          "type": "$pos",
          "parameters": { "A_SIGNED": 0, "A_WIDTH": 4, "Y_WIDTH": 4 },
          "connections": { "A": [2, 3, "1", "0"], "Y": [4, 5, 6, 7] }
        }
      },
      "netnames": {}
    }
  }
}"#;
    let design = Arc::new(yosys::import_str(text).unwrap());
    for backend in [SimBackend::EventDriven, SimBackend::Compiled] {
        let mut sim = AnySim::new(&design, backend).unwrap();
        sim.poke_by_name("a", Logic::from_u128(2, 0b10)).unwrap();
        sim.settle().unwrap();
        // y = {1'b0, 1'b1, a[1], a[0]} = 4'b0110.
        let y = sim.peek_by_name("y").unwrap();
        assert_eq!(y.to_u128(), Some(0b0110), "{backend:?}");
    }
}

#[test]
fn import_builds_async_reset_flops() {
    let text = r#"{
  "modules": {
    "t": {
      "ports": {
        "clk": { "direction": "input", "bits": [2] },
        "rst": { "direction": "input", "bits": [3] },
        "d": { "direction": "input", "bits": [4, 5] },
        "q": { "direction": "output", "bits": [6, 7] }
      },
      "cells": {
        "ff": {
          "type": "$adff",
          "parameters": { "CLK_POLARITY": 1, "ARST_POLARITY": 1, "ARST_VALUE": "11", "WIDTH": 2 },
          "connections": { "CLK": [2], "ARST": [3], "D": [4, 5], "Q": [6, 7] }
        }
      },
      "netnames": {}
    }
  }
}"#;
    let design = Arc::new(yosys::import_str(text).unwrap());
    for backend in [SimBackend::EventDriven, SimBackend::Compiled] {
        let mut sim = AnySim::new(&design, backend).unwrap();
        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
        sim.poke_by_name("d", Logic::from_u128(2, 0b01)).unwrap();
        // Async reset forces the ARST_VALUE without a clock edge.
        sim.poke_by_name("rst", Logic::bit(true)).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek_by_name("q").unwrap().to_u128(), Some(0b11), "{backend:?} reset");
        // Release reset, clock the data through.
        sim.poke_by_name("rst", Logic::bit(false)).unwrap();
        sim.poke_by_name("clk", Logic::bit(true)).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek_by_name("q").unwrap().to_u128(), Some(0b01), "{backend:?} clock");
    }
}

/// The committed third-party fixture must import, simulate correctly
/// on both kernels, survive the pass pipeline, and reach the export
/// fixpoint — the same gates CI drives through the campaign CLI.
#[test]
fn committed_third_party_fixture_imports_and_simulates() {
    let text = include_str!("../../designs/fixtures/third_party_alu.json");
    let base = yosys::import_str(text).unwrap();
    assert_eq!(base.top, "third_party_alu");

    let mut opt = base.clone();
    uvllm_netlist::PassManager::standard(uvllm_netlist::OptLevel::O3).run(&mut opt);
    let base = Arc::new(base);
    let opt = Arc::new(opt);
    for design in [&base, &opt] {
        for backend in [SimBackend::EventDriven, SimBackend::Compiled] {
            let mut sim = AnySim::new(design, backend).unwrap();
            sim.poke_by_name("clk", Logic::bit(false)).unwrap();
            sim.poke_by_name("a", Logic::from_u128(4, 9)).unwrap();
            sim.poke_by_name("b", Logic::from_u128(4, 3)).unwrap();
            sim.poke_by_name("op", Logic::bit(false)).unwrap();
            sim.settle().unwrap();
            // op=0 selects the adder leg of the mux.
            assert_eq!(sim.peek_by_name("y").unwrap().to_u128(), Some(12), "{backend:?} add");
            assert_eq!(
                sim.peek_by_name("y_mirror").unwrap().to_u128(),
                Some(12),
                "{backend:?} alias"
            );
            sim.poke_by_name("op", Logic::bit(true)).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.peek_by_name("y").unwrap().to_u128(), Some(6), "{backend:?} sub");
            // The clock edge latches y into q; q != 0 raises q_nonzero.
            sim.poke_by_name("clk", Logic::bit(true)).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.peek_by_name("q").unwrap().to_u128(), Some(6), "{backend:?} dff");
            assert_eq!(
                sim.peek_by_name("q_nonzero").unwrap().to_u128(),
                Some(1),
                "{backend:?} reduce_or"
            );
        }
    }

    // Our export of the import must be a fixpoint.
    let first = yosys::export_string(&base);
    let second = yosys::export_string(&yosys::import_str(&first).unwrap());
    assert_eq!(first, second, "fixture re-export is not a fixpoint");
}

#[test]
fn import_rejects_unknown_cells_and_multi_module_files() {
    let unknown = r#"{"modules":{"t":{"ports":{},"cells":{"c":{"type":"$frobnicate","connections":{}}},"netnames":{}}}}"#;
    let err = yosys::import_str(unknown).unwrap_err();
    assert!(err.message.contains("unsupported cell"), "got: {err}");

    let multi = r#"{"modules":{"a":{"ports":{},"cells":{},"netnames":{}},"b":{"ports":{},"cells":{},"netnames":{}}}}"#;
    let err = yosys::import_str(multi).unwrap_err();
    assert!(err.message.contains("exactly one module"), "got: {err}");

    let err = yosys::import_str("not json").unwrap_err();
    assert!(err.message.contains("bad JSON"), "got: {err}");
}
