//! Differential safety net for the pass pipeline: on every benchmark
//! design, at every optimization level, the optimized design must be
//! **port-waveform-identical** to the unoptimized one on both kernels
//! under seeded random stimulus.
//!
//! Ports (not all signals) are compared because passes may orphan
//! internal nets — that is the whole point of buffer removal — but
//! anything observable at the module boundary is pinned bit-for-bit,
//! X-propagation included: the pre-reset phase runs with every
//! non-reset input at X.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use uvllm_designs::all;
use uvllm_netlist::{levelized_depth, OptLevel, PassManager};
use uvllm_sim::{elaborate, AnySim, Design, Logic, SimBackend, SimControl};

/// Cycles of random stimulus per (design, level).
const CYCLES: usize = 100;

const LEVELS: [OptLevel; 3] = [OptLevel::O1, OptLevel::O2, OptLevel::O3];

fn elaborated(source: &str, top: &str) -> Design {
    let file = uvllm_verilog::parse(source).unwrap();
    elaborate(&file, top).unwrap()
}

fn optimized(base: &Design, level: OptLevel) -> Design {
    let mut design = base.clone();
    PassManager::standard(level).run(&mut design);
    design
}

fn wide(rng: &mut StdRng) -> u128 {
    ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128
}

/// Pokes all four sims (base/opt × event/compiled) with one value.
fn poke_all(sims: &mut [AnySim; 4], name: &str, v: Logic, ctx: &str) {
    for sim in sims.iter_mut() {
        sim.poke_by_name(name, v).unwrap_or_else(|e| panic!("{ctx}: poke {name}: {e}"));
    }
}

/// Asserts all four sims agree on every port of the base design.
fn assert_ports_identical(sims: &[AnySim; 4], base: &Design, ctx: &str) {
    // Passes never renumber signals, so port ids are shared across the
    // base and optimized designs.
    for &port in base.inputs().iter().chain(base.outputs()) {
        let name = &base.signal(port).name;
        let reference = sims[0].peek_word(port, 0);
        for (i, sim) in sims.iter().enumerate().skip(1) {
            let got = sim.peek_word(port, 0);
            assert_eq!(
                got, reference,
                "{ctx}: port '{name}': sim#{i} diverged ({got} != {reference})"
            );
        }
    }
}

/// Drives the base and optimized designs on both kernels in lockstep,
/// comparing ports after every poke settle.
fn drive_matrix(d: &uvllm_designs::Design, level: OptLevel, seed: u64) {
    let base = Arc::new(elaborated(d.source, d.name));
    let opt = Arc::new(optimized(&base, level));
    let iface = (d.iface)();
    let ctx = format!("{}@{}", d.name, level.label());
    let mut sims = [
        AnySim::new(&base, SimBackend::EventDriven).unwrap(),
        AnySim::new(&base, SimBackend::Compiled).unwrap(),
        AnySim::new(&opt, SimBackend::EventDriven).unwrap(),
        AnySim::new(&opt, SimBackend::Compiled).unwrap(),
    ];
    assert_ports_identical(&sims, &base, &ctx);

    let mut rng = StdRng::seed_from_u64(seed);

    // Reset protocol, mirroring the kernel-equivalence suite. The
    // pre-reset cycles exercise the X regime on the optimized design.
    if let Some(reset) = &iface.reset {
        let assert_v = Logic::bit(!reset.active_low);
        let deassert_v = Logic::bit(reset.active_low);
        poke_all(&mut sims, &reset.name, assert_v, &ctx);
        if let Some(clk) = &iface.clock {
            poke_all(&mut sims, clk, Logic::bit(false), &ctx);
            for _ in 0..2 {
                poke_all(&mut sims, clk, Logic::bit(true), &ctx);
                poke_all(&mut sims, clk, Logic::bit(false), &ctx);
            }
        }
        poke_all(&mut sims, &reset.name, deassert_v, &ctx);
    } else if let Some(clk) = &iface.clock {
        poke_all(&mut sims, clk, Logic::bit(false), &ctx);
    }
    assert_ports_identical(&sims, &base, &format!("{ctx} post-reset"));

    for cycle in 0..CYCLES {
        for p in &iface.inputs {
            let v = Logic::from_u128(p.width, wide(&mut rng));
            poke_all(&mut sims, &p.name, v, &ctx);
        }
        if let Some(clk) = &iface.clock {
            poke_all(&mut sims, clk, Logic::bit(true), &ctx);
        }
        for sim in sims.iter_mut() {
            sim.settle().unwrap();
        }
        assert_ports_identical(&sims, &base, &format!("{ctx} cycle {cycle}"));
        if let Some(clk) = &iface.clock {
            poke_all(&mut sims, clk, Logic::bit(false), &ctx);
        }
    }
}

/// The headline acceptance test: all 27 designs × 3 levels × both
/// kernels, optimized ports identical to unoptimized ones.
#[test]
fn optimized_designs_are_port_identical_on_all_designs() {
    for d in all() {
        for level in LEVELS {
            drive_matrix(d, level, 0x0707 ^ fnv(d.name));
        }
    }
}

/// At the top level the whole catalog must still levelize: no pass may
/// introduce a comb cycle, and depth never increases.
#[test]
fn passes_never_deepen_the_comb_schedule() {
    for d in all() {
        let base = elaborated(d.source, d.name);
        let before = levelized_depth(&base);
        for level in LEVELS {
            let after = levelized_depth(&optimized(&base, level));
            assert!(after <= before, "{}@{}: depth {before} -> {after}", d.name, level.label());
        }
    }
}

/// Per-design stimulus seeds stay stable across catalog reordering.
fn fnv(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
