//! Evaluation metrics: Hit Rate (HR), Fix Rate (FR) and execution time
//! (§IV-A of the paper).
//!
//! * **HR** — the candidate passes the finite public test set `T_pub`
//!   (each design's directed vectors). Methods that iterate against
//!   `T_pub` can overfit it; methods whose own testbench misses the bug
//!   "pass" without repairing anything — both inflate HR exactly as the
//!   paper describes.
//! * **FR** — the mechanized stand-in for the paper's independent expert
//!   validation: the candidate must be behaviourally equivalent to the
//!   golden model under an extended differential campaign (multiple
//!   random seeds, corner patterns and the directed vectors). The
//!   campaign's first seed extends the dataset-validation run, so any
//!   instance admitted to the benchmark is guaranteed to fail FR before
//!   repair.

use uvllm_designs::Design;
use uvllm_sim::SimBackend;
use uvllm_uvm::{CornerSequence, DirectedSequence, Environment, RandomSequence, Sequence};

/// Seed of the first FR random campaign; the dataset builder validates
/// instances against a prefix of this exact stream.
pub const FR_PRIMARY_SEED: u64 = 7;
/// Cycles in the dataset-validation prefix.
pub const VALIDATION_CYCLES: usize = 150;
/// Cycles per random seed in the full FR campaign.
pub const FR_CYCLES: usize = 800;
/// Additional FR seeds beyond the primary one.
pub const FR_EXTRA_SEEDS: [u64; 2] = [8, 9];

/// How a metric run ended — the campaign's distinct outcome classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every checked cycle matched the golden model.
    Pass,
    /// The run completed (or aborted for a non-oscillation reason) with
    /// mismatches or another failure.
    Mismatch,
    /// The DUT oscillated: `SimError::Unstable` with the activation
    /// count at the simulator's cap.
    Unstable {
        /// Process activations performed before giving up.
        activations: usize,
    },
    /// The code did not parse/elaborate (or lost a required port).
    BuildFailed,
    /// The evaluation itself panicked; the campaign worker caught the
    /// unwind, quarantined the job and recorded this row instead of
    /// dying (fault isolation — see `uvllm-campaign`'s worker pool).
    WorkerPanic,
    /// The job blew its per-job wall-clock deadline and was quarantined
    /// by the campaign watchdog.
    JobTimeout,
}

impl Verdict {
    /// True only for [`Verdict::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// Stable label used in campaign JSONL rows.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Mismatch => "mismatch",
            Verdict::Unstable { .. } => "unstable",
            Verdict::BuildFailed => "build-failed",
            Verdict::WorkerPanic => "worker_panic",
            Verdict::JobTimeout => "job_timeout",
        }
    }
}

/// Runs a set of sequences against `code` and classifies the outcome.
///
/// Metric runs are pure pass/fail: the environment runs with waveform
/// capture disabled (nobody reads the frames), and on the compiled
/// backend the simulation instance comes out of the process-wide
/// reset-reuse pool ([`uvllm_sim::checkout_sim`]) — the hit + fix runs
/// of one candidate text share one instance.
fn run_verdict(
    code: &str,
    design: &Design,
    seqs: Vec<Box<dyn Sequence>>,
    backend: SimBackend,
) -> Verdict {
    let iface = (design.iface)();
    match Environment::from_source_with(code, design.name, iface, (design.model)(), seqs, backend) {
        Ok(env) => {
            let summary = env.without_waveform().run();
            if summary.all_passed() {
                Verdict::Pass
            } else if let Some(activations) = summary.unstable {
                Verdict::Unstable { activations }
            } else {
                Verdict::Mismatch
            }
        }
        // A Sim error at construction can only be time-zero oscillation
        // (the build itself succeeded), and the engine always gives up
        // exactly at its activation cap.
        Err(uvllm_uvm::UvmError::Sim(_)) => {
            Verdict::Unstable { activations: uvllm_sim::MAX_ACTIVATIONS }
        }
        Err(_) => Verdict::BuildFailed,
    }
}

fn hit_seqs(design: &Design) -> Vec<Box<dyn Sequence>> {
    vec![Box::new(DirectedSequence::new("public", (design.directed_vectors)()))]
}

fn fr_seqs(design: &Design) -> Vec<Box<dyn Sequence>> {
    let iface = (design.iface)();
    let mut seqs: Vec<Box<dyn Sequence>> = vec![
        Box::new(RandomSequence::new(&iface.inputs, FR_CYCLES, FR_PRIMARY_SEED)),
        Box::new(CornerSequence::new(&iface.inputs)),
        Box::new(DirectedSequence::new("public", (design.directed_vectors)())),
    ];
    for seed in FR_EXTRA_SEEDS {
        seqs.push(Box::new(RandomSequence::new(&iface.inputs, FR_CYCLES, seed)));
    }
    seqs
}

/// Hit-Rate check: does `code` pass the public directed vectors?
pub fn hit_confirmed(design: &Design, code: &str) -> bool {
    hit_confirmed_with(design, code, SimBackend::from_env())
}

/// [`hit_confirmed`] on an explicit simulation backend.
pub fn hit_confirmed_with(design: &Design, code: &str, backend: SimBackend) -> bool {
    run_verdict(code, design, hit_seqs(design), backend).passed()
}

/// Fix-Rate check: extended differential validation against the golden
/// model (the mechanized "expert review").
pub fn fix_confirmed(design: &Design, code: &str) -> bool {
    fix_confirmed_with(design, code, SimBackend::from_env())
}

/// [`fix_confirmed`] on an explicit simulation backend.
pub fn fix_confirmed_with(design: &Design, code: &str, backend: SimBackend) -> bool {
    fix_verdict_with(design, code, backend).passed()
}

/// The full classified Fix-Rate outcome: lets campaign rows distinguish
/// "fails the differential campaign" from "oscillates" from "does not
/// build".
pub fn fix_verdict_with(design: &Design, code: &str, backend: SimBackend) -> Verdict {
    run_verdict(code, design, fr_seqs(design), backend)
}

/// The quick validation run used by the dataset builder: a strict prefix
/// of the FR campaign, so "fails validation" implies "fails FR".
pub fn mutant_is_detectable(design: &Design, code: &str) -> bool {
    mutant_is_detectable_with(design, code, SimBackend::from_env())
}

/// [`mutant_is_detectable`] on an explicit simulation backend.
pub fn mutant_is_detectable_with(design: &Design, code: &str, backend: SimBackend) -> bool {
    let iface = (design.iface)();
    let seqs: Vec<Box<dyn Sequence>> = vec![
        Box::new(RandomSequence::new(&iface.inputs, VALIDATION_CYCLES, FR_PRIMARY_SEED)),
        Box::new(CornerSequence::new(&iface.inputs)),
    ];
    !run_verdict(code, design, seqs, backend).passed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_designs::by_name;

    #[test]
    fn pristine_designs_pass_both_metrics() {
        for name in ["adder_8bit", "counter_12", "fifo_sync", "alu_8bit"] {
            let d = by_name(name).unwrap();
            assert!(hit_confirmed(d, d.source), "{name} HR");
            assert!(fix_confirmed(d, d.source), "{name} FR");
        }
    }

    #[test]
    fn carry_bug_passes_hr_but_fails_fr() {
        // The weak directed vectors of adder_8bit never produce a carry,
        // so a broken carry chain "hits" but is not "fixed" — the
        // HR-vs-FR gap of Figures 5/6 in one test.
        let d = by_name("adder_8bit").unwrap();
        let buggy = d.source.replace(
            "assign {cout, sum} = a + b + {7'd0, cin};",
            "assign sum = a + b + {7'd0, cin};\nassign cout = 1'b0;",
        );
        assert_ne!(buggy, d.source);
        assert!(hit_confirmed(d, &buggy), "weak tests should miss the bug");
        assert!(!fix_confirmed(d, &buggy), "differential campaign must catch it");
    }

    #[test]
    fn syntax_broken_code_fails_both() {
        let d = by_name("mux4").unwrap();
        let broken = d.source.replace(';', "");
        assert!(!hit_confirmed(d, &broken));
        assert!(!fix_confirmed(d, &broken));
    }

    #[test]
    fn compiled_metric_runs_reuse_pooled_instances() {
        // The six metric runs of a campaign job hit the same candidate
        // text repeatedly: after the first, the compiled backend must
        // serve checkouts by rewinding a parked instance, not by
        // rebuilding one.
        let d = by_name("gray_counter_4").unwrap();
        // A comment makes the text (and so the pool key) unique to this
        // test; the counters are process-global.
        let code = format!("{}// pool-reuse probe\n", d.source);
        let before = uvllm_sim::sim_pool_stats();
        assert!(hit_confirmed_with(d, &code, uvllm_sim::SimBackend::Compiled));
        assert!(fix_confirmed_with(d, &code, uvllm_sim::SimBackend::Compiled));
        assert!(hit_confirmed_with(d, &code, uvllm_sim::SimBackend::Compiled));
        let after = uvllm_sim::sim_pool_stats();
        assert!(after.checkouts - before.checkouts >= 3);
        assert!(after.reuses - before.reuses >= 2, "later runs rewind the parked instance");
    }

    #[test]
    fn validation_prefix_implies_fr_failure() {
        // Any mutant flagged by the validation run must also fail FR.
        let d = by_name("counter_12").unwrap();
        let buggy = d.source.replace("4'd11", "4'd13");
        if mutant_is_detectable(d, &buggy) {
            assert!(!fix_confirmed(d, &buggy));
        }
    }
}
