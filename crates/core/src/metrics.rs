//! Evaluation metrics: Hit Rate (HR), Fix Rate (FR) and execution time
//! (§IV-A of the paper).
//!
//! * **HR** — the candidate passes the finite public test set `T_pub`
//!   (each design's directed vectors). Methods that iterate against
//!   `T_pub` can overfit it; methods whose own testbench misses the bug
//!   "pass" without repairing anything — both inflate HR exactly as the
//!   paper describes.
//! * **FR** — the mechanized stand-in for the paper's independent expert
//!   validation: the candidate must be behaviourally equivalent to the
//!   golden model under an extended differential campaign (multiple
//!   random seeds, corner patterns and the directed vectors). The
//!   campaign's first seed extends the dataset-validation run, so any
//!   instance admitted to the benchmark is guaranteed to fail FR before
//!   repair.

use uvllm_designs::Design;
use uvllm_uvm::{CornerSequence, DirectedSequence, Environment, RandomSequence, Sequence};

/// Seed of the first FR random campaign; the dataset builder validates
/// instances against a prefix of this exact stream.
pub const FR_PRIMARY_SEED: u64 = 7;
/// Cycles in the dataset-validation prefix.
pub const VALIDATION_CYCLES: usize = 150;
/// Cycles per random seed in the full FR campaign.
pub const FR_CYCLES: usize = 800;
/// Additional FR seeds beyond the primary one.
pub const FR_EXTRA_SEEDS: [u64; 2] = [8, 9];

/// Runs a set of sequences against `code`; true when everything passed.
fn passes(code: &str, design: &Design, seqs: Vec<Box<dyn Sequence>>) -> bool {
    let iface = (design.iface)();
    match Environment::from_source(code, design.name, iface, (design.model)(), seqs) {
        Ok(env) => env.run().all_passed(),
        Err(_) => false,
    }
}

/// Hit-Rate check: does `code` pass the public directed vectors?
pub fn hit_confirmed(design: &Design, code: &str) -> bool {
    passes(
        code,
        design,
        vec![Box::new(DirectedSequence::new("public", (design.directed_vectors)()))],
    )
}

/// Fix-Rate check: extended differential validation against the golden
/// model (the mechanized "expert review").
pub fn fix_confirmed(design: &Design, code: &str) -> bool {
    let iface = (design.iface)();
    let mut seqs: Vec<Box<dyn Sequence>> = vec![
        Box::new(RandomSequence::new(&iface.inputs, FR_CYCLES, FR_PRIMARY_SEED)),
        Box::new(CornerSequence::new(&iface.inputs)),
        Box::new(DirectedSequence::new("public", (design.directed_vectors)())),
    ];
    for seed in FR_EXTRA_SEEDS {
        seqs.push(Box::new(RandomSequence::new(&iface.inputs, FR_CYCLES, seed)));
    }
    passes(code, design, seqs)
}

/// The quick validation run used by the dataset builder: a strict prefix
/// of the FR campaign, so "fails validation" implies "fails FR".
pub fn mutant_is_detectable(design: &Design, code: &str) -> bool {
    let iface = (design.iface)();
    let seqs: Vec<Box<dyn Sequence>> = vec![
        Box::new(RandomSequence::new(&iface.inputs, VALIDATION_CYCLES, FR_PRIMARY_SEED)),
        Box::new(CornerSequence::new(&iface.inputs)),
    ];
    !passes(code, design, seqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_designs::by_name;

    #[test]
    fn pristine_designs_pass_both_metrics() {
        for name in ["adder_8bit", "counter_12", "fifo_sync", "alu_8bit"] {
            let d = by_name(name).unwrap();
            assert!(hit_confirmed(d, d.source), "{name} HR");
            assert!(fix_confirmed(d, d.source), "{name} FR");
        }
    }

    #[test]
    fn carry_bug_passes_hr_but_fails_fr() {
        // The weak directed vectors of adder_8bit never produce a carry,
        // so a broken carry chain "hits" but is not "fixed" — the
        // HR-vs-FR gap of Figures 5/6 in one test.
        let d = by_name("adder_8bit").unwrap();
        let buggy = d.source.replace(
            "assign {cout, sum} = a + b + {7'd0, cin};",
            "assign sum = a + b + {7'd0, cin};\nassign cout = 1'b0;",
        );
        assert_ne!(buggy, d.source);
        assert!(hit_confirmed(d, &buggy), "weak tests should miss the bug");
        assert!(!fix_confirmed(d, &buggy), "differential campaign must catch it");
    }

    #[test]
    fn syntax_broken_code_fails_both() {
        let d = by_name("mux4").unwrap();
        let broken = d.source.replace(';', "");
        assert!(!hit_confirmed(d, &broken));
        assert!(!fix_confirmed(d, &broken));
    }

    #[test]
    fn validation_prefix_implies_fr_failure() {
        // Any mutant flagged by the validation run must also fail FR.
        let d = by_name("counter_12").unwrap();
        let buggy = d.source.replace("4'd11", "4'd13");
        if mutant_is_detectable(d, &buggy) {
            assert!(!fix_confirmed(d, &buggy));
        }
    }
}
