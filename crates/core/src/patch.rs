//! Applying structured repair pairs to source text.

use std::fmt;
use uvllm_llm::RepairPair;

/// Result of applying a batch of repair pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchReport {
    /// Pairs whose `original` anchored and were replaced.
    pub applied: Vec<RepairPair>,
    /// Pairs whose `original` was not found in the code.
    pub unmatched: Vec<RepairPair>,
}

impl PatchReport {
    /// True when at least one pair applied.
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }
}

impl fmt::Display for PatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} applied, {} unmatched", self.applied.len(), self.unmatched.len())
    }
}

/// Applies each pair by exact-match substitution of the **first**
/// occurrence of `original` — the contract of Fig. 4's structured
/// outputs. Pairs that do not anchor are reported, not errors: the
/// pipeline treats a fully-unmatched response as a wasted iteration.
pub fn apply_pairs(code: &str, pairs: &[RepairPair]) -> (String, PatchReport) {
    let mut out = code.to_string();
    let mut report = PatchReport { applied: Vec::new(), unmatched: Vec::new() };
    for pair in pairs {
        if pair.original.is_empty() || pair.original == pair.patched {
            report.unmatched.push(pair.clone());
            continue;
        }
        match out.find(&pair.original) {
            Some(at) => {
                out.replace_range(at..at + pair.original.len(), &pair.patched);
                report.applied.push(pair.clone());
            }
            None => report.unmatched.push(pair.clone()),
        }
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(o: &str, p: &str) -> RepairPair {
        RepairPair { original: o.to_string(), patched: p.to_string() }
    }

    #[test]
    fn applies_first_occurrence() {
        let code = "assign y = a - b;\nassign z = a - b;\n";
        let (out, report) = apply_pairs(code, &[pair("a - b", "a + b")]);
        assert_eq!(out, "assign y = a + b;\nassign z = a - b;\n");
        assert!(report.changed());
        assert_eq!(report.applied.len(), 1);
    }

    #[test]
    fn unmatched_pairs_reported() {
        let code = "assign y = a;\n";
        let (out, report) = apply_pairs(code, &[pair("not here", "x")]);
        assert_eq!(out, code);
        assert!(!report.changed());
        assert_eq!(report.unmatched.len(), 1);
    }

    #[test]
    fn noop_and_empty_pairs_are_unmatched() {
        let code = "wire w;\n";
        let (out, report) = apply_pairs(code, &[pair("", "x"), pair("wire", "wire")]);
        assert_eq!(out, code);
        assert_eq!(report.unmatched.len(), 2);
    }

    #[test]
    fn multiple_pairs_apply_in_order() {
        let code = "a - b;\nc & d;\n";
        let (out, report) = apply_pairs(code, &[pair("a - b", "a + b"), pair("c & d", "c | d")]);
        assert_eq!(out, "a + b;\nc | d;\n");
        assert_eq!(report.applied.len(), 2);
    }

    #[test]
    fn later_pair_can_anchor_on_earlier_result() {
        let code = "x = 1;\n";
        let (out, _) = apply_pairs(code, &[pair("x = 1", "x = 2"), pair("x = 2", "x = 3")]);
        assert_eq!(out, "x = 3;\n");
    }
}
