//! The four pipeline stages of Fig. 2: pre-processing (Algorithm 1),
//! UVM processing, post-processing (Algorithm 2) and repair.

use crate::patch::apply_pairs;
use std::time::Duration;
use uvllm_designs::Design;
use uvllm_dfg::suspicious_lines;
use uvllm_llm::{
    AgentRole, CompleteResponse, ErrorInfo, LlmService, MismatchInfo, OutputMode, RepairPair,
    RepairPrompt, RepairResponse,
};
use uvllm_sim::SimBackend;
use uvllm_uvm::{
    CornerSequence, DirectedSequence, Environment, RandomSequence, RunSummary, Sequence, UvmError,
};

/// Limit on mismatch records forwarded to prompts (token budget).
pub const MAX_MISMATCH_RECORDS: usize = 5;

/// Statistics of one pre-processing invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PreprocessStats {
    /// Lint→fix iterations performed.
    pub iterations: usize,
    /// Warning fixes applied by scripts (no LLM).
    pub script_fixes: usize,
    /// LLM calls made for syntax errors.
    pub llm_calls: usize,
    /// Simulated LLM latency spent here.
    pub llm_time: Duration,
    /// Whether the code changed at all.
    pub changed: bool,
    /// True when the stage exited with the code lint-clean.
    pub clean: bool,
}

/// Pre-processes the DUT with the joint LLM-script loop of Algorithm 1:
/// lint; syntax errors go to the LLM agent, fixable warnings to the
/// script templates; iterate until clean or `max_iters`.
///
/// The LLM is consumed through the [`LlmService`] submit/await
/// protocol: on a shared [`uvllm_llm::BatchedLlm`] the await is where
/// this job's round trip overlaps other workers' simulation time.
pub fn preprocess(
    code: &str,
    spec: &str,
    llm: &mut dyn LlmService,
    output_mode: OutputMode,
    max_iters: usize,
) -> (String, PreprocessStats) {
    let mut code = code.to_string();
    let mut stats = PreprocessStats::default();
    for _ in 0..max_iters {
        let report = uvllm_lint::lint(&code);
        if !report.errors().is_empty() {
            stats.iterations += 1;
            let log = report.render(&code);
            let prompt = RepairPrompt::new(AgentRole::SyntaxFixer, spec, &code)
                .with_error_info(ErrorInfo::LintLog(log))
                .with_output_mode(output_mode);
            let ticket = llm.submit(&prompt);
            let Ok(completion) = llm.await_completion(ticket) else { break };
            stats.llm_calls += 1;
            stats.llm_time += completion.latency;
            match output_mode {
                OutputMode::Pairs => {
                    if let Ok(resp) = RepairResponse::parse(&completion.content) {
                        let (next, report) = apply_pairs(&code, &resp.correct);
                        if report.changed() {
                            stats.changed = true;
                            code = next;
                        }
                    }
                }
                OutputMode::Complete => {
                    if let Ok(resp) = CompleteResponse::parse(&completion.content) {
                        if resp.code != code && !resp.code.trim().is_empty() {
                            stats.changed = true;
                            code = resp.code;
                        }
                    }
                }
            }
        } else if !report.fixable_warnings().is_empty() {
            stats.iterations += 1;
            let (next, n) = uvllm_lint::apply_fixes(&code, &report);
            stats.script_fixes += n;
            if n > 0 {
                stats.changed = true;
                code = next;
            } else {
                break;
            }
        } else {
            stats.clean = true;
            break;
        }
    }
    stats.clean = uvllm_lint::lint(&code).is_clean();
    (code, stats)
}

/// Outcome of the UVM processing stage.
#[derive(Debug)]
pub enum UvmOutcome {
    /// The testbench ran; inspect the summary.
    Ran(Box<RunSummary>),
    /// The DUT failed to build (syntax or elaboration error text).
    BuildFailed(String),
}

impl UvmOutcome {
    /// The rollback score: pass rate, or 0 for unbuildable code.
    pub fn score(&self) -> f64 {
        match self {
            UvmOutcome::Ran(s) => s.pass_rate,
            UvmOutcome::BuildFailed(_) => 0.0,
        }
    }

    /// True when every checked cycle matched.
    pub fn passed(&self) -> bool {
        matches!(self, UvmOutcome::Ran(s) if s.all_passed())
    }
}

/// Runs the UVM testbench (random + corner sequences against the golden
/// reference model) on `code`, on the process-default backend.
pub fn uvm_stage(code: &str, design: &Design, cycles: usize, seed: u64) -> UvmOutcome {
    uvm_stage_with(code, design, cycles, seed, SimBackend::from_env())
}

/// [`uvm_stage`] on an explicit simulation backend.
pub fn uvm_stage_with(
    code: &str,
    design: &Design,
    cycles: usize,
    seed: u64,
    backend: SimBackend,
) -> UvmOutcome {
    let iface = (design.iface)();
    let seqs: Vec<Box<dyn Sequence>> = vec![
        Box::new(RandomSequence::new(&iface.inputs, cycles, seed)),
        Box::new(CornerSequence::new(&iface.inputs)),
    ];
    match Environment::from_source_with(code, design.name, iface, (design.model)(), seqs, backend) {
        Ok(env) => UvmOutcome::Ran(Box::new(env.run())),
        Err(UvmError::Elab(m)) => UvmOutcome::BuildFailed(m),
        Err(UvmError::MissingPort(p)) => {
            UvmOutcome::BuildFailed(format!("DUT lost its port '{p}'"))
        }
        Err(UvmError::Sim(m)) => UvmOutcome::BuildFailed(m),
    }
}

/// Runs the weak directed public testbench (`T_pub`) — the evaluation's
/// Hit-Rate test set and the feedback loop of the baseline methods —
/// on the process-default backend.
pub fn directed_stage(code: &str, design: &Design) -> UvmOutcome {
    directed_stage_with(code, design, SimBackend::from_env())
}

/// [`directed_stage`] on an explicit simulation backend.
pub fn directed_stage_with(code: &str, design: &Design, backend: SimBackend) -> UvmOutcome {
    let iface = (design.iface)();
    let seqs: Vec<Box<dyn Sequence>> =
        vec![Box::new(DirectedSequence::new("public", (design.directed_vectors)()))];
    match Environment::from_source_with(code, design.name, iface, (design.model)(), seqs, backend) {
        Ok(env) => UvmOutcome::Ran(Box::new(env.run())),
        Err(e) => UvmOutcome::BuildFailed(e.to_string()),
    }
}

/// Post-processing (Algorithm 2): extracts mismatch timestamps/signals
/// from the UVM log, joins input values from the waveform, and — in SL
/// mode — runs the time-aware dynamic slice to list suspicious lines.
pub fn postprocess(code: &str, design: &Design, run: &RunSummary, sl_mode: bool) -> ErrorInfo {
    // getMismatch(L_UVM, PAT_MS): parse the rendered log.
    let rendered = run.log.render();
    let parsed = uvllm_uvm::UvmLog::parse_mismatches(&rendered);
    if parsed.is_empty() {
        return ErrorInfo::RawLog(tail(&rendered, 10));
    }
    let iface = (design.iface)();
    let mut records = Vec::new();
    let mut seen_signals = Vec::new();
    for (time, signal, expected, actual) in &parsed {
        if records.len() >= MAX_MISMATCH_RECORDS {
            break;
        }
        if seen_signals.iter().filter(|s| *s == signal).count() >= 2 {
            continue; // at most two records per signal
        }
        seen_signals.push(signal.clone());
        // getInputValue(W_S, MT).
        let input_values = iface
            .inputs
            .iter()
            .filter_map(|p| {
                run.waveform.value_at(&p.name, *time).map(|v| (p.name.clone(), v.to_string()))
            })
            .collect();
        records.push(MismatchInfo {
            time: *time,
            signal: signal.clone(),
            expected: expected.clone(),
            actual: actual.clone(),
            input_values,
        });
    }
    if !sl_mode {
        return ErrorInfo::MismatchSignals(records);
    }
    // SL mode: dynamic slice at the first mismatch timestamp.
    let signals: Vec<String> = {
        let mut s: Vec<String> = records.iter().map(|m| m.signal.clone()).collect();
        s.dedup();
        s
    };
    let lines = match uvllm_verilog::parse(code) {
        Ok(file) => match file.module(design.name) {
            Some(module) => {
                let snapshot = run.waveform.snapshot_at(records[0].time);
                suspicious_lines(module, code, &signals, &snapshot)
            }
            None => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    ErrorInfo::SuspiciousLines { signals: records, lines }
}

fn tail(text: &str, n: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

/// One repair-agent invocation: builds the prompt, calls the model,
/// applies the result.
#[derive(Debug)]
pub struct RepairAttempt {
    /// Code after the attempt (unchanged when nothing applied).
    pub code: String,
    /// Pairs that were applied (empty in complete mode).
    pub applied: Vec<RepairPair>,
    /// Whether the code changed.
    pub changed: bool,
    /// Simulated LLM latency.
    pub llm_time: Duration,
}

/// Invokes the repair agent (§III-D) in the given mode, through the
/// [`LlmService`] submit/await protocol.
pub fn repair(
    code: &str,
    spec: &str,
    llm: &mut dyn LlmService,
    error_info: ErrorInfo,
    damage_repairs: &[RepairPair],
    output_mode: OutputMode,
    sl_mode: bool,
) -> RepairAttempt {
    let role =
        if sl_mode { AgentRole::SuspiciousLineDebugger } else { AgentRole::MismatchDebugger };
    let prompt = RepairPrompt::new(role, spec, code)
        .with_error_info(error_info)
        .with_damage_repairs(damage_repairs.to_vec())
        .with_output_mode(output_mode);
    let ticket = llm.submit(&prompt);
    let Ok(completion) = llm.await_completion(ticket) else {
        return RepairAttempt {
            code: code.to_string(),
            applied: Vec::new(),
            changed: false,
            llm_time: Duration::ZERO,
        };
    };
    let llm_time = completion.latency;
    match output_mode {
        OutputMode::Pairs => match RepairResponse::parse(&completion.content) {
            Ok(resp) => {
                let (next, report) = apply_pairs(code, &resp.correct);
                RepairAttempt {
                    changed: report.changed(),
                    applied: report.applied,
                    code: next,
                    llm_time,
                }
            }
            Err(_) => RepairAttempt {
                code: code.to_string(),
                applied: Vec::new(),
                changed: false,
                llm_time,
            },
        },
        OutputMode::Complete => match CompleteResponse::parse(&completion.content) {
            Ok(resp) if !resp.code.trim().is_empty() && resp.code != code => {
                RepairAttempt { changed: true, applied: Vec::new(), code: resp.code, llm_time }
            }
            _ => RepairAttempt {
                code: code.to_string(),
                applied: Vec::new(),
                changed: false,
                llm_time,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_designs::by_name;
    use uvllm_llm::{DirectService, ScriptedLlm};

    #[test]
    fn preprocess_scripts_fix_combdly_without_llm() {
        let code = "module m(input a, input b, output reg y);\n\
                    always @(*) y <= a & b;\nendmodule\n";
        let mut llm = DirectService::new(ScriptedLlm::new([]));
        let (fixed, stats) = preprocess(code, "spec", &mut llm, OutputMode::Pairs, 4);
        assert!(stats.clean);
        assert_eq!(stats.llm_calls, 0);
        assert_eq!(stats.script_fixes, 1);
        assert!(fixed.contains("y = a & b;"));
    }

    #[test]
    fn preprocess_uses_llm_for_errors() {
        let code = "module m(input a, output y);\nassign y = a\nendmodule\n";
        let fix = RepairResponse {
            module_name: "m".into(),
            analysis: "missing semicolon".into(),
            correct: vec![RepairPair {
                original: "assign y = a".into(),
                patched: "assign y = a;".into(),
            }],
        };
        let mut llm = DirectService::new(ScriptedLlm::new([fix.to_json()]));
        let (fixed, stats) = preprocess(code, "spec", &mut llm, OutputMode::Pairs, 4);
        assert!(stats.clean, "got:\n{fixed}");
        assert_eq!(stats.llm_calls, 1);
        assert!(uvllm_verilog::parse(&fixed).is_ok());
    }

    #[test]
    fn preprocess_gives_up_after_cap() {
        let code = "module m(input a, output y);\nassign y = a\nendmodule\n";
        // The scripted model keeps emitting useless responses.
        let junk = RepairResponse {
            module_name: "m".into(),
            analysis: "hmm".into(),
            correct: vec![RepairPair { original: "zzz".into(), patched: "qqq".into() }],
        };
        let mut llm = DirectService::new(ScriptedLlm::new(vec![junk.to_json(); 10]));
        let (_, stats) = preprocess(code, "spec", &mut llm, OutputMode::Pairs, 3);
        assert!(!stats.clean);
        assert_eq!(stats.llm_calls, 3);
    }

    #[test]
    fn uvm_stage_detects_functional_bug() {
        let d = by_name("adder_8bit").unwrap();
        let buggy = d.source.replace("a + b", "a - b");
        let outcome = uvm_stage(&buggy, d, 50, 1);
        assert!(!outcome.passed());
        assert!(outcome.score() < 0.9);
        let UvmOutcome::Ran(run) = outcome else { panic!("should run") };
        assert!(!run.mismatches.is_empty());
    }

    #[test]
    fn uvm_stage_build_failure() {
        let d = by_name("adder_8bit").unwrap();
        let broken = d.source.replace(";", "");
        let outcome = uvm_stage(&broken, d, 10, 1);
        assert!(matches!(outcome, UvmOutcome::BuildFailed(_)));
        assert_eq!(outcome.score(), 0.0);
    }

    #[test]
    fn postprocess_extracts_ms_and_sl() {
        let d = by_name("adder_8bit").unwrap();
        let buggy = d.source.replace("a + b", "a - b");
        let UvmOutcome::Ran(run) = uvm_stage(&buggy, d, 50, 1) else { panic!() };
        let ms = postprocess(&buggy, d, &run, false);
        match &ms {
            ErrorInfo::MismatchSignals(records) => {
                assert!(!records.is_empty());
                assert!(records.len() <= MAX_MISMATCH_RECORDS);
                assert!(records[0].signal == "sum" || records[0].signal == "cout");
                assert!(!records[0].input_values.is_empty());
            }
            other => panic!("expected MS info, got {other:?}"),
        }
        let sl = postprocess(&buggy, d, &run, true);
        match &sl {
            ErrorInfo::SuspiciousLines { lines, .. } => {
                assert!(
                    lines.iter().any(|(_, t)| t.contains("a - b")),
                    "slice should reach the bug: {lines:?}"
                );
            }
            other => panic!("expected SL info, got {other:?}"),
        }
    }

    #[test]
    fn directed_stage_is_weak() {
        // The weak public testbench misses the carry bug by design.
        let d = by_name("adder_8bit").unwrap();
        let buggy = d.source.replace("{cout, sum} = a + b", "{cout, sum} = {1'b0, a} + {1'b0, b}");
        // That rewrite is equivalent; use the cout-drop mutation instead:
        let buggy2 = d.source.replace(
            "assign {cout, sum} = a + b + {7'd0, cin};",
            "assign sum = a + b + {7'd0, cin};\nassign cout = 1'b0;",
        );
        let _ = buggy;
        let outcome = directed_stage(&buggy2, d);
        assert!(outcome.passed(), "weak testbench should miss the carry bug");
        // The strong UVM stage catches it.
        assert!(!uvm_stage(&buggy2, d, 100, 2).passed());
    }

    #[test]
    fn repair_applies_pairs() {
        let d = by_name("adder_8bit").unwrap();
        let buggy = d.source.replace("a + b", "a - b");
        let fix = RepairResponse {
            module_name: "adder_8bit".into(),
            analysis: "wrong operator".into(),
            correct: vec![RepairPair { original: "a - b".into(), patched: "a + b".into() }],
        };
        let mut llm = DirectService::new(ScriptedLlm::new([fix.to_json()]));
        let attempt = repair(
            &buggy,
            d.spec,
            &mut llm,
            ErrorInfo::MismatchSignals(vec![]),
            &[],
            OutputMode::Pairs,
            false,
        );
        assert!(attempt.changed);
        assert_eq!(attempt.code, d.source);
        assert_eq!(attempt.applied.len(), 1);
    }
}
