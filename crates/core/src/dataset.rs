//! Benchmark dataset assembly: designs × mutation operators → validated
//! error instances (§III-E; the paper's open-sourced 331-instance set).

use crate::metrics::mutant_is_detectable_with;
use uvllm_designs::{all, Design};
use uvllm_errgen::{mutate, ErrorKind, GroundTruth};

/// Default instance count, matching the paper's dataset size.
pub const PAPER_DATASET_SIZE: usize = 331;

/// One validated benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchInstance {
    pub design: &'static Design,
    pub kind: ErrorKind,
    /// Mutation seed (instances are reproducible from it).
    pub seed: u64,
    pub mutated_src: String,
    pub ground_truth: GroundTruth,
}

impl BenchInstance {
    /// Stable identifier, e.g. `adder_8bit/operator_misuse#3`.
    pub fn id(&self) -> String {
        format!("{}/{}#{}", self.design.name, self.kind.name(), self.seed)
    }
}

/// A validated dataset plus its applicability matrix (for Fig. 7's "×"
/// cells).
#[derive(Debug, Default)]
pub struct Dataset {
    pub instances: Vec<BenchInstance>,
    /// `(design, kind)` pairs where no valid instance could be built.
    pub inapplicable: Vec<(&'static str, ErrorKind)>,
}

impl Dataset {
    /// Instances of syntax kinds.
    pub fn syntax(&self) -> Vec<&BenchInstance> {
        self.instances.iter().filter(|i| i.kind.is_syntax()).collect()
    }

    /// Instances of functional kinds.
    pub fn functional(&self) -> Vec<&BenchInstance> {
        self.instances.iter().filter(|i| !i.kind.is_syntax()).collect()
    }
}

/// Builds one validated instance for `(design, kind)` if possible.
///
/// Validation guarantees the injected error is *real*:
/// * syntax kinds must fail to parse;
/// * functional kinds must either fail to build (declaration errors) or
///   fail the detection run — which is a strict prefix of the FR
///   campaign, so every admitted instance fails FR before repair.
pub fn build_instance(
    design: &'static Design,
    kind: ErrorKind,
    base_seed: u64,
) -> Option<BenchInstance> {
    build_instance_with(design, kind, base_seed, uvllm_sim::SimBackend::from_env())
}

/// [`build_instance`] with the detection run on an explicit simulation
/// backend (validation verdicts are backend-independent — the kernels
/// are waveform-identical — so this is purely a speed knob).
pub fn build_instance_with(
    design: &'static Design,
    kind: ErrorKind,
    base_seed: u64,
    backend: uvllm_sim::SimBackend,
) -> Option<BenchInstance> {
    for attempt in 0..6u64 {
        let seed = base_seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9));
        let Ok(out) = mutate(design.source, kind, seed) else { continue };
        let valid = if kind.is_syntax() {
            uvllm_verilog::parse(&out.mutated_src).is_err()
        } else {
            mutant_is_detectable_with(design, &out.mutated_src, backend)
        };
        if valid {
            return Some(BenchInstance {
                design,
                kind,
                seed,
                mutated_src: out.mutated_src,
                ground_truth: out.ground_truth,
            });
        }
    }
    None
}

/// Builds a dataset of (up to) `target` instances by cycling over every
/// `(design, kind)` pair with fresh seeds each round, mirroring the
/// paper's "27 modules × 9 error types, 331 instances" construction.
pub fn build_dataset(target: usize, base_seed: u64) -> Dataset {
    build_dataset_with(target, base_seed, uvllm_sim::SimBackend::from_env())
}

/// [`build_dataset`] with validation runs on an explicit simulation
/// backend.
pub fn build_dataset_with(
    target: usize,
    base_seed: u64,
    backend: uvllm_sim::SimBackend,
) -> Dataset {
    let designs = all();
    let mut dataset = Dataset::default();
    let mut round = 0u64;
    while dataset.instances.len() < target && round < 8 {
        for design in &designs {
            for kind in ErrorKind::ALL {
                if dataset.instances.len() >= target {
                    break;
                }
                let seed = base_seed
                    .wrapping_add(round.wrapping_mul(0x1000))
                    .wrapping_add(kind as u64 * 37)
                    .wrapping_add(design.name.len() as u64);
                match build_instance_with(design, kind, seed, backend) {
                    Some(instance) => dataset.instances.push(instance),
                    None => {
                        if round == 0 {
                            dataset.inapplicable.push((design.name, kind));
                        }
                    }
                }
            }
        }
        round += 1;
    }
    dataset
}

/// The standard evaluation dataset (paper-sized, fixed seed).
pub fn standard_dataset() -> Dataset {
    build_dataset(PAPER_DATASET_SIZE, 0xDA7A)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_designs::by_name;

    #[test]
    fn instance_building_validates_syntax() {
        let d = by_name("adder_8bit").unwrap();
        let inst = build_instance(d, ErrorKind::MissingSemicolon, 1).expect("instance");
        assert!(uvllm_verilog::parse(&inst.mutated_src).is_err());
        assert!(!inst.id().is_empty());
    }

    #[test]
    fn instance_building_validates_functional() {
        let d = by_name("adder_8bit").unwrap();
        let inst = build_instance(d, ErrorKind::OperatorMisuse, 1).expect("instance");
        assert!(uvllm_verilog::parse(&inst.mutated_src).is_ok());
        assert!(!crate::metrics::fix_confirmed(d, &inst.mutated_src));
    }

    #[test]
    fn inapplicable_pairs_are_skipped() {
        // mux4 has no instances -> port mismatch cannot be imposed.
        let d = by_name("mux4").unwrap();
        assert!(build_instance(d, ErrorKind::PortMismatch, 1).is_none());
    }

    #[test]
    fn small_dataset_builds_quickly_and_mixes_kinds() {
        let ds = build_dataset(40, 0x5EED);
        assert_eq!(ds.instances.len(), 40);
        assert!(!ds.syntax().is_empty());
        assert!(!ds.functional().is_empty());
        // IDs unique.
        let mut ids: Vec<_> = ds.instances.iter().map(|i| i.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 40);
    }
}
