//! # uvllm
//!
//! UVLLM: an automated universal RTL verification framework combining a
//! UVM-style testbench with LLM repair agents — the core contribution of
//! the paper (DAC 2025, arXiv:2411.16238), reproduced in Rust.
//!
//! The [`Uvllm`] orchestrator runs the four-stage loop of Fig. 2:
//!
//! 1. **Pre-processing** ([`stages::preprocess`], Algorithm 1): a joint
//!    LLM-script loop over linter findings — syntax errors go to an LLM
//!    agent, timing-related warnings (`COMBDLY`, `BLKSEQ`, …) to scripted
//!    templates.
//! 2. **UVM processing** ([`stages::uvm_stage`]): constrained-random +
//!    corner testing against the golden reference model, producing a
//!    scoreboard pass rate, a UVM log and a waveform.
//! 3. **Post-processing** ([`stages::postprocess`], Algorithm 2): the
//!    localization engine extracts mismatch signals with IO values and —
//!    after the `TH` iteration threshold — suspicious lines from a
//!    time-aware dynamic slice.
//! 4. **Repair** ([`stages::repair`]): structured-output agents emit
//!    `(original, patched)` pairs applied by exact-match substitution,
//!    guarded by the score-register **rollback** mechanism whose rejected
//!    patches become "damage repairs" in subsequent prompts.
//!
//! [`metrics`] implements the paper's Hit Rate / Fix Rate split and
//! [`dataset`] assembles the validated benchmark instances.
//!
//! ## Example
//!
//! ```rust
//! use uvllm::{Uvllm, VerifyConfig};
//! use uvllm_errgen::{mutate, ErrorKind};
//! use uvllm_llm::{ModelProfile, OracleLlm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = uvllm_designs::by_name("adder_8bit").expect("catalogued");
//! let broken = mutate(design.source, ErrorKind::OperatorMisuse, 1)?;
//! let mut llm = OracleLlm::new(
//!     broken.ground_truth.clone(),
//!     design.source,
//!     ModelProfile::Gpt4Turbo,
//!     1,
//! );
//! let mut framework = Uvllm::new(&mut llm, VerifyConfig::default());
//! let outcome = framework.verify(design, &broken.mutated_src);
//! if outcome.success {
//!     assert!(uvllm::metrics::fix_confirmed(design, &outcome.final_code));
//! }
//! # Ok(())
//! # }
//! ```

pub mod dataset;
pub mod metrics;
pub mod patch;
pub mod pipeline;
pub mod stages;

pub use dataset::{
    build_dataset, build_dataset_with, build_instance, build_instance_with, standard_dataset,
    BenchInstance, Dataset,
};
pub use metrics::{
    fix_confirmed, fix_confirmed_with, fix_verdict_with, hit_confirmed, hit_confirmed_with,
    mutant_is_detectable, mutant_is_detectable_with, Verdict,
};
pub use patch::{apply_pairs, PatchReport};
pub use pipeline::{Stage, StageTimes, Uvllm, VerifyConfig, VerifyOutcome};
pub use stages::{
    directed_stage, directed_stage_with, postprocess, preprocess, repair, uvm_stage,
    uvm_stage_with, PreprocessStats, RepairAttempt, UvmOutcome,
};
