//! The UVLLM orchestrator: the iterative loop of Fig. 2 with the
//! score-register rollback mechanism.

use crate::stages::{postprocess, preprocess, repair, uvm_stage_with, UvmOutcome};
use std::time::{Duration, Instant};
use uvllm_designs::Design;
use uvllm_llm::{
    DirectService, ErrorInfo, LanguageModel, LlmService, OutputMode, RepairPair, Usage,
};
use uvllm_sim::SimBackend;

/// Which pipeline segment produced the final successful change —
/// Table II's per-stage fix-rate attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Joint LLM-script pre-processing (Algorithm 1).
    Preprocess,
    /// Repair in Mismatch-Signal mode.
    RepairMs,
    /// Repair in Suspicious-Line mode.
    RepairSl,
}

impl Stage {
    /// Display label matching Table II.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Preprocess => "Pre-processing",
            Stage::RepairMs => "Repair in MS Mode",
            Stage::RepairSl => "Repair in SL Mode",
        }
    }
}

/// Simulated + measured execution time per stage (Table II's `Texec`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimes {
    pub preprocess: Duration,
    pub ms: Duration,
    pub sl: Duration,
    /// Simulation/testbench time (attributed to the stage that follows).
    pub uvm: Duration,
}

impl StageTimes {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.preprocess + self.ms + self.sl + self.uvm
    }
}

/// Configuration of the verification loop.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Main loop iteration cap (the paper uses 5).
    pub max_iterations: usize,
    /// Lint-fix iterations inside each pre-processing pass.
    pub preproc_iters: usize,
    /// Main iterations in MS mode before escalating to SL mode (the
    /// segmented information extraction threshold `TH`).
    pub ms_threshold: usize,
    /// Random cycles per UVM run (corner sequences are appended).
    pub uvm_cycles: usize,
    /// Seed for the UVM random sequences.
    pub uvm_seed: u64,
    /// Repair generation form (`Pairs` is UVLLM; `Complete` is the
    /// Table III ablation).
    pub output_mode: OutputMode,
    /// Disable to ablate the score-register rollback mechanism.
    pub rollback_enabled: bool,
    /// Disable to ablate SL-mode escalation (stay in MS mode forever).
    pub sl_enabled: bool,
    /// Simulation kernel for the UVM processing stage (defaults to the
    /// process-wide [`SimBackend::from_env`] selection).
    pub backend: SimBackend,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            max_iterations: 5,
            preproc_iters: 3,
            ms_threshold: 2,
            uvm_cycles: 120,
            uvm_seed: 0xBEEF,
            output_mode: OutputMode::Pairs,
            rollback_enabled: true,
            sl_enabled: true,
            backend: SimBackend::from_env(),
        }
    }
}

/// The result of one verification run.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// True when the UVM testbench fully passed within the budget.
    pub success: bool,
    /// The final (best) code version.
    pub final_code: String,
    /// Main-loop iterations executed.
    pub iterations: usize,
    /// Stage whose change led to success (None when the input already
    /// passed or the run failed).
    pub fixed_by: Option<Stage>,
    /// Per-stage execution time.
    pub times: StageTimes,
    /// LLM token/cost accounting.
    pub usage: Usage,
    /// Rollbacks triggered by score regressions.
    pub rollbacks: usize,
    /// Damage repairs recorded (pairs fed back as "do not repeat").
    pub damage_repairs: usize,
    /// Scripted warning fixes applied during pre-processing.
    pub script_fixes: usize,
    /// Final scoreboard pass rate.
    pub final_score: f64,
}

/// The UVLLM framework: drives an [`LlmService`] handle and verifies
/// DUTs against their specification using the four-stage loop.
///
/// The framework *owns* its service handle (generic `S`), which makes a
/// whole verification run `Send` — the property the campaign engine
/// relies on to run jobs on worker threads. Every LLM interaction goes
/// through the submit/await ticket protocol, so the same pipeline runs
/// unchanged on an in-process [`DirectService`] or on a session of a
/// shared [`uvllm_llm::BatchedLlm`] (the campaign's batched mode).
///
/// [`Uvllm::new`] keeps the historical model-owning construction:
/// `Uvllm::new(model, config)` wraps the [`LanguageModel`] in a
/// [`DirectService`]; borrowing callers keep working via the
/// `LanguageModel` forwarding impl for `&mut M`.
pub struct Uvllm<S: LlmService> {
    config: VerifyConfig,
    service: S,
}

impl<M: LanguageModel> Uvllm<DirectService<M>> {
    /// Creates a framework instance around a model backend (wrapped in
    /// an unbatched [`DirectService`]).
    pub fn new(llm: M, config: VerifyConfig) -> Self {
        Uvllm::with_service(DirectService::new(llm), config)
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        self.service.model()
    }

    /// Consumes the framework, returning the model (and its usage
    /// accounting).
    pub fn into_model(self) -> M {
        self.service.into_inner()
    }
}

impl<S: LlmService> Uvllm<S> {
    /// Creates a framework instance around an [`LlmService`] handle —
    /// the constructor batched campaigns use to hand every job a
    /// session of the shared service.
    pub fn with_service(service: S, config: VerifyConfig) -> Self {
        Uvllm { config, service }
    }

    /// The wrapped service handle.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Consumes the framework, returning the service handle (and its
    /// usage/wait accounting).
    pub fn into_service(self) -> S {
        self.service
    }

    /// Runs the full verification loop on `src` for `design`.
    ///
    /// Termination: success (no mismatches) or `max_iterations` reached
    /// (§II of the paper). All history versions are kept in the score
    /// register; the best-scoring version is returned on failure.
    pub fn verify(&mut self, design: &Design, src: &str) -> VerifyOutcome {
        let cfg = self.config.clone();
        let mut code = src.to_string();
        let mut times = StageTimes::default();
        let mut rollbacks = 0usize;
        let mut script_fixes = 0usize;
        let mut damage: Vec<RepairPair> = Vec::new();
        // Score register: best (score, code) seen so far.
        let mut best: (f64, String) = (-1.0, code.clone());
        let mut last_change: Option<(Stage, Vec<RepairPair>)> = None;
        let mut fixed_by = None;
        let mut final_score = 0.0;
        let mut iterations = 0;

        for iter in 0..cfg.max_iterations {
            iterations = iter + 1;
            // -------- Step 1: pre-processing --------------------------
            let wall = Instant::now();
            let (pre_code, pre_stats) = preprocess(
                &code,
                design.spec,
                &mut self.service,
                cfg.output_mode,
                cfg.preproc_iters,
            );
            // Stage time = simulated LLM latency + measured substrate time.
            times.preprocess += pre_stats.llm_time + wall.elapsed();
            script_fixes += pre_stats.script_fixes;
            if pre_stats.changed {
                code = pre_code;
                last_change = Some((Stage::Preprocess, Vec::new()));
            }

            // -------- Step 2: UVM processing ---------------------------
            let wall = Instant::now();
            let outcome = uvm_stage_with(&code, design, cfg.uvm_cycles, cfg.uvm_seed, cfg.backend);
            times.uvm += wall.elapsed();
            let score = outcome.score();
            final_score = score;

            if outcome.passed() {
                fixed_by = last_change.as_ref().map(|(s, _)| *s);
                return VerifyOutcome {
                    success: true,
                    final_code: code,
                    iterations,
                    fixed_by,
                    times,
                    usage: self.service.usage(),
                    rollbacks,
                    damage_repairs: damage.len(),
                    script_fixes,
                    final_score: score,
                };
            }

            // -------- Rollback mechanism ------------------------------
            if cfg.rollback_enabled && score < best.0 {
                rollbacks += 1;
                if let Some((_, pairs)) = last_change.take() {
                    damage.extend(pairs);
                }
                code = best.1.clone();
            } else if score >= best.0 {
                best = (score, code.clone());
            }

            // -------- Step 3: post-processing -------------------------
            let sl_mode = cfg.sl_enabled && iter >= cfg.ms_threshold;
            let error_info = match &outcome {
                UvmOutcome::Ran(run) => postprocess(&code, design, run, sl_mode),
                UvmOutcome::BuildFailed(msg) => {
                    // Unbuildable code: hand the diagnostic text to the
                    // repair agent as a lint log.
                    ErrorInfo::LintLog(format!("%Error: dut.v:1:1: {msg}"))
                }
            };

            // -------- Step 4: repair ----------------------------------
            let wall = Instant::now();
            let attempt = repair(
                &code,
                design.spec,
                &mut self.service,
                error_info,
                &damage,
                cfg.output_mode,
                sl_mode,
            );
            let stage_time = attempt.llm_time + wall.elapsed();
            let stage = if sl_mode { Stage::RepairSl } else { Stage::RepairMs };
            match stage {
                Stage::RepairSl => times.sl += stage_time,
                _ => times.ms += stage_time,
            }
            if attempt.changed {
                code = attempt.code;
                last_change = Some((stage, attempt.applied));
            }
        }

        // Budget exhausted: return the best version from the register.
        if best.0 > final_score {
            code = best.1;
            final_score = best.0;
        }
        VerifyOutcome {
            success: false,
            final_code: code,
            iterations,
            fixed_by,
            times,
            usage: self.service.usage(),
            rollbacks,
            damage_repairs: damage.len(),
            script_fixes,
            final_score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_designs::by_name;
    use uvllm_errgen::{mutate, ErrorKind};
    use uvllm_llm::{ModelProfile, OracleLlm, ScriptedLlm};

    #[test]
    fn correct_code_passes_immediately() {
        let d = by_name("mux4").unwrap();
        let mut llm = ScriptedLlm::new([]);
        let mut uvllm = Uvllm::new(&mut llm, VerifyConfig::default());
        let out = uvllm.verify(d, d.source);
        assert!(out.success);
        assert_eq!(out.iterations, 1);
        assert!(out.fixed_by.is_none());
        assert_eq!(out.usage.calls, 0);
    }

    #[test]
    fn oracle_repairs_functional_error_eventually() {
        let d = by_name("adder_8bit").unwrap();
        // Find a seed where the whole pipeline converges; with five
        // iterations and per-call p≈0.38 most seeds do.
        let mut succeeded = 0;
        let total = 10;
        for seed in 0..total {
            let Ok(m) = mutate(d.source, ErrorKind::OperatorMisuse, seed) else { continue };
            let mut llm =
                OracleLlm::new(m.ground_truth.clone(), d.source, ModelProfile::Gpt4Turbo, seed);
            let mut uvllm = Uvllm::new(&mut llm, VerifyConfig::default());
            let out = uvllm.verify(d, &m.mutated_src);
            if out.success {
                succeeded += 1;
                // Functional errors are normally fixed in MS/SL mode,
                // but a failure patch can break the syntax first and the
                // pre-processor then completes the repair (the paper's
                // cross-stage compensation).
                assert!(out.fixed_by.is_some());
                // The repaired code must be exactly equivalent.
                assert!(crate::metrics::fix_confirmed(d, &out.final_code));
            }
        }
        assert!(succeeded >= 5, "only {succeeded}/{total} repaired");
    }

    #[test]
    fn syntax_error_fixed_in_preprocessing() {
        let d = by_name("mux4").unwrap();
        let mut fixed_by_pre = 0;
        for seed in 0..10 {
            let Ok(m) = mutate(d.source, ErrorKind::MissingSemicolon, seed) else { continue };
            let mut llm =
                OracleLlm::new(m.ground_truth.clone(), d.source, ModelProfile::Gpt4Turbo, seed);
            let mut uvllm = Uvllm::new(&mut llm, VerifyConfig::default());
            let out = uvllm.verify(d, &m.mutated_src);
            if out.success && out.fixed_by == Some(Stage::Preprocess) {
                fixed_by_pre += 1;
            }
        }
        assert!(fixed_by_pre >= 3, "preprocessing fixed only {fixed_by_pre}/10");
    }

    #[test]
    fn rollback_keeps_best_version() {
        // A counter whose wrap constant is wrong scores high (only wrap
        // cycles mismatch); a patch that breaks the increment tanks the
        // score and must be rolled back.
        let d = by_name("counter_12").unwrap();
        let buggy = d.source.replace("if (q == 4'd11)", "if (q == 4'd13)");
        assert_ne!(buggy, d.source);
        let damage = uvllm_llm::RepairResponse {
            module_name: "counter_12".into(),
            analysis: "wrong guess".into(),
            correct: vec![uvllm_llm::RepairPair {
                original: "q <= q + 4'd1;".into(),
                patched: "q <= q + 4'd2;".into(),
            }],
        };
        let junk = uvllm_llm::RepairResponse {
            module_name: "counter_12".into(),
            analysis: "nothing".into(),
            correct: vec![uvllm_llm::RepairPair { original: "zzz".into(), patched: "q".into() }],
        };
        let mut llm = ScriptedLlm::new(vec![
            damage.to_json(),
            junk.to_json(),
            junk.to_json(),
            junk.to_json(),
            junk.to_json(),
        ]);
        let mut uvllm = Uvllm::new(&mut llm, VerifyConfig::default());
        let out = uvllm.verify(d, &buggy);
        assert!(!out.success);
        assert!(out.rollbacks >= 1, "damaging patch must trigger a rollback");
        // The final code is the pre-damage version (the original mutant),
        // not the damaged one.
        assert!(out.final_code.contains("q <= q + 4'd1;"));
        assert!(out.final_code.contains("4'd13"));
    }

    #[test]
    fn times_accumulate_per_stage() {
        let d = by_name("adder_8bit").unwrap();
        let m = mutate(d.source, ErrorKind::OperatorMisuse, 2).unwrap();
        let mut llm = OracleLlm::new(m.ground_truth.clone(), d.source, ModelProfile::Gpt4Turbo, 2);
        let mut uvllm = Uvllm::new(&mut llm, VerifyConfig::default());
        let out = uvllm.verify(d, &m.mutated_src);
        assert!(out.times.total() > Duration::ZERO);
        assert!(out.times.ms + out.times.sl > Duration::ZERO);
    }
}
