//! Quickstart: inject a realistic error into a verified design, then
//! let UVLLM find and repair it.
//!
//! Run with: `cargo run -p uvllm --example quickstart`

use uvllm::{Uvllm, VerifyConfig};
use uvllm_errgen::{mutate, ErrorKind};
use uvllm_llm::{ModelProfile, OracleLlm, Pricing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a verified design from the benchmark suite.
    let design = uvllm_designs::by_name("adder_8bit").expect("catalogued design");
    println!("design: {} — {}", design.name, design.spec);

    // 2. Inject a Table-I style error (operator misuse: `+` becomes `-`).
    let broken = mutate(design.source, ErrorKind::OperatorMisuse, 4)?;
    println!("\ninjected error: {}", broken.ground_truth.description);
    println!("buggy line {}: {}", broken.ground_truth.line, broken.ground_truth.buggy_line);

    // 3. Wire up the LLM backend. Offline, this is the calibrated
    //    GPT-4-turbo twin; swapping in a live API client only requires
    //    implementing `LanguageModel`.
    let mut llm =
        OracleLlm::new(broken.ground_truth.clone(), design.source, ModelProfile::Gpt4Turbo, 4);

    // 4. Run the four-stage verification loop.
    let mut framework = Uvllm::new(&mut llm, VerifyConfig::default());
    let outcome = framework.verify(design, &broken.mutated_src);

    println!("\nverification {}", if outcome.success { "SUCCEEDED" } else { "FAILED" });
    println!("  iterations:     {}", outcome.iterations);
    println!("  fixed by stage: {:?}", outcome.fixed_by.map(|s| s.label()));
    println!("  rollbacks:      {}", outcome.rollbacks);
    println!("  LLM calls:      {}", outcome.usage.calls);
    println!("  token cost:     ${:.4}", outcome.usage.cost(Pricing::GPT4_TURBO));
    println!(
        "  exec time:      {:.2}s (simulated API + measured substrate)",
        outcome.times.total().as_secs_f64()
    );

    // 5. Independent validation — the paper's Fix-Rate check.
    if outcome.success {
        let confirmed = uvllm::metrics::fix_confirmed(design, &outcome.final_code);
        println!(
            "  expert (differential) validation: {}",
            if confirmed { "CONFIRMED" } else { "REJECTED (overfit!)" }
        );
    }
    Ok(())
}
