//! Regenerating the benchmark dataset: the paradigm error generator of
//! §III-E applied across the 27-design suite, with validation that every
//! admitted instance is a *real* bug.
//!
//! Run with: `cargo run -p uvllm --example benchmark_generation --release`

use std::collections::BTreeMap;

fn main() {
    // A reduced dataset for example purposes (the full evaluation uses
    // 331, the paper's size — see `uvllm::standard_dataset`).
    let target = 120;
    println!("building {target} validated error instances...");
    let dataset = uvllm::build_dataset(target, 0xC0DE);

    println!("\n{} instances built:", dataset.instances.len());
    let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_group: BTreeMap<String, usize> = BTreeMap::new();
    for inst in &dataset.instances {
        *by_kind.entry(inst.kind.name()).or_default() += 1;
        *by_group.entry(inst.design.category.label().to_string()).or_default() += 1;
    }
    println!("\nby error kind:");
    for (kind, n) in &by_kind {
        println!("  {kind:<20} {n}");
    }
    println!("\nby module group:");
    for (group, n) in &by_group {
        println!("  {group:<15} {n}");
    }

    println!(
        "\n{} (design, kind) pairs are structurally inapplicable — the \
         'x' cells of the paper's Fig. 7:",
        dataset.inapplicable.len()
    );
    for (design, kind) in dataset.inapplicable.iter().take(8) {
        println!("  {design} x {kind}");
    }

    // Show one instance in full.
    if let Some(inst) = dataset.instances.iter().find(|i| !i.kind.is_syntax()) {
        println!("\nsample instance {}:", inst.id());
        println!("  {}", inst.ground_truth.description);
        println!("  buggy: {}", inst.ground_truth.buggy_line);
        println!("  fixed: {}", inst.ground_truth.fixed_line);
    }
}
