//! Pre-processing with a genuinely rule-based backend: Algorithm 1's
//! joint LLM-script loop running on `HeuristicLlm`, which repairs syntax
//! errors purely from lint logs — no ground truth, no stochastic oracle.
//!
//! Run with: `cargo run -p uvllm --example heuristic_syntax_repair`

use uvllm::stages::preprocess;
use uvllm_llm::{DirectService, HeuristicLlm, OutputMode};

fn main() {
    // Three classic syntax mistakes plus a scripted-fixable warning.
    let broken = "module blinker(input clk, input rst_n, output reg led);\n\
                  reg [23:0] cnt;\n\
                  alway @(posedge clk or negedge rst_n) begin\n\
                  if (!rst_n) begin\n\
                  cnt <= 24'd0;\n\
                  led <= 1'b0\n\
                  end else begin\n\
                  cnt <= cnt + 24'd1;\n\
                  if (cnt == 24'd0) led <= ~led;\n\
                  end\n\
                  end\n\
                  endmodule\n";

    println!("--- broken source ---\n{broken}");
    let report = uvllm_lint::lint(broken);
    println!("--- linter says ---\n{}\n", report.render(broken));

    let mut backend = DirectService::new(HeuristicLlm::new());
    let (fixed, stats) =
        preprocess(broken, "a blinking LED divider", &mut backend, OutputMode::Pairs, 8);

    println!("--- after pre-processing ---");
    println!(
        "iterations: {}, rule-based repairs: {}, scripted warning fixes: {}",
        stats.iterations, stats.llm_calls, stats.script_fixes
    );
    println!("lint-clean: {}\n", stats.clean);
    println!("{fixed}");

    match uvllm_verilog::parse(&fixed) {
        Ok(_) => println!("final source parses cleanly."),
        Err(e) => println!("still broken: {e}"),
    }
}
