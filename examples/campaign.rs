//! Full-dataset verification campaign across all repair methods, on a
//! sharded multi-worker engine with a resumable JSONL sink and an
//! optional shared batched LLM service.
//!
//! ```text
//! cargo run --release --example campaign -- --workers 8
//! cargo run --release --example campaign -- --workers 8 --shard 0/4 --out shard0.jsonl
//! cargo run --release --example campaign -- --size 60 --methods UVLLM,MEIC
//! cargo run --release --example campaign -- --backend compiled
//! cargo run --release --example campaign -- --workers 8 --llm-batch 8
//! cargo run --release --example campaign -- --llm-batch 8 --llm-latency-ms 5 --llm-telemetry
//! cargo run --release --example campaign -- --metrics-out metrics.json
//! cargo run --release --example campaign -- --fault-error-rate 0.15 --llm-retries 8
//! cargo run --release --example campaign -- --inject-panic '@RTLrepair' --job-deadline-ms 60000
//! cargo run --release --example campaign -- merge shard0.jsonl shard1.jsonl --out merged.jsonl
//! cargo run --release --example campaign -- metrics-check metrics.json
//! cargo run --release --example campaign -- serve --addr 127.0.0.1:8091 --data-dir serve-data
//! cargo run --release --example campaign -- serve --addr-file serve.addr --fsync every:32
//! cargo run --release --example campaign -- worker --connect 127.0.0.1:8091 --workers 8
//! cargo run --release --example campaign -- worker --addr-file serve.addr --workers 8
//! cargo run --release --example campaign -- submit --connect 127.0.0.1:8091 --size 60 --shards 4
//! cargo run --release --example campaign -- status --connect 127.0.0.1:8091 run-1 --wait
//! cargo run --release --example campaign -- shutdown --connect 127.0.0.1:8091
//! ```
//!
//! Re-running with the same `--out` resumes: completed jobs are read
//! back from the file and skipped. Output rows are byte-identical
//! (modulo order) for any `--workers` value, with `--llm-batch` on or
//! off — batching changes wall-clock, not rows.
//!
//! `merge` combines shard files into one report, validating shard
//! disjointness and full job-space coverage (pass the same `--size` /
//! `--seed` / `--methods` the shards ran with).
//!
//! The `serve` family runs the resident campaign service
//! (`uvllm-serve`): `serve` keeps campaigns resident and leases their
//! shards over HTTP; `worker --connect` evaluates leased shards;
//! `submit` / `status` / `metrics` / `shutdown` / `ping` are thin
//! clients over the same endpoints. Rows served this way are
//! byte-identical to a plain CLI run of the same configuration —
//! including across worker deaths, stolen leases, and `kill -9` of the
//! server itself: the job store is write-ahead journaled into
//! `--data-dir`, a restart replays it (see `--fsync`, `--compact-every`,
//! and the `--crash-after` chaos knob), and workers given `--addr-file`
//! re-find the restarted server on their own.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use uvllm_campaign::{
    expected_job_ids, merge_rows, read_shard, BatchConfig, Campaign, CampaignConfig,
    CampaignReport, FaultPlan, JsonlSink, MethodKind, ResiliencePolicy, ShardSpec, SimBackend,
};
use uvllm_json::{s, Json};
use uvllm_serve::{
    http, post_json, run_worker, CrashSpec, FsyncPolicy, ServeConfig, Server, WorkerOptions,
};

struct Args {
    config: CampaignConfig,
    out: String,
    /// `--emit-json DIR`: export every catalog design as Yosys-JSON
    /// into DIR and exit (no campaign run).
    emit_json: Option<String>,
    /// `--import-json FILE`: import a Yosys-JSON netlist and run the
    /// interchange smoke (both kernels, optimized vs unoptimized,
    /// re-export fixpoint) instead of a campaign.
    import_json: Option<String>,
}

const USAGE: &str = "usage: campaign [--workers N] [--shard i/n] [--size N] \
     [--seed HEX] [--methods A,B,..] [--backend event|compiled] [--opt-level 0..3] \
     [--llm-batch N] [--llm-max-wait-ms MS] [--llm-latency-ms MS] \
     [--llm-telemetry] [--metrics-out FILE] [--metrics-flush-jobs N] [--out FILE]\n\
     \x20      campaign [--fault-seed HEX] [--fault-error-rate F] [--fault-malform-rate F] \
     [--fault-latency-ms MS]\n\
     \x20      campaign [--llm-retries N] [--llm-timeout-ms MS] [--llm-breaker-threshold N] \
     [--job-deadline-ms MS] [--inject-panic PAT] [--inject-stall PAT:MS]\n\
     \x20      campaign --emit-json DIR | --import-json FILE.json\n\
     \x20      campaign merge [--size N] [--seed HEX] [--methods A,B,..] \
     [--out FILE] SHARD.jsonl..\n\
     \x20      campaign metrics-check METRICS.json\n\
     \x20      campaign serve [--addr HOST:PORT] [--addr-file FILE] [--data-dir DIR] \
     [--lease-ms MS] [--poll-ms MS] [--fsync always|never|every:N] [--compact-every N] \
     [--crash-after EVENT[:N]]\n\
     \x20      campaign worker --connect HOST:PORT [--addr-file FILE] [--name NAME] [--workers N] \
     [--poll-ms MS] [--idle-exit N] [--once] [--llm-batch N] [--llm-max-wait-ms MS] \
     [--abort-after-rows N]\n\
     \x20      campaign submit --connect HOST:PORT [--size N] [--seed HEX] [--methods A,B,..] \
     [--backend event|compiled] [--opt-level 0..3] [--shards N] [--lease-ms MS]\n\
     \x20      campaign status --connect HOST:PORT RUN [--wait] [--rows-out FILE]\n\
     \x20      campaign metrics --connect HOST:PORT [--out FILE]\n\
     \x20      campaign shutdown --connect HOST:PORT | campaign ping --connect HOST:PORT\n\
     methods: UVLLM, UVLLM(comp), MEIC, GPT-4-turbo, Strider, RTLrepair";

/// Flags shared by the run and merge forms.
fn parse_common(
    flag: &str,
    config: &mut CampaignConfig,
    out: &mut String,
    mut value: impl FnMut(&str) -> Result<String, String>,
) -> Result<bool, String> {
    match flag {
        "--size" => {
            config.dataset_size =
                value("--size")?.parse().map_err(|_| "--size must be a number".to_string())?;
        }
        "--seed" => {
            let text = value("--seed")?;
            let text = text.trim_start_matches("0x");
            config.dataset_seed = u64::from_str_radix(text, 16)
                .or_else(|_| text.parse())
                .map_err(|_| "--seed must be a (hex) number".to_string())?;
        }
        "--methods" => {
            config.methods = value("--methods")?
                .split(',')
                .map(|label| {
                    MethodKind::from_label(label.trim())
                        .ok_or_else(|| format!("unknown method '{label}'"))
                })
                .collect::<Result<Vec<_>, _>>()?;
        }
        "--out" => *out = value("--out")?,
        "--help" | "-h" => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_args() -> Result<Args, String> {
    let mut config = CampaignConfig {
        dataset_size: uvllm_bench::harness::dataset_size_from_env(),
        ..CampaignConfig::default()
    };
    let mut out = "campaign.jsonl".to_string();
    let mut max_wait: Option<Duration> = None;
    let mut emit_json = None;
    let mut import_json = None;
    let mut fault = FaultPlan::default();
    let mut fault_on = false;
    // Campaign-shaped resilience defaults: validate completions (a
    // malformed completion must be retried, not parsed downstream) and
    // keep backoffs small — the faults are injected, not a remote
    // endpoint that needs multi-second politeness.
    let mut resilience = ResiliencePolicy {
        validate: true,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        ..ResiliencePolicy::default()
    };
    let mut resilience_on = false;
    let rate = |name: &str, text: String| -> Result<f64, String> {
        text.parse::<f64>()
            .ok()
            .filter(|r| (0.0..=1.0).contains(r))
            .ok_or_else(|| format!("{name} must be a rate in 0..=1"))
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        if parse_common(&flag, &mut config, &mut out, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a number".to_string())?;
            }
            "--shard" => config.shard = ShardSpec::parse(&value("--shard")?)?,
            "--backend" => {
                let text = value("--backend")?;
                config.backend = SimBackend::from_label(&text)
                    .ok_or_else(|| format!("unknown backend '{text}' (event|compiled)"))?;
            }
            "--llm-batch" => {
                let max_batch: usize = value("--llm-batch")?
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| "--llm-batch must be a positive number".to_string())?;
                config.llm_batch = Some(BatchConfig { max_batch, ..BatchConfig::default() });
            }
            "--llm-max-wait-ms" => {
                let ms: u64 = value("--llm-max-wait-ms")?
                    .parse()
                    .map_err(|_| "--llm-max-wait-ms must be a number".to_string())?;
                max_wait = Some(Duration::from_millis(ms));
            }
            "--llm-latency-ms" => {
                let ms: u64 = value("--llm-latency-ms")?
                    .parse()
                    .map_err(|_| "--llm-latency-ms must be a number".to_string())?;
                config.llm_latency = Some(Duration::from_millis(ms));
            }
            "--opt-level" => {
                config.opt_level = value("--opt-level")?
                    .parse()
                    .ok()
                    .filter(|n| *n <= 3)
                    .ok_or_else(|| "--opt-level must be 0..=3".to_string())?;
            }
            "--fault-seed" => {
                let text = value("--fault-seed")?;
                let text = text.trim_start_matches("0x");
                fault.seed = u64::from_str_radix(text, 16)
                    .or_else(|_| text.parse())
                    .map_err(|_| "--fault-seed must be a (hex) number".to_string())?;
                fault_on = true;
            }
            "--fault-error-rate" => {
                fault.error_rate = rate("--fault-error-rate", value("--fault-error-rate")?)?;
                fault_on = true;
            }
            "--fault-malform-rate" => {
                fault.malform_rate = rate("--fault-malform-rate", value("--fault-malform-rate")?)?;
                fault_on = true;
            }
            "--fault-latency-ms" => {
                let ms: u64 = value("--fault-latency-ms")?
                    .parse()
                    .map_err(|_| "--fault-latency-ms must be a number".to_string())?;
                fault.latency = Duration::from_millis(ms);
                if fault.latency_rate == 0.0 {
                    fault.latency_rate = 1.0;
                }
                fault_on = true;
            }
            "--llm-retries" => {
                resilience.retries = value("--llm-retries")?
                    .parse()
                    .map_err(|_| "--llm-retries must be a number".to_string())?;
                resilience_on = true;
            }
            "--llm-timeout-ms" => {
                let ms: u64 = value("--llm-timeout-ms")?
                    .parse()
                    .map_err(|_| "--llm-timeout-ms must be a number".to_string())?;
                resilience.ticket_deadline = Some(Duration::from_millis(ms));
                resilience_on = true;
            }
            "--llm-breaker-threshold" => {
                resilience.breaker_threshold = value("--llm-breaker-threshold")?
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| "--llm-breaker-threshold must be positive".to_string())?;
                resilience_on = true;
            }
            "--job-deadline-ms" => {
                let ms: u64 = value("--job-deadline-ms")?
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| "--job-deadline-ms must be a positive number".to_string())?;
                config.pool.job_deadline = Some(Duration::from_millis(ms));
            }
            "--inject-panic" => config.pool.inject_panic = Some(value("--inject-panic")?),
            "--inject-stall" => {
                let text = value("--inject-stall")?;
                let (pattern, ms) = text
                    .rsplit_once(':')
                    .ok_or_else(|| "--inject-stall wants PATTERN:MS".to_string())?;
                let ms: u64 =
                    ms.parse().map_err(|_| "--inject-stall wants PATTERN:MS".to_string())?;
                config.pool.inject_stall = Some((pattern.to_string(), Duration::from_millis(ms)));
            }
            "--emit-json" => emit_json = Some(value("--emit-json")?),
            "--import-json" => import_json = Some(value("--import-json")?),
            "--llm-telemetry" => config.llm_telemetry = true,
            "--metrics-out" => {
                config.metrics_out = Some(std::path::PathBuf::from(value("--metrics-out")?));
            }
            "--metrics-flush-jobs" => {
                config.metrics_flush_jobs =
                    value("--metrics-flush-jobs")?.parse().map_err(|_| {
                        "--metrics-flush-jobs must be a number (0 disables)".to_string()
                    })?;
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    match (max_wait, &mut config.llm_batch) {
        (None, _) => {}
        // Tuning the flush window only makes sense on the batched
        // service; applying it alone must not silently enable batching.
        (Some(_), None) => return Err("--llm-max-wait-ms needs --llm-batch".to_string()),
        (Some(wait), Some(batch)) => batch.max_wait = wait,
    }
    if fault_on {
        config.fault = Some(fault);
        // Injected faults without retries would wreck every row; the
        // point of the fault plan is to exercise the resilience layer.
        resilience_on = true;
    }
    if resilience_on {
        config.resilience = Some(resilience);
    }
    // Invalid UVLLM_WORKERS (workers == 0 defers to the environment)
    // surfaces as an Err from Campaign::new, already a clean CLI error.
    Ok(Args { config, out, emit_json, import_json })
}

fn run_campaign() -> Result<(), String> {
    let Args { config, out, emit_json, import_json } = parse_args()?;
    if let Some(dir) = emit_json {
        return run_emit_json(&dir);
    }
    if let Some(path) = import_json {
        return run_import_smoke(&path, config.opt_level);
    }
    let campaign = Campaign::new(config).map_err(|m| format!("invalid campaign: {m}"))?;
    let config = campaign.config();
    let llm_mode = match &config.llm_batch {
        Some(batch) => {
            format!("batched llm (max_batch {}, max_wait {:?})", batch.max_batch, batch.max_wait)
        }
        None => "per-job llm".to_string(),
    };
    println!(
        "campaign: {} instances x {} methods, {} workers, shard {}/{}, {} kernel, \
         opt O{}, {llm_mode}, sink {out}",
        config.dataset_size,
        config.methods.len(),
        config.effective_workers(),
        config.shard.index,
        config.shard.count,
        config.backend,
        config.opt_level,
    );

    if let Some(fault) = &config.fault {
        println!(
            "fault injection: seed {:#x}, error {:.0}%, malform {:.0}%, truncate {:.0}%, \
             stall {:?} at {:.0}%",
            fault.seed,
            fault.error_rate * 100.0,
            fault.malform_rate * 100.0,
            fault.truncate_rate * 100.0,
            fault.latency,
            fault.latency_rate * 100.0,
        );
    }
    if let Some(policy) = &config.resilience {
        println!(
            "resilience policy: {} retries, backoff {:?}..{:?}, breaker threshold {}, deadline {:?}",
            policy.retries,
            policy.base_backoff,
            policy.max_backoff,
            policy.breaker_threshold,
            policy.ticket_deadline,
        );
    }
    let mut sink = JsonlSink::open(&out).map_err(|e| format!("cannot open sink {out}: {e}"))?;
    if sink.resumed() > 0 {
        println!("resuming: {} completed rows found in {out}", sink.resumed());
    }
    let started = std::time::Instant::now();
    let outcome = campaign.run(&mut sink).map_err(|e| format!("campaign failed: {e}"))?;
    println!(
        "done in {:.1?}: {} jobs total, {} evaluated now, {} resumed, {} other shards",
        started.elapsed(),
        outcome.total_jobs,
        outcome.new_records.len(),
        outcome.resumed,
        outcome.sharded_out,
    );
    println!(
        "elaboration cache: {} golden designs pre-warmed; {} hits / {} misses ({} entries)",
        outcome.golden_designs,
        outcome.elab_stats.hits,
        outcome.elab_stats.misses,
        outcome.elab_stats.entries,
    );
    let tickets = outcome.metrics.counter("llm.tickets").unwrap_or(0);
    let flushes = outcome.metrics.counter("llm.flushes").unwrap_or(0);
    let prompts = outcome.metrics.counter("llm.flushed_prompts").unwrap_or(0);
    let mean_batch = if flushes > 0 { prompts as f64 / flushes as f64 } else { 0.0 };
    println!(
        "llm service: {tickets} tickets across {flushes} flushes (mean batch {mean_batch:.2})",
    );
    if config.resilience.is_some() || config.pool.job_deadline.is_some() {
        println!(
            "resilience: {} retries, {} breaker transitions, {} degraded; \
             pool: {} panics ({} requeued), {} timeouts, {} quarantined rows",
            outcome.metrics.counter("llm.retries").unwrap_or(0),
            outcome.metrics.counter("llm.breaker_transitions").unwrap_or(0),
            outcome.metrics.counter("llm.degraded").unwrap_or(0),
            outcome.pool_stats.panicked,
            outcome.pool_stats.requeued,
            outcome.pool_stats.timed_out,
            outcome.pool_stats.quarantined_panics + outcome.pool_stats.quarantined_timeouts,
        );
    }
    if let Some(path) = &config.metrics_out {
        println!("metrics snapshot written to {}", path.display());
    }
    println!("{}", outcome.report.render());
    Ok(())
}

/// `--emit-json DIR`: exports every catalog design as Yosys-JSON into
/// `DIR/<name>.json` so external tools (Yosys itself included) can
/// consume the campaign workloads.
fn run_emit_json(dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let mut count = 0usize;
    for d in uvllm_designs::all() {
        let file = uvllm_verilog::parse(d.source).map_err(|e| format!("{}: {e}", d.name))?;
        let design = uvllm_sim::elaborate(&file, d.name).map_err(|e| format!("{}: {e}", d.name))?;
        let path = format!("{dir}/{}.json", d.name);
        std::fs::write(&path, uvllm_netlist::yosys::export_string(&design))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        count += 1;
    }
    println!("exported {count} designs to {dir}/");
    Ok(())
}

/// `--import-json FILE`: imports a Yosys-JSON netlist (third-party or
/// our own export) and runs the interchange smoke — seeded random
/// stimulus on both kernels with the optimized design pinned
/// port-identical to the unoptimized one, plus the re-export fixpoint.
fn run_import_smoke(path: &str, opt_level: u8) -> Result<(), String> {
    use std::sync::Arc;
    use uvllm_netlist::{yosys, OptLevel, PassManager};
    use uvllm_sim::{AnySim, Logic, SimBackend, SimControl};

    const CYCLES: usize = 200;

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let base = yosys::import_str(&text).map_err(|e| e.to_string())?;
    println!(
        "imported '{}' from {path}: {} signals, {} processes, levelized depth {}",
        base.top,
        base.signals().len(),
        base.processes().len(),
        uvllm_netlist::levelized_depth(&base),
    );

    // Optimize at the requested level (default O3: exercise everything).
    let level = if opt_level == 0 { OptLevel::O3 } else { OptLevel::from_u8(opt_level).unwrap() };
    let mut opt = base.clone();
    let stats = PassManager::standard(level).run(&mut opt);
    println!(
        "optimized at {}: {} rewrites in {} rounds, depth {} -> {}",
        level.label(),
        stats.total_rewrites(),
        stats.rounds,
        stats.depth_before,
        stats.depth_after,
    );

    // Drive all four sims (base/opt x event/compiled) in lockstep under
    // seeded random stimulus; every port must agree on every cycle.
    let base = Arc::new(base);
    let opt = Arc::new(opt);
    let mut sims = [
        AnySim::new(&base, SimBackend::EventDriven).map_err(|e| e.to_string())?,
        AnySim::new(&base, SimBackend::Compiled).map_err(|e| e.to_string())?,
        AnySim::new(&opt, SimBackend::EventDriven).map_err(|e| e.to_string())?,
        AnySim::new(&opt, SimBackend::Compiled).map_err(|e| e.to_string())?,
    ];
    let inputs: Vec<(String, u32)> = base
        .inputs()
        .iter()
        .map(|&id| (base.signal(id).name.clone(), base.signal(id).width))
        .collect();
    let ports: Vec<String> = base
        .inputs()
        .iter()
        .chain(base.outputs())
        .map(|&id| base.signal(id).name.clone())
        .collect();
    // splitmix64: deterministic stimulus without pulling in a dev-dep.
    let mut state = 0x17E2_C4A6_E0D5_EED1u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for cycle in 0..CYCLES {
        for (name, width) in &inputs {
            let v = Logic::from_u128(*width, ((next() as u128) << 64) | next() as u128);
            for sim in sims.iter_mut() {
                sim.poke_by_name(name, v).map_err(|e| format!("poke {name}: {e}"))?;
            }
        }
        for sim in sims.iter_mut() {
            sim.settle().map_err(|e| format!("cycle {cycle}: {e}"))?;
        }
        for name in &ports {
            let reference = sims[0].peek_by_name(name).map_err(|e| e.to_string())?;
            for (i, sim) in sims.iter().enumerate().skip(1) {
                let got = sim.peek_by_name(name).map_err(|e| e.to_string())?;
                if got != reference {
                    return Err(format!(
                        "cycle {cycle}: port '{name}': sim#{i} diverged ({got} != {reference})"
                    ));
                }
            }
        }
    }
    println!("equivalence: {CYCLES} cycles, base==optimized on both kernels, all ports");

    // Re-export fixpoint: our export of the imported design must
    // round-trip byte-identically through import.
    let first = yosys::export_string(&base);
    let second = yosys::export_string(&yosys::import_str(&first).map_err(|e| e.to_string())?);
    if first != second {
        return Err("re-export is not a fixpoint".to_string());
    }
    println!("re-export fixpoint: ok ({} bytes)", first.len());
    Ok(())
}

/// Validates a `--metrics-out` snapshot file against the
/// `uvllm-metrics/v1` schema (the CI gate for metrics artifacts).
fn run_metrics_check(paths: Vec<String>) -> Result<(), String> {
    if paths.is_empty() {
        return Err("metrics-check needs a metrics JSON file".to_string());
    }
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        uvllm_obs::validate_snapshot_json(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: valid {} snapshot", uvllm_obs::SNAPSHOT_SCHEMA);
    }
    Ok(())
}

fn run_merge(args: Vec<String>) -> Result<(), String> {
    let mut config = CampaignConfig {
        dataset_size: uvllm_bench::harness::dataset_size_from_env(),
        ..CampaignConfig::default()
    };
    let mut out = String::new();
    let mut shard_paths: Vec<String> = Vec::new();
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        if parse_common(&flag, &mut config, &mut out, &mut value)? {
            continue;
        }
        if flag.starts_with('-') {
            return Err(format!("unknown merge flag '{flag}' (try --help)"));
        }
        shard_paths.push(flag);
    }
    if shard_paths.is_empty() {
        return Err("merge needs at least one shard file".to_string());
    }
    let shards: Vec<(String, Vec<_>)> = shard_paths
        .iter()
        .map(|path| read_shard(path).map(|rows| (path.clone(), rows)))
        .collect::<Result<_, _>>()?;
    let expected = expected_job_ids(config.dataset_size, config.dataset_seed, &config.methods);
    let merged = merge_rows(&shards, &expected)?;
    println!(
        "merged {} shards: {} rows, full coverage of {} (instance, method) pairs",
        merged.shards,
        merged.rows.len(),
        expected.len(),
    );
    if !out.is_empty() {
        let text: String =
            merged.rows.iter().map(|row| format!("{}\n", row.to_json_line())).collect();
        std::fs::write(&out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }
    println!("{}", CampaignReport::new(merged.rows).render());
    Ok(())
}

/// SIGINT flag for `campaign serve`: the handler only sets this; the
/// foreground loop notices it and runs the graceful shutdown.
static SIGINT: AtomicBool = AtomicBool::new(false);

/// Installs a SIGINT handler through libc's `signal(2)` directly — the
/// build is dependency-free, and std already links libc on unix.
#[cfg(unix)]
fn install_sigint() {
    extern "C" fn on_sigint(_signum: i32) {
        SIGINT.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT_NUM: i32 = 2;
    unsafe {
        signal(SIGINT_NUM, on_sigint as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint() {}

fn parse_ms(name: &str, text: &str) -> Result<u64, String> {
    text.parse().ok().filter(|n| *n > 0).ok_or_else(|| format!("{name} must be a positive number"))
}

/// `campaign serve`: run the resident service in the foreground until
/// `POST /shutdown` or SIGINT drains it.
fn run_serve(args: Vec<String>) -> Result<(), String> {
    let mut config = ServeConfig::default();
    let mut addr_file: Option<std::path::PathBuf> = None;
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--addr-file" => addr_file = Some(value("--addr-file")?.into()),
            "--data-dir" => config.data_dir = value("--data-dir")?.into(),
            "--lease-ms" => {
                config.default_lease =
                    Duration::from_millis(parse_ms("--lease-ms", &value("--lease-ms")?)?);
            }
            "--poll-ms" => {
                config.poll = Duration::from_millis(parse_ms("--poll-ms", &value("--poll-ms")?)?);
            }
            "--fsync" => config.journal.fsync = FsyncPolicy::parse(&value("--fsync")?)?,
            "--compact-every" => {
                config.journal.compact_every = value("--compact-every")?
                    .parse()
                    .map_err(|_| "--compact-every must be a number".to_string())?;
            }
            "--crash-after" => {
                config.journal.crash_after = Some(CrashSpec::parse(&value("--crash-after")?)?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown serve flag '{other}' (try --help)")),
        }
    }
    install_sigint();
    let data_dir = config.data_dir.clone();
    let lease = config.default_lease;
    let server = Server::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    let report = server.recovery();
    if report.recovered_state() {
        println!("{}", report.render());
        for diag in &report.diags {
            eprintln!("recovery diag: {diag}");
        }
    }
    if let Some(path) = &addr_file {
        // Temp-and-rename so a worker mid-read never sees a torn file.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{}\n", server.addr()))
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| format!("cannot publish address to {}: {e}", path.display()))?;
    }
    println!("serving on {}", server.addr());
    println!(
        "data dir {}; default lease {:?}; POST /shutdown or SIGINT to drain",
        data_dir.display(),
        lease,
    );
    while !SIGINT.load(Ordering::SeqCst) && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    if SIGINT.load(Ordering::SeqCst) {
        println!("SIGINT: draining in-flight leases and flushing the final metrics snapshot");
    }
    // Idempotent: if POST /shutdown started the sequence this just
    // waits for it; final metrics land in <data_dir>/metrics.json.
    server.shutdown();
    println!("shutdown complete; final metrics in {}", data_dir.join("metrics.json").display());
    Ok(())
}

/// `campaign worker --connect`: evaluate leased shards until the server
/// drains (or the idle budget runs out).
fn run_remote_worker(args: Vec<String>) -> Result<(), String> {
    let mut options = WorkerOptions::new(String::new());
    let mut max_wait: Option<Duration> = None;
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => options.server = value("--connect")?,
            // Survive server restarts: re-read the published address on
            // transport errors (also serves as the initial address when
            // --connect is omitted).
            "--addr-file" => options.addr_file = Some(value("--addr-file")?.into()),
            "--name" => options.name = value("--name")?,
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a number".to_string())?;
            }
            "--poll-ms" => {
                options.poll = Duration::from_millis(parse_ms("--poll-ms", &value("--poll-ms")?)?);
            }
            "--idle-exit" => {
                options.max_idle = Some(parse_ms("--idle-exit", &value("--idle-exit")?)?);
            }
            "--once" => options.once = true,
            "--llm-batch" => {
                let max_batch = parse_ms("--llm-batch", &value("--llm-batch")?)? as usize;
                options.llm_batch = Some(BatchConfig { max_batch, ..BatchConfig::default() });
            }
            "--llm-max-wait-ms" => {
                max_wait = Some(Duration::from_millis(parse_ms(
                    "--llm-max-wait-ms",
                    &value("--llm-max-wait-ms")?,
                )?));
            }
            // Deterministic fault injection for the steal drills: die
            // (stop appending, never complete) after N rows.
            "--abort-after-rows" => {
                options.abort_after_rows = Some(
                    value("--abort-after-rows")?
                        .parse()
                        .map_err(|_| "--abort-after-rows must be a number".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown worker flag '{other}' (try --help)")),
        }
    }
    match (&options.server.is_empty(), &options.addr_file) {
        (false, _) => {}
        (true, Some(file)) => {
            options.server = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read --addr-file {}: {e}", file.display()))?
                .trim()
                .to_string();
        }
        (true, None) => return Err("worker needs --connect HOST:PORT or --addr-file".to_string()),
    }
    match (max_wait, &mut options.llm_batch) {
        (None, _) => {}
        (Some(_), None) => return Err("--llm-max-wait-ms needs --llm-batch".to_string()),
        (Some(wait), Some(batch)) => batch.max_wait = wait,
    }
    let summary = run_worker(&options)?;
    println!(
        "worker {}: {} lease(s) ({} stolen), {} completed, {} aborted, {} lost, {} reconnect(s)",
        options.name,
        summary.leases,
        summary.stolen,
        summary.completed,
        summary.aborted,
        summary.lost,
        summary.reconnects,
    );
    Ok(())
}

/// `campaign submit --connect`: register a run; prints the bare run id
/// on stdout (everything else goes to stderr) so scripts can capture it
/// with `RUN=$(campaign submit ...)`.
fn run_submit(args: Vec<String>) -> Result<(), String> {
    let mut server = String::new();
    let mut config = CampaignConfig {
        dataset_size: uvllm_bench::harness::dataset_size_from_env(),
        ..CampaignConfig::default()
    };
    let mut shards = 1usize;
    let mut lease_ms: Option<u64> = None;
    let mut out = String::new();
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        if parse_common(&flag, &mut config, &mut out, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--connect" => server = value("--connect")?,
            "--backend" => {
                let text = value("--backend")?;
                config.backend = SimBackend::from_label(&text)
                    .ok_or_else(|| format!("unknown backend '{text}' (event|compiled)"))?;
            }
            "--opt-level" => {
                config.opt_level = value("--opt-level")?
                    .parse()
                    .ok()
                    .filter(|n| *n <= 3)
                    .ok_or_else(|| "--opt-level must be 0..=3".to_string())?;
            }
            "--shards" => shards = parse_ms("--shards", &value("--shards")?)? as usize,
            "--lease-ms" => lease_ms = Some(parse_ms("--lease-ms", &value("--lease-ms")?)?),
            other => return Err(format!("unknown submit flag '{other}' (try --help)")),
        }
    }
    if server.is_empty() {
        return Err("submit needs --connect HOST:PORT".to_string());
    }
    let mut body = vec![
        ("size".to_string(), Json::Num(config.dataset_size as f64)),
        ("seed".to_string(), s(format!("0x{:X}", config.dataset_seed))),
        ("methods".to_string(), Json::Arr(config.methods.iter().map(|m| s(m.label())).collect())),
        ("backend".to_string(), s(config.backend.label())),
        ("opt_level".to_string(), Json::Num(config.opt_level as f64)),
        ("shards".to_string(), Json::Num(shards as f64)),
    ];
    if let Some(ms) = lease_ms {
        body.push(("lease_ms".to_string(), Json::Num(ms as f64)));
    }
    let (status, json) = post_json(&server, "/jobs", &Json::Obj(body))?;
    if status != 200 {
        return Err(format!("POST /jobs failed with status {status}: {}", json.render()));
    }
    let run =
        json.get("run").and_then(Json::as_str).ok_or("POST /jobs answered without a run id")?;
    eprintln!(
        "submitted {run}: {} instances x {} methods, {} kernel, {shards} shard(s)",
        config.dataset_size,
        config.methods.len(),
        config.backend,
    );
    println!("{run}");
    Ok(())
}

/// `campaign status --connect RUN`: one status snapshot, or `--wait`
/// until the run completes; `--rows-out` saves the canonical rows.
fn run_status(args: Vec<String>) -> Result<(), String> {
    let mut server = String::new();
    let mut run: Option<String> = None;
    let mut wait = false;
    let mut rows_out: Option<String> = None;
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => server = value("--connect")?,
            "--wait" => wait = true,
            "--rows-out" => rows_out = Some(value("--rows-out")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown status flag '{other}' (try --help)"));
            }
            _ => run = Some(flag),
        }
    }
    if server.is_empty() {
        return Err("status needs --connect HOST:PORT".to_string());
    }
    let run = run.ok_or("status needs a RUN id (from submit)")?;
    let json = loop {
        let (status, body) = http::request(&server, "GET", &format!("/runs/{run}"), "")?;
        if status != 200 {
            return Err(format!("GET /runs/{run} failed with status {status}: {body}"));
        }
        let json = Json::parse(&body).map_err(|e| format!("bad status JSON: {e}"))?;
        let rows = json.get("rows").and_then(Json::as_u64).unwrap_or(0);
        let expected = json.get("expected").and_then(Json::as_u64).unwrap_or(0);
        let done = json.get("done").and_then(Json::as_bool).unwrap_or(false);
        if done || !wait {
            break json;
        }
        eprintln!("{run}: {rows}/{expected} rows, waiting …");
        std::thread::sleep(Duration::from_millis(500));
    };
    println!(
        "{run}: done={} rows={}/{}",
        json.get("done").and_then(Json::as_bool).unwrap_or(false),
        json.get("rows").and_then(Json::as_u64).unwrap_or(0),
        json.get("expected").and_then(Json::as_u64).unwrap_or(0),
    );
    for shard in json.get("shards").and_then(Json::as_array).unwrap_or(&[]) {
        println!(
            "  shard {}: {} (worker {}, {} steal(s))",
            shard.get("shard").and_then(Json::as_u64).unwrap_or(0),
            shard.get("state").and_then(Json::as_str).unwrap_or("?"),
            shard.get("worker").and_then(Json::as_str).unwrap_or("-"),
            shard.get("steals").and_then(Json::as_u64).unwrap_or(0),
        );
    }
    for diag in json.get("diags").and_then(Json::as_array).unwrap_or(&[]) {
        println!("  diag: {}", diag.as_str().unwrap_or("?"));
    }
    // Save rows before the (chatty) report print: the file must land
    // even when stdout is a closed pipe.
    if let Some(path) = rows_out {
        let (status, body) = http::request(&server, "GET", &format!("/runs/{run}/rows"), "")?;
        if status != 200 {
            return Err(format!("GET /runs/{run}/rows failed with status {status}"));
        }
        std::fs::write(&path, &body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {} row(s) to {path}", body.lines().count());
    }
    if let Some(report) = json.get("report").and_then(Json::as_str) {
        println!("{report}");
    }
    Ok(())
}

/// `campaign metrics --connect`: fetch `GET /metrics`, validate it
/// against `uvllm-metrics/v1`, print or save it.
fn run_remote_metrics(args: Vec<String>) -> Result<(), String> {
    let mut server = String::new();
    let mut out: Option<String> = None;
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => server = value("--connect")?,
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown metrics flag '{other}' (try --help)")),
        }
    }
    if server.is_empty() {
        return Err("metrics needs --connect HOST:PORT".to_string());
    }
    let (status, body) = http::request(&server, "GET", "/metrics", "")?;
    if status != 200 {
        return Err(format!("GET /metrics failed with status {status}"));
    }
    uvllm_obs::validate_snapshot_json(&body).map_err(|e| format!("GET /metrics: {e}"))?;
    match out {
        Some(path) => {
            std::fs::write(&path, &body).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("{path}: valid {} snapshot", uvllm_obs::SNAPSHOT_SCHEMA);
        }
        None => println!("{body}"),
    }
    Ok(())
}

/// `campaign shutdown --connect` / `campaign ping --connect`.
fn run_remote_simple(verb: &str, args: Vec<String>) -> Result<(), String> {
    let mut server = String::new();
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => server = value("--connect")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown {verb} flag '{other}' (try --help)")),
        }
    }
    if server.is_empty() {
        return Err(format!("{verb} needs --connect HOST:PORT"));
    }
    let (method, path) = match verb {
        "shutdown" => ("POST", "/shutdown"),
        _ => ("GET", "/healthz"),
    };
    let (status, body) = http::request(&server, method, path, "")?;
    if status != 200 {
        return Err(format!("{method} {path} failed with status {status}: {body}"));
    }
    match verb {
        "shutdown" => println!("{server}: draining"),
        _ => println!("{server}: ok"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let rest = || std::env::args().skip(2).collect::<Vec<String>>();
    let result = match std::env::args().nth(1).as_deref() {
        Some("merge") => run_merge(rest()),
        Some("metrics-check") => run_metrics_check(rest()),
        Some("serve") => run_serve(rest()),
        Some("worker") => run_remote_worker(rest()),
        Some("submit") => run_submit(rest()),
        Some("status") => run_status(rest()),
        Some("metrics") => run_remote_metrics(rest()),
        Some(verb @ ("shutdown" | "ping")) => run_remote_simple(verb, rest()),
        _ => run_campaign(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
