//! Full-dataset verification campaign across all repair methods, on a
//! sharded multi-worker engine with a resumable JSONL sink.
//!
//! ```text
//! cargo run --release --example campaign -- --workers 8
//! cargo run --release --example campaign -- --workers 8 --shard 0/4 --out shard0.jsonl
//! cargo run --release --example campaign -- --size 60 --methods UVLLM,MEIC
//! cargo run --release --example campaign -- --backend compiled
//! ```
//!
//! Re-running with the same `--out` resumes: completed jobs are read
//! back from the file and skipped. Output rows are byte-identical
//! (modulo order) for any `--workers` value.

use std::process::ExitCode;
use uvllm_campaign::{Campaign, CampaignConfig, JsonlSink, MethodKind, ShardSpec, SimBackend};

struct Args {
    config: CampaignConfig,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut config = CampaignConfig {
        dataset_size: uvllm_bench::harness::dataset_size_from_env(),
        ..CampaignConfig::default()
    };
    let mut out = "campaign.jsonl".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a number".to_string())?;
            }
            "--shard" => config.shard = ShardSpec::parse(&value("--shard")?)?,
            "--size" => {
                config.dataset_size =
                    value("--size")?.parse().map_err(|_| "--size must be a number".to_string())?;
            }
            "--seed" => {
                let text = value("--seed")?;
                let text = text.trim_start_matches("0x");
                config.dataset_seed = u64::from_str_radix(text, 16)
                    .or_else(|_| text.parse())
                    .map_err(|_| "--seed must be a (hex) number".to_string())?;
            }
            "--methods" => {
                config.methods = value("--methods")?
                    .split(',')
                    .map(|label| {
                        MethodKind::from_label(label.trim())
                            .ok_or_else(|| format!("unknown method '{label}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--out" => out = value("--out")?,
            "--backend" => {
                let text = value("--backend")?;
                config.backend = SimBackend::from_label(&text)
                    .ok_or_else(|| format!("unknown backend '{text}' (event|compiled)"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: campaign [--workers N] [--shard i/n] [--size N] \
                     [--seed HEX] [--methods A,B,..] [--backend event|compiled] [--out FILE]\n\
                     methods: UVLLM, UVLLM(comp), MEIC, GPT-4-turbo, Strider, RTLrepair"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(Args { config, out })
}

fn main() -> ExitCode {
    let Args { config, out } = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let campaign = match Campaign::new(config) {
        Ok(c) => c,
        Err(message) => {
            eprintln!("invalid campaign: {message}");
            return ExitCode::FAILURE;
        }
    };
    let config = campaign.config();
    println!(
        "campaign: {} instances x {} methods, {} workers, shard {}/{}, {} kernel, sink {out}",
        config.dataset_size,
        config.methods.len(),
        config.effective_workers(),
        config.shard.index,
        config.shard.count,
        config.backend,
    );

    let mut sink = match JsonlSink::open(&out) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open sink {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if sink.resumed() > 0 {
        println!("resuming: {} completed rows found in {out}", sink.resumed());
    }
    let started = std::time::Instant::now();
    let outcome = match campaign.run(&mut sink) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "done in {:.1?}: {} jobs total, {} evaluated now, {} resumed, {} other shards",
        started.elapsed(),
        outcome.total_jobs,
        outcome.new_records.len(),
        outcome.resumed,
        outcome.sharded_out,
    );
    println!(
        "elaboration cache: {} golden designs pre-warmed; {} hits / {} misses ({} entries)",
        outcome.golden_designs,
        outcome.elab_stats.hits,
        outcome.elab_stats.misses,
        outcome.elab_stats.entries,
    );
    println!("{}", outcome.report.render());
    ExitCode::SUCCESS
}
