//! Building a UVM-style testbench by hand: constrained-random plus
//! corner stimulus against a golden reference model, with coverage and
//! a parseable UVM log — the §III-B machinery of the paper.
//!
//! Run with: `cargo run -p uvllm --example uvm_testbench`

use uvllm_uvm::{Assertion, CornerSequence, Environment, RandomSequence, Sequence, UvmLog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = uvllm_designs::by_name("fifo_sync").expect("catalogued design");

    // A correct run first.
    let iface = (design.iface)();
    let sequences: Vec<Box<dyn Sequence>> = vec![
        Box::new(RandomSequence::new(&iface.inputs, 200, 0xF1F0)),
        Box::new(CornerSequence::new(&iface.inputs)),
    ];
    // Protocol assertions checked every cycle (the paper's
    // extensibility hook for AI-generated properties).
    let assertions = vec![
        Assertion::parse("occupancy_bounded", "count <= 4'd8").map_err(std::io::Error::other)?,
        Assertion::parse(
            "flags_consistent",
            "(full == (count == 4'd8)) && (empty == (count == 4'd0))",
        )
        .map_err(std::io::Error::other)?,
    ];
    let env =
        Environment::from_source(design.source, design.name, iface, (design.model)(), sequences)?
            .with_assertions(assertions);
    let summary = env.run();
    println!(
        "pristine FIFO: {} cycles, pass rate {:.1}%",
        summary.cycles,
        summary.pass_rate * 100.0
    );
    println!("  input coverage:  {:.1}%", summary.input_coverage * 100.0);
    println!("  toggle coverage: {:.1}%", summary.toggle_coverage * 100.0);
    println!("  assertion failures: {}", summary.assertion_failures);

    // Now break the occupancy counter and watch the scoreboard object.
    let buggy = design.source.replace("count <= count - 4'd1;", "count <= count - 4'd2;");
    assert_ne!(buggy, design.source);
    let iface = (design.iface)();
    let sequences: Vec<Box<dyn Sequence>> =
        vec![Box::new(RandomSequence::new(&iface.inputs, 200, 0xF1F0))];
    let env = Environment::from_source(&buggy, design.name, iface, (design.model)(), sequences)?;
    let summary = env.run();
    println!(
        "\nbuggy FIFO: pass rate {:.1}%, {} mismatches",
        summary.pass_rate * 100.0,
        summary.mismatches.len()
    );

    // The log is what UVLLM's localization engine consumes.
    let rendered = summary.log.render();
    let mismatches = UvmLog::parse_mismatches(&rendered);
    println!("first mismatch records (time, signal, expected, actual):");
    for m in mismatches.iter().take(3) {
        println!("  @{} {:10} expected {:8} actual {}", m.0, m.1, m.2, m.3);
    }

    // Input values at the first mismatch timestamp — Algorithm 2's `IV`.
    if let Some((t, _, _, _)) = mismatches.first() {
        println!("inputs at t={t}:");
        for name in ["push", "pop", "din"] {
            if let Some(v) = summary.waveform.value_at(name, *t) {
                println!("  {name} = {v}");
            }
        }
    }
    Ok(())
}
