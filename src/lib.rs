//! Workspace facade for the UVLLM reproduction.
//!
//! This crate exists so the repository-level `examples/` and `tests/`
//! have a package to live in; the real functionality is in the
//! `crates/` members (see the root `README.md` for the crate map).

pub use uvllm::*;
