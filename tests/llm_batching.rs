//! The batched-LLM determinism contract, end to end: a campaign run
//! through the shared `BatchedLlm` service produces byte-identical rows
//! to the per-job direct path, at any worker count, with or without
//! injected endpoint latency — batching changes wall-clock only.

use std::time::Duration;
use uvllm_campaign::{
    BatchConfig, Campaign, CampaignConfig, EvalRow, MemorySink, MethodKind, ShardSpec,
};

/// LLM-heavy slice: the pipeline method plus both LLM baselines, so
/// every service code path (multi-iteration repair loops, MEIC's log
/// feedback, GPT-direct sampling) crosses the batch boundary.
fn llm_config(workers: usize) -> CampaignConfig {
    CampaignConfig {
        dataset_size: 8,
        dataset_seed: 0xBA7C,
        methods: vec![MethodKind::Uvllm, MethodKind::Meic, MethodKind::GptDirect],
        workers,
        shard: ShardSpec::default(),
        backend: uvllm_campaign::SimBackend::default(),
        ..CampaignConfig::default()
    }
}

fn sorted_lines(config: CampaignConfig) -> Vec<String> {
    let mut sink = MemorySink::new();
    Campaign::new(config).unwrap().run(&mut sink).unwrap();
    let mut lines: Vec<String> = sink.rows().iter().map(EvalRow::to_json_line).collect();
    lines.sort();
    lines
}

#[test]
fn batched_rows_match_direct_rows_at_1_2_and_8_workers() {
    let expected = sorted_lines(llm_config(1));
    assert_eq!(expected.len(), 24, "8 instances x 3 methods");
    for workers in [1, 2, 8] {
        for max_batch in [2, 8] {
            let mut config = llm_config(workers);
            config.llm_batch = Some(BatchConfig { max_batch, ..BatchConfig::default() });
            assert_eq!(
                sorted_lines(config),
                expected,
                "batched(max_batch {max_batch}) rows must be byte-identical \
                 to the direct oracle at {workers} workers"
            );
        }
    }
}

#[test]
fn injected_latency_changes_wall_clock_not_rows() {
    let mut direct = llm_config(2);
    direct.dataset_size = 4;
    let expected = sorted_lines(direct.clone());

    // Direct with a (tiny) injected endpoint latency.
    let mut slow = direct.clone();
    slow.llm_latency = Some(Duration::from_millis(1));
    assert_eq!(sorted_lines(slow), expected);

    // Batched with the same latency injected per flush.
    let mut batched = direct;
    batched.llm_batch = Some(BatchConfig::default());
    batched.llm_latency = Some(Duration::from_millis(1));
    assert_eq!(sorted_lines(batched), expected);
}

#[test]
fn telemetry_rows_carry_wait_members_and_strip_back_to_canonical() {
    let mut config = llm_config(2);
    config.dataset_size = 4;
    let expected = sorted_lines(config.clone());

    config.llm_batch = Some(BatchConfig::default());
    config.llm_telemetry = true;
    let mut sink = MemorySink::new();
    let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();

    let batch_max = outcome.new_records.iter().map(|r| r.llm_batch_max).max().unwrap_or(0);
    assert!(batch_max >= 1);
    // The registry snapshot carries the service-wide equivalents of the
    // old outcome roll-ups.
    assert!(outcome.metrics.counter("llm.tickets").unwrap_or(0) >= 1);
    let mut canonical = Vec::new();
    for row in sink.rows() {
        // Telemetry members are present, survive a JSONL round trip...
        assert!(row.llm_wait_ms.is_some() && row.llm_batch_max.is_some());
        let reparsed = EvalRow::from_json_line(&row.to_json_line()).unwrap();
        assert_eq!(&reparsed, row);
        // ...and stripping them recovers the canonical byte-identical row.
        let mut stripped = row.clone();
        stripped.llm_wait_ms = None;
        stripped.llm_batch_max = None;
        canonical.push(stripped.to_json_line());
    }
    canonical.sort();
    assert_eq!(canonical, expected);
}

#[test]
fn per_job_usage_attribution_is_preserved_by_batching() {
    // Byte-identity already implies this, but assert the accounting
    // columns explicitly: each job's usage on the shared service equals
    // its usage on a private model — the per-ticket delta contract.
    let direct = sorted_lines(llm_config(1));
    let mut config = llm_config(4);
    config.llm_batch = Some(BatchConfig { max_batch: 6, ..BatchConfig::default() });
    let batched = sorted_lines(config);
    for (a, b) in direct.iter().zip(&batched) {
        let a = EvalRow::from_json_line(a).unwrap();
        let b = EvalRow::from_json_line(b).unwrap();
        assert_eq!(a.id, b.id);
        assert_eq!(a.llm_calls, b.llm_calls, "{}", a.id);
        assert_eq!(a.prompt_tokens, b.prompt_tokens, "{}", a.id);
        assert_eq!(a.completion_tokens, b.completion_tokens, "{}", a.id);
        assert_eq!(a.sim_latency_ms, b.sim_latency_ms, "{}", a.id);
    }
}
