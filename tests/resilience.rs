//! Fault-tolerance guarantees of the serving stack, end to end:
//!
//! * **byte-identity under faults** — a campaign with LLM faults
//!   injected at double-digit rates, absorbed by the resilient
//!   service's retries, produces rows byte-identical to the fault-free
//!   run, on both simulation kernels (the injector fabricates faults
//!   without consuming the model's stream, so a retried ticket lands on
//!   exactly the completion the clean run saw);
//! * **replay** — the same `--fault-seed` produces the same fault
//!   sequence, rows and resilience counters, twice;
//! * **panic isolation** — an injected worker panic quarantines its own
//!   job as a `worker_panic` row while every other job completes and
//!   the run exits cleanly;
//! * **honest degradation** — when the retry budget genuinely cannot
//!   absorb the fault rate, affected rows carry `"degraded": true` and
//!   every *other* row still matches the fault-free baseline.

use std::sync::Mutex;
use std::time::Duration;
use uvllm_campaign::{
    Campaign, CampaignConfig, FaultPlan, MemorySink, MethodKind, ResiliencePolicy,
};
use uvllm_sim::SimBackend;

/// The replay test measures *deltas* of the process-global resilience
/// counters; every test that injects faults takes this lock so a
/// concurrent sibling cannot bleed into the measured window.
static FAULT_COUNTERS: Mutex<()> = Mutex::new(());

fn config(backend: SimBackend) -> CampaignConfig {
    CampaignConfig {
        dataset_size: 8,
        dataset_seed: 0xFA11,
        // LLM-heavy methods: the pipeline, a baseline conversation and
        // the one-shot direct method all route through the resilient
        // service; Strider covers the LLM-free path staying untouched.
        methods: vec![MethodKind::Uvllm, MethodKind::GptDirect, MethodKind::Strider],
        workers: 2,
        backend,
        ..CampaignConfig::default()
    }
}

fn faults() -> FaultPlan {
    FaultPlan { error_rate: 0.15, malform_rate: 0.10, ..FaultPlan::default() }
}

fn retries(budget: u32) -> ResiliencePolicy {
    ResiliencePolicy {
        retries: budget,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_micros(400),
        breaker_threshold: 100,
        validate: true,
        ..ResiliencePolicy::default()
    }
}

fn sorted_rows(config: CampaignConfig) -> Vec<String> {
    let mut sink = MemorySink::new();
    Campaign::new(config).unwrap().run(&mut sink).unwrap();
    let mut rows: Vec<String> = sink.rows().iter().map(|r| r.to_json_line()).collect();
    rows.sort();
    rows
}

#[test]
fn faulted_rows_match_the_fault_free_baseline_on_both_kernels() {
    let _serial = FAULT_COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    for backend in [SimBackend::EventDriven, SimBackend::Compiled] {
        let baseline = sorted_rows(config(backend));
        assert_eq!(baseline.len(), 24, "8 instances x 3 methods");
        let mut faulted = config(backend);
        faulted.fault = Some(faults());
        faulted.resilience = Some(retries(8));
        let rows = sorted_rows(faulted);
        assert!(
            !rows.iter().any(|r| r.contains("\"degraded\"")),
            "[{backend}] 8 retries must absorb 25% fault rates without degrading"
        );
        assert_eq!(rows, baseline, "[{backend}] faulted rows must match the fault-free run");
    }
}

#[test]
fn the_same_fault_seed_replays_rows_and_counters() {
    let _serial = FAULT_COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    let run = || {
        let mut faulted = config(SimBackend::EventDriven);
        faulted.fault = Some(FaultPlan { seed: 0xBAD5EED, ..faults() });
        faulted.resilience = Some(retries(8));
        let before = |name: &str| uvllm_obs::registry().counter(name).get();
        let (retries0, faults0) = (before("llm.retries"), before("llm.faults.errors"));
        let rows = sorted_rows(faulted);
        (rows, before("llm.retries") - retries0, before("llm.faults.errors") - faults0)
    };
    let (rows_a, retries_a, faults_a) = run();
    let (rows_b, retries_b, faults_b) = run();
    assert!(faults_a > 0, "the plan must inject something for replay to mean anything");
    assert_eq!(rows_a, rows_b, "same fault seed, same rows");
    assert_eq!(retries_a, retries_b, "same fault seed, same retry count");
    assert_eq!(faults_a, faults_b, "same fault seed, same injected-fault count");
}

#[test]
fn an_injected_panic_quarantines_one_job_and_the_rest_complete() {
    let mut with_panic = config(SimBackend::EventDriven);
    let victim = "@GPT-4-turbo";
    with_panic.pool.inject_panic = Some(victim.to_string());
    let mut sink = MemorySink::new();
    let outcome = Campaign::new(with_panic).unwrap().run(&mut sink).unwrap();
    assert_eq!(sink.rows().len(), 24, "every job answers, crashed ones included");
    let panicked: Vec<_> = sink.rows().iter().filter(|r| r.outcome == "worker_panic").collect();
    assert_eq!(panicked.len(), 8, "each GPT-direct job quarantines after its one requeue");
    assert!(panicked.iter().all(|r| r.id.contains(victim)));
    assert_eq!(outcome.pool_stats.requeued, 8, "every panicking job gets one second chance");
    assert_eq!(outcome.pool_stats.quarantined_panics, 8);

    // Rows the panic did not touch are byte-identical to a clean run.
    let baseline = sorted_rows(config(SimBackend::EventDriven));
    let mut unaffected: Vec<String> =
        sink.rows().iter().filter(|r| !r.id.contains(victim)).map(|r| r.to_json_line()).collect();
    unaffected.sort();
    let expected: Vec<String> =
        baseline.iter().filter(|line| !line.contains(victim)).cloned().collect();
    assert_eq!(unaffected, expected, "surviving jobs must be untouched by the sibling panics");
}

#[test]
fn a_starved_retry_budget_degrades_honestly() {
    let _serial = FAULT_COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    // No retries, no validation gate on top — every injected error
    // lands on the degradation chain. The heuristic fallback cannot
    // answer most prompts, so NoResponse surfaces; the engine treats
    // that like any other per-call model failure, and the campaign
    // still completes with every row present.
    let mut starved = config(SimBackend::EventDriven);
    starved.fault = Some(FaultPlan { error_rate: 0.35, ..FaultPlan::default() });
    starved.resilience =
        Some(ResiliencePolicy { retries: 0, breaker_threshold: 100, ..retries(0) });
    let mut sink = MemorySink::new();
    let outcome = Campaign::new(starved).unwrap().run(&mut sink).unwrap();
    assert_eq!(sink.rows().len(), 24, "degradation never loses rows");
    let degraded: Vec<_> = sink.rows().iter().filter(|r| r.degraded == Some(true)).collect();
    assert!(!degraded.is_empty(), "a 35% error rate with zero retries must degrade something");
    assert!(degraded.iter().all(|r| r.method != "Strider"), "LLM-free methods cannot degrade");
    assert!(outcome.metrics.counter("llm.degraded").unwrap_or(0) > 0);

    // Rows that did not degrade match the fault-free baseline exactly.
    let baseline = sorted_rows(config(SimBackend::EventDriven));
    let kept: Vec<String> =
        sink.rows().iter().filter(|r| r.degraded != Some(true)).map(|r| r.to_json_line()).collect();
    for line in &kept {
        assert!(baseline.contains(line), "non-degraded row diverged from the baseline: {line}");
    }
}
