//! End-to-end integration tests spanning the whole crate stack:
//! error injection → lint → UVM testbench → localization → repair →
//! rollback → differential validation.

use uvllm::{Stage, Uvllm, VerifyConfig};
use uvllm_errgen::{mutate, ErrorKind};
use uvllm_llm::{ModelProfile, OracleLlm};

/// A syntax error travels the whole pipeline: the linter flags it, the
/// pre-processing agent repairs it, the UVM testbench then passes, and
/// the differential campaign confirms equivalence.
#[test]
fn syntax_error_full_journey() {
    let design = uvllm_designs::by_name("counter_12").expect("design");
    let mut journeys = 0;
    for seed in 0..12 {
        let Ok(broken) = mutate(design.source, ErrorKind::MissingSemicolon, seed) else {
            continue;
        };
        // Sanity: the error is real.
        assert!(uvllm_verilog::parse(&broken.mutated_src).is_err());
        assert!(!uvllm_lint::lint(&broken.mutated_src).errors().is_empty());

        let mut llm = OracleLlm::new(
            broken.ground_truth.clone(),
            design.source,
            ModelProfile::Gpt4Turbo,
            seed,
        );
        let mut framework = Uvllm::new(&mut llm, VerifyConfig::default());
        let outcome = framework.verify(design, &broken.mutated_src);
        if outcome.success {
            journeys += 1;
            assert!(uvllm::metrics::fix_confirmed(design, &outcome.final_code));
            assert!(uvllm_lint::lint(&outcome.final_code).errors().is_empty());
        }
    }
    assert!(journeys >= 8, "only {journeys}/12 syntax errors repaired end-to-end");
}

/// A functional error exercises the UVM + localization + repair path and
/// the result is independently confirmed.
#[test]
fn functional_error_full_journey() {
    let design = uvllm_designs::by_name("alu_8bit").expect("design");
    let mut confirmed = 0;
    let mut attempted = 0;
    for seed in 0..12 {
        let Some(inst) = uvllm::build_instance(design, ErrorKind::OperatorMisuse, seed) else {
            continue;
        };
        attempted += 1;
        let mut llm =
            OracleLlm::new(inst.ground_truth.clone(), design.source, ModelProfile::Gpt4Turbo, seed);
        let mut framework = Uvllm::new(&mut llm, VerifyConfig::default());
        let outcome = framework.verify(design, &inst.mutated_src);
        if outcome.success {
            // UVLLM's acceptance is its own strong testbench; confirm
            // against the extended campaign like the paper's experts.
            if uvllm::metrics::fix_confirmed(design, &outcome.final_code) {
                confirmed += 1;
            }
            assert!(matches!(
                outcome.fixed_by,
                Some(Stage::RepairMs) | Some(Stage::RepairSl) | Some(Stage::Preprocess)
            ));
        }
    }
    assert!(attempted >= 6, "mutation should apply to the ALU");
    assert!(confirmed >= attempted / 2, "only {confirmed}/{attempted} confirmed");
}

/// Declaration-type errors (Table I, `output reg` → `output`) are caught
/// by the linter as real compile errors and routed through
/// pre-processing — the paper's explanation for why pre-processing fixes
/// a chunk of *functional* instances (Table II).
#[test]
fn decl_type_errors_route_through_preprocessing() {
    let design = uvllm_designs::by_name("updown_counter_8").expect("design");
    let broken = mutate(design.source, ErrorKind::DeclTypeMisuse, 1).expect("mutation");
    // It parses but the linter and elaborator both reject it.
    assert!(uvllm_verilog::parse(&broken.mutated_src).is_ok());
    let report = uvllm_lint::lint(&broken.mutated_src);
    assert!(
        report.errors().iter().any(|d| d.code == uvllm_lint::LintCode::ProcWire),
        "linter must flag the procedural write to a wire"
    );

    let mut fixed_by_pre = 0;
    for seed in 0..10 {
        let mut llm = OracleLlm::new(
            broken.ground_truth.clone(),
            design.source,
            ModelProfile::Gpt4Turbo,
            seed,
        );
        let mut framework = Uvllm::new(&mut llm, VerifyConfig::default());
        let outcome = framework.verify(design, &broken.mutated_src);
        if outcome.success && outcome.fixed_by == Some(Stage::Preprocess) {
            fixed_by_pre += 1;
        }
    }
    assert!(fixed_by_pre >= 4, "preprocessing fixed only {fixed_by_pre}/10");
}

/// The scripted warning templates repair timing-related issues without
/// any LLM call at all (Algorithm 1's Replace step).
#[test]
fn scripted_fixes_need_no_llm() {
    let src = "module m(input clk, input d, output reg q, output reg y, input a, input b);\n\
               always @(posedge clk) q = d;\n\
               always @(*) y <= a & b;\nendmodule\n";
    let mut llm = uvllm_llm::DirectService::new(uvllm_llm::ScriptedLlm::new([]));
    let (fixed, stats) = uvllm::preprocess(src, "spec", &mut llm, uvllm_llm::OutputMode::Pairs, 4);
    assert!(stats.clean);
    assert_eq!(stats.llm_calls, 0);
    assert_eq!(stats.script_fixes, 2);
    assert!(fixed.contains("q <= d;"));
    assert!(fixed.contains("y = a & b;"));
}

/// Hallucinated patches that damage a working area of the design are
/// detected by the score register and rolled back, and the rejected pair
/// is carried forward as a damage repair.
#[test]
fn damage_is_rolled_back_and_remembered() {
    let design = uvllm_designs::by_name("counter_12").expect("design");
    let buggy = design.source.replace("== 4'd11", "== 4'd13");
    let damage = uvllm_llm::RepairResponse {
        module_name: "counter_12".into(),
        analysis: "wrong".into(),
        correct: vec![uvllm_llm::RepairPair {
            original: "q <= q + 4'd1;".into(),
            patched: "q <= q + 4'd3;".into(),
        }],
    };
    let nothing = uvllm_llm::RepairResponse {
        module_name: "counter_12".into(),
        analysis: "pass".into(),
        correct: vec![],
    };
    let mut llm = uvllm_llm::ScriptedLlm::new(vec![
        damage.to_json(),
        nothing.to_json(),
        nothing.to_json(),
        nothing.to_json(),
        nothing.to_json(),
    ]);
    let mut framework = Uvllm::new(&mut llm, VerifyConfig::default());
    let outcome = framework.verify(design, &buggy);
    assert!(!outcome.success);
    assert_eq!(outcome.rollbacks, 1);
    assert_eq!(outcome.damage_repairs, 1);
    assert!(outcome.final_code.contains("q <= q + 4'd1;"), "damage must be reverted");
}

/// Every error kind that applies to a design yields an instance whose
/// injected bug is real (fails validation) and whose ground-truth fix
/// restores equivalence.
#[test]
fn ground_truth_fixes_are_sound() {
    let design = uvllm_designs::by_name("lifo_stack").expect("design");
    for kind in ErrorKind::ALL {
        let Some(inst) = uvllm::build_instance(design, kind, 3) else { continue };
        // Applying the ground-truth window pair restores a working file.
        let repaired = inst.mutated_src.replacen(
            &inst.ground_truth.buggy_window,
            &inst.ground_truth.fixed_window,
            1,
        );
        assert!(
            uvllm::metrics::fix_confirmed(design, &repaired),
            "{kind}: ground-truth fix did not restore equivalence"
        );
    }
}
