//! Campaign-level backend guarantees: the compiled kernel yields the
//! same verdicts as the event-driven baseline (rows differ only in the
//! recorded `backend` label), and an oscillating DUT surfaces
//! `SimError::Unstable` through the campaign `ResultSink` as a distinct
//! outcome row instead of a crash.

use uvllm::{build_instance, Verdict};
use uvllm_campaign::{
    Campaign, CampaignConfig, EvalRow, MemorySink, MethodKind, ResultSink, SimBackend,
};
use uvllm_errgen::ErrorKind;

fn config(backend: SimBackend) -> CampaignConfig {
    CampaignConfig {
        dataset_size: 8,
        dataset_seed: 0xD15E,
        methods: vec![MethodKind::Uvllm, MethodKind::Strider],
        workers: 4,
        backend,
        ..CampaignConfig::default()
    }
}

/// Rows must be identical across backends once the backend label itself
/// is normalised away — the backend is a speed knob, not a semantics
/// knob.
#[test]
fn campaign_rows_identical_across_backends() {
    let mut per_backend = Vec::new();
    for backend in SimBackend::ALL {
        let mut sink = MemorySink::new();
        Campaign::new(config(backend)).unwrap().run(&mut sink).unwrap();
        let mut lines: Vec<String> = sink
            .rows()
            .iter()
            .map(|r| {
                let mut row = r.clone();
                assert_eq!(row.backend, backend.label(), "rows must record their backend");
                row.backend = "normalised".into();
                row.to_json_line()
            })
            .collect();
        lines.sort();
        per_backend.push(lines);
    }
    assert!(!per_backend[0].is_empty());
    assert_eq!(
        per_backend[0], per_backend[1],
        "event-driven and compiled kernels must produce identical verdicts"
    );
}

/// An oscillating cross-coupled DUT must flow through evaluation and the
/// result sink as a distinct `unstable` outcome row carrying the
/// activation cap — not panic, not a bare `fixed: false`.
#[test]
fn unstable_design_becomes_a_distinct_outcome_row() {
    // Take a real benchmark instance, then swap its mutated source for
    // an interface-compatible adder whose cross-coupled always blocks
    // oscillate as soon as stimulus drives a[0] high.
    let d = uvllm_designs::by_name("adder_8bit").unwrap();
    let mut inst = build_instance(d, ErrorKind::OperatorMisuse, 5).expect("instance");
    inst.mutated_src = "module adder_8bit(\n  input [7:0] a,\n  input [7:0] b,\n  input cin,\n\
                        \x20 output [7:0] sum,\n  output cout\n);\nreg p;\nreg q;\n\
                        assign sum = {7'd0, p};\nassign cout = q;\n\
                        always @(*) begin\nif (a[0]) begin\ncase (q)\n1'b0: p = 1'b1;\n\
                        default: p = 1'b0;\nendcase\nend else\np = 1'b0;\nend\n\
                        always @(*) begin\nif (a[0]) begin\ncase (p)\n1'b0: q = 1'b0;\n\
                        default: q = 1'b1;\nendcase\nend else\nq = 1'b0;\nend\nendmodule\n"
        .to_string();

    for backend in SimBackend::ALL {
        // Strider is scripted (no LLM) and cannot repair this shape, so
        // the final code still oscillates when the metrics re-check it.
        let record = uvllm_campaign::evaluate_one_with(MethodKind::Strider, &inst, backend);
        assert!(!record.fixed, "{backend}");
        assert_eq!(
            record.fix_outcome,
            Verdict::Unstable { activations: uvllm_sim::MAX_ACTIVATIONS },
            "{backend}: oscillation must be classified, with the activation cap"
        );

        // The row lands in a campaign sink as a distinct outcome.
        let mut sink = MemorySink::new();
        let row = record.to_row();
        sink.append(&row).unwrap();
        assert_eq!(sink.rows()[0].outcome, "unstable");
        assert_eq!(sink.rows()[0].backend, backend.label());

        // And survives the JSONL round trip.
        let back = EvalRow::from_json_line(&row.to_json_line()).unwrap();
        assert_eq!(back, row);
        assert_eq!(back.outcome, "unstable");
    }
}

/// Pre-schema JSONL rows (no `backend` / `outcome` members) still decode
/// with their historical implicit values, so old campaign files resume.
#[test]
fn legacy_rows_decode_with_default_backend_and_outcome() {
    let line = "{\"id\":\"adder_8bit/operator_misuse#5@Strider\",\
                \"instance\":\"adder_8bit/operator_misuse#5\",\"design\":\"adder_8bit\",\
                \"group\":\"Arithmetic\",\"kind\":\"operator_misuse\",\"syntax\":false,\
                \"category\":\"Flawed conditions\",\"method\":\"Strider\",\"hit\":false,\
                \"fixed\":true,\"claimed\":true,\"llm_calls\":0,\"prompt_tokens\":0,\
                \"completion_tokens\":0,\"sim_latency_ms\":0,\"fixed_by\":null}";
    let row = EvalRow::from_json_line(line).unwrap();
    assert_eq!(row.backend, "event");
    assert_eq!(row.outcome, "pass");
}
