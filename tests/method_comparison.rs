//! Cross-method integration tests: the evaluation harness produces the
//! paper's qualitative orderings on a small fixed dataset.

use uvllm_bench::harness::{evaluate, MethodKind};
use uvllm_bench::report::{fr, hr};

fn small_dataset() -> uvllm::Dataset {
    uvllm::build_dataset(48, 0x7E57)
}

#[test]
fn uvllm_beats_baselines_on_fix_rate() {
    let ds = small_dataset();
    let uvllm_recs = evaluate(MethodKind::Uvllm, &ds.instances);
    let meic_recs = evaluate(MethodKind::Meic, &ds.instances);
    let gpt_recs = evaluate(MethodKind::GptDirect, &ds.instances);

    let u: Vec<_> = uvllm_recs.iter().collect();
    let m: Vec<_> = meic_recs.iter().collect();
    let g: Vec<_> = gpt_recs.iter().collect();
    assert!(fr(&u) > fr(&m), "UVLLM {:.1} should beat MEIC {:.1}", fr(&u), fr(&m));
    assert!(fr(&u) > fr(&g), "UVLLM {:.1} should beat GPT-direct {:.1}", fr(&u), fr(&g));
}

#[test]
fn overfitting_gap_is_larger_for_weakly_tested_methods() {
    let ds = small_dataset();
    let functional: Vec<_> = ds.functional().into_iter().cloned().collect();
    let uvllm_recs = evaluate(MethodKind::Uvllm, &functional);
    let meic_recs = evaluate(MethodKind::Meic, &functional);

    let u: Vec<_> = uvllm_recs.iter().collect();
    let m: Vec<_> = meic_recs.iter().collect();
    let uvllm_gap = hr(&u) - fr(&u);
    let meic_gap = hr(&m) - fr(&m);
    assert!(
        meic_gap > uvllm_gap,
        "MEIC's HR-FR gap ({meic_gap:.1}pp) should exceed UVLLM's ({uvllm_gap:.1}pp)"
    );
}

#[test]
fn template_methods_only_touch_functional_instances() {
    let ds = small_dataset();
    let syntax: Vec<_> = ds.syntax().into_iter().cloned().collect();
    let strider = evaluate(MethodKind::Strider, &syntax);
    // Strider never claims success on unparseable inputs.
    assert!(strider.iter().all(|r| !r.claimed));
    assert!(strider.iter().all(|r| !r.fixed));
}

#[test]
fn fixed_records_always_hit() {
    // FR is a strict superset of HR's test content, so fixed ⇒ hit for
    // every method — a consistency invariant of the harness itself.
    let ds = uvllm::build_dataset(24, 0xAB);
    for method in [MethodKind::Uvllm, MethodKind::Meic, MethodKind::Strider, MethodKind::RtlRepair]
    {
        for rec in evaluate(method, &ds.instances) {
            if rec.fixed {
                assert!(rec.hit, "{method:?} {}: fixed but not hit", rec.instance_id);
            }
        }
    }
}

#[test]
fn uvllm_claims_match_reality_more_often_than_meic() {
    // UVLLM's claim = strong UVM testbench; MEIC's claim = weak directed
    // tests. False claims (claimed but not fixed) should be rarer for
    // UVLLM — Result 2 of the paper.
    let ds = small_dataset();
    let functional: Vec<_> = ds.functional().into_iter().cloned().collect();
    let count_false =
        |method| evaluate(method, &functional).iter().filter(|r| r.claimed && !r.fixed).count();
    let uvllm_false = count_false(MethodKind::Uvllm);
    let meic_false = count_false(MethodKind::Meic);
    assert!(
        uvllm_false <= meic_false,
        "UVLLM false claims ({uvllm_false}) should not exceed MEIC's ({meic_false})"
    );
}
