//! Campaign-engine guarantees: worker-count-invariant output, shard
//! partitioning and crash-resume over the JSONL sink.

use std::path::PathBuf;
use uvllm_campaign::{
    Campaign, CampaignConfig, JsonlSink, MemorySink, MethodKind, ResultSink, ShardSpec,
};

fn small_config(workers: usize) -> CampaignConfig {
    CampaignConfig {
        dataset_size: 10,
        dataset_seed: 0xD15E,
        // One pipeline method (LLM-heavy), one baseline LLM method, one
        // script method: covers all evaluation paths.
        methods: vec![MethodKind::Uvllm, MethodKind::Meic, MethodKind::Strider],
        workers,
        shard: ShardSpec::default(),
        backend: uvllm_campaign::SimBackend::default(),
        ..CampaignConfig::default()
    }
}

fn sorted_lines(sink: &MemorySink) -> Vec<String> {
    let mut lines: Vec<String> = sink.rows().iter().map(|r| r.to_json_line()).collect();
    lines.sort();
    lines
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uvllm-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The core determinism contract: 1, 2 and 8 workers produce
/// byte-identical row sets.
#[test]
fn output_is_identical_for_1_2_and_8_workers() {
    let mut baseline = MemorySink::new();
    Campaign::new(small_config(1)).unwrap().run(&mut baseline).unwrap();
    let expected = sorted_lines(&baseline);
    assert_eq!(expected.len(), 30, "10 instances x 3 methods");

    for workers in [2, 8] {
        let mut sink = MemorySink::new();
        Campaign::new(small_config(workers)).unwrap().run(&mut sink).unwrap();
        assert_eq!(
            sorted_lines(&sink),
            expected,
            "rows must be byte-identical with {workers} workers"
        );
    }
}

/// The same contract through the file sink: sorted JSONL bytes match.
#[test]
fn jsonl_files_are_identical_across_worker_counts() {
    let mut files = Vec::new();
    for workers in [1, 8] {
        let path = temp_path(&format!("workers{workers}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlSink::open(&path).unwrap();
        Campaign::new(small_config(workers)).unwrap().run(&mut sink).unwrap();
        drop(sink);
        let mut lines: Vec<String> =
            std::fs::read_to_string(&path).unwrap().lines().map(str::to_string).collect();
        lines.sort();
        files.push(lines);
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(files[0], files[1]);
    assert!(!files[0].is_empty());
}

/// Kill-and-restart: a campaign whose sink dies mid-run (simulated by
/// truncating the JSONL file to a prefix, with the final line torn)
/// resumes by re-running only the missing jobs, and converges on
/// exactly the uninterrupted row set.
#[test]
fn resume_after_partial_sink_skips_completed_jobs() {
    let campaign = Campaign::new(small_config(2)).unwrap();

    // Uninterrupted reference run.
    let mut reference = MemorySink::new();
    let outcome = campaign.run(&mut reference).unwrap();
    let total = outcome.new_records.len();
    assert_eq!(total, 30);

    // Simulate the kill: a file holding 11 completed rows and a torn
    // 12th line that a crashed writer left behind.
    let path = temp_path("resume.jsonl");
    let keep = 11usize;
    let mut torn = String::new();
    for row in reference.existing_rows().iter().take(keep) {
        torn.push_str(&row.to_json_line());
        torn.push('\n');
    }
    let half = reference.existing_rows()[keep].to_json_line();
    torn.push_str(&half[..half.len() / 2]);
    std::fs::write(&path, &torn).unwrap();

    // Restart.
    let mut sink = JsonlSink::open(&path).unwrap();
    assert_eq!(sink.resumed(), keep, "torn line must not count as completed");
    let outcome = campaign.run(&mut sink).unwrap();
    assert_eq!(outcome.resumed, keep);
    assert_eq!(outcome.new_records.len(), total - keep);
    assert_eq!(outcome.report.rows().len(), total);

    // The merged file holds every job exactly once, matching the
    // uninterrupted run.
    drop(sink);
    let reopened = JsonlSink::open(&path).unwrap();
    let mut merged: Vec<String> =
        reopened.existing_rows().iter().map(|r| r.to_json_line()).collect();
    merged.sort();
    let mut expected: Vec<String> =
        reference.existing_rows().iter().map(|r| r.to_json_line()).collect();
    expected.sort();
    assert_eq!(merged, expected);
    let _ = std::fs::remove_file(&path);
}

/// Shards are worker-count-invariant too, and partition the campaign.
#[test]
fn sharded_runs_union_to_the_whole_campaign() {
    let mut whole = MemorySink::new();
    Campaign::new(small_config(1)).unwrap().run(&mut whole).unwrap();
    let expected = sorted_lines(&whole);

    let mut union = Vec::new();
    for index in 0..2 {
        let mut config = small_config(4);
        config.shard = ShardSpec { index, count: 2 };
        let mut sink = MemorySink::new();
        let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();
        assert_eq!(outcome.sharded_out + sink.rows().len(), outcome.total_jobs);
        union.extend(sink.rows().iter().map(|r| r.to_json_line()));
    }
    union.sort();
    assert_eq!(union, expected);
}
