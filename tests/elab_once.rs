//! Elaboration-cache accounting: a campaign elaborates each golden
//! design exactly once per worker set.
//!
//! Lives in its own integration-test binary (= its own process) because
//! the elaboration cache and its counters are process-global; sharing a
//! process with other campaign tests would make the absolute counter
//! assertions racy.

use uvllm_campaign::{Campaign, CampaignConfig, MemorySink, MethodKind, ShardSpec};

#[test]
fn golden_designs_elaborate_exactly_once_per_worker_set() {
    let config = CampaignConfig {
        dataset_size: 12,
        dataset_seed: 0xD15E,
        methods: vec![MethodKind::Uvllm, MethodKind::Strider],
        workers: 4,
        shard: ShardSpec::default(),
        backend: uvllm_campaign::SimBackend::default(),
        ..CampaignConfig::default()
    };

    uvllm_sim::cache::reset();
    let mut sink = MemorySink::new();
    let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();
    assert!(outcome.golden_designs >= 1);
    let after_run = uvllm_sim::cache::stats();
    assert_eq!(after_run.evictions, 0, "small campaign must not thrash the cache");

    // Every golden design is cache-resident: requesting each again adds
    // hits but zero misses. Combined with the no-eviction check and the
    // cache's elaborate-under-lock memoisation, that means each design
    // was parsed + elaborated exactly once across the whole worker set.
    let designs: std::collections::HashSet<&str> =
        sink.rows().iter().map(|r| r.design.as_str()).collect();
    assert_eq!(designs.len(), outcome.golden_designs);
    for name in designs {
        let design = uvllm_designs::by_name(name).unwrap();
        uvllm_sim::elaborate_source_cached(design.source, design.name).unwrap();
    }
    let after_probe = uvllm_sim::cache::stats();
    assert_eq!(
        after_probe.misses, after_run.misses,
        "golden designs must already be resident (elaborated exactly once)"
    );
    assert!(after_probe.hits > after_run.hits);

    // The campaign workload itself reused elaborations heavily: the
    // mutated source of each instance is shared by both methods, and
    // every metric check re-visits its candidate.
    assert!(
        after_run.hits >= after_run.misses,
        "cache should serve at least as many hits as misses (got {after_run:?})"
    );
}
