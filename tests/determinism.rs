//! Whole-stack determinism: identical seeds reproduce identical
//! datasets, repairs and evaluation records — the property that makes
//! every experiment in EXPERIMENTS.md replayable bit-for-bit.

use uvllm_bench::harness::{evaluate_one, MethodKind};

#[test]
fn dataset_builds_identically() {
    let a = uvllm::build_dataset(30, 0x1234);
    let b = uvllm::build_dataset(30, 0x1234);
    assert_eq!(a.instances.len(), b.instances.len());
    for (x, y) in a.instances.iter().zip(&b.instances) {
        assert_eq!(x.id(), y.id());
        assert_eq!(x.mutated_src, y.mutated_src);
        assert_eq!(x.ground_truth, y.ground_truth);
    }
    let c = uvllm::build_dataset(30, 0x9999);
    let ids_a: Vec<_> = a.instances.iter().map(|i| i.id()).collect();
    let ids_c: Vec<_> = c.instances.iter().map(|i| i.id()).collect();
    assert_ne!(ids_a, ids_c, "different seeds should differ");
}

#[test]
fn full_evaluation_is_reproducible() {
    let ds = uvllm::build_dataset(8, 0x42);
    for method in [MethodKind::Uvllm, MethodKind::Meic, MethodKind::GptDirect] {
        for inst in &ds.instances {
            let a = evaluate_one(method, inst);
            let b = evaluate_one(method, inst);
            assert_eq!(a.fixed, b.fixed, "{method:?} {}", inst.id());
            assert_eq!(a.hit, b.hit);
            assert_eq!(a.claimed, b.claimed);
            assert_eq!(a.usage.prompt_tokens, b.usage.prompt_tokens);
            assert_eq!(a.fixed_by, b.fixed_by);
        }
    }
}

#[test]
fn methods_draw_independent_randomness() {
    // The same instance evaluated by different LLM methods must not
    // share oracle draws (salted seeds), yet each stays deterministic.
    let ds = uvllm::build_dataset(6, 0x77);
    for inst in &ds.instances {
        let u = evaluate_one(MethodKind::Uvllm, inst);
        let m = evaluate_one(MethodKind::Meic, inst);
        // Not an equality assertion on outcomes (they may coincide);
        // usage patterns must reflect the different harnesses though.
        assert!(u.stage_times.is_some());
        assert!(m.stage_times.is_none());
    }
}
