//! Allocation regression suite for the verification hot loop.
//!
//! The steady-state cycle loop — drive pre-resolved ports, settle,
//! observe into reused buffers, step the reference model through an
//! [`uvllm_uvm::IoFrame`], compare slot-by-slot, sample coverage —
//! performs **zero heap allocations per cycle**, on **both** kernels. A
//! counting global allocator makes that an enforced contract instead of
//! a comment: if the frame API, the compiled kernel's scratch reuse, or
//! the event interpreter's precompiled process programs + persistent
//! scratch planes regress, these tests fail with a per-cycle allocation
//! count, not a silent slowdown.
//!
//! Since the event kernel executes flat process programs with
//! cleared-not-dropped event/NBA/write queues, it is held to the same
//! strict zero bound as the compiled kernel
//! ([`kernels_are_allocation_free_for_all_designs_on_both_backends`]
//! covers every golden design on both backends). Waveform capture
//! remains exempt (one frame per cycle, by design, and disabled here
//! the way metric runs disable it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed
// atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counter is process-global, so the measuring tests must not run
/// concurrently — a sibling test's allocations inside a measurement
/// window would fail a strict delta for no real regression.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

use uvllm_sim::{AnySim, Logic, SimBackend, SimControl};
use uvllm_uvm::{Environment, IoFrame, RandomSequence, RunSummary, Sequence};

/// The raw kernel matrix: every golden design, on **both** backends,
/// must run 10,000 driven clock cycles with **zero** heap allocations.
/// This is the strict bound the event kernel's process-program rework
/// buys: pokes, process activations, blocking/non-blocking writes and
/// event propagation all run out of persistent scratch.
#[test]
fn kernels_are_allocation_free_for_all_designs_on_both_backends() {
    let _guard = serial();
    for backend in SimBackend::ALL {
        for d in uvllm_designs::all() {
            let design = uvllm_sim::elaborate_source_cached(d.source, d.name)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
            let mut sim = AnySim::new(&design, backend).unwrap();
            let iface = (d.iface)();
            let resolve = |name: &str| design.signal_id(name).expect("port exists");
            let inputs: Vec<(uvllm_sim::SignalId, u32)> =
                iface.inputs.iter().map(|p| (resolve(&p.name), p.width)).collect();
            let clock = iface.clock.as_deref().map(resolve);
            let probe = design.outputs().first().copied();

            // Reset protocol (mirrors the UVM environment's).
            for (id, w) in &inputs {
                sim.poke(*id, Logic::zeros(*w)).unwrap();
            }
            if let Some(clk) = clock {
                sim.poke(clk, Logic::bit(false)).unwrap();
            }
            if let Some(reset) = &iface.reset {
                let rid = resolve(&reset.name);
                sim.poke(rid, Logic::bit(!reset.active_low)).unwrap();
                if let Some(clk) = clock {
                    for _ in 0..2 {
                        sim.poke(clk, Logic::bit(true)).unwrap();
                        sim.poke(clk, Logic::bit(false)).unwrap();
                    }
                }
                sim.poke(rid, Logic::bit(reset.active_low)).unwrap();
            }

            // One driven cycle; the LCG keeps stimulus varied without
            // allocating.
            let mut lcg = 0x2545_F491_4F6C_DD1Du64 ^ backend as u64;
            let cycle = |sim: &mut AnySim, lcg: &mut u64| {
                for (id, w) in &inputs {
                    *lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    sim.poke(*id, Logic::from_u128(*w, (*lcg >> 16) as u128)).unwrap();
                }
                if let Some(clk) = clock {
                    sim.poke(clk, Logic::bit(true)).unwrap();
                    sim.poke(clk, Logic::bit(false)).unwrap();
                }
                sim.settle().unwrap();
            };

            // Warm-up: let every scratch queue reach its high-water
            // capacity, then measure the steady state strictly.
            for _ in 0..2_000 {
                cycle(&mut sim, &mut lcg);
            }
            let before = allocations();
            for _ in 0..10_000 {
                cycle(&mut sim, &mut lcg);
            }
            let delta = allocations() - before;
            if let Some(out) = probe {
                std::hint::black_box(sim.peek(out));
            }
            assert_eq!(
                delta, 0,
                "{}[{}]: {delta} heap allocations across 10k driven cycles \
                 (steady state must be allocation-free on both kernels)",
                d.name, backend
            );
        }
    }
}

/// The reference-model boundary in isolation: every one of the 27
/// golden models, bound once, must step through its frame without a
/// single allocation.
#[test]
fn refmodel_step_is_allocation_free_for_all_designs() {
    let _guard = serial();
    for d in uvllm_designs::all() {
        let iface = (d.iface)();
        let spec = uvllm_uvm::IoSpec::from_interface(&iface);
        let mut model = (d.model)();
        model.bind(&spec);
        model.reset();
        let inputs: Vec<Logic> =
            iface.inputs.iter().map(|p| Logic::from_u128(p.width, 1)).collect();
        let mut outputs: Vec<Logic> = iface.outputs.iter().map(|p| Logic::xs(p.width)).collect();
        // Warm-up (nothing should allocate even here, but keep the
        // contract scoped to the steady state).
        for _ in 0..16 {
            let mut frame = IoFrame::new(&inputs, &mut outputs);
            model.step(&mut frame);
        }
        let before = allocations();
        for _ in 0..10_000 {
            let mut frame = IoFrame::new(&inputs, &mut outputs);
            model.step(&mut frame);
        }
        let delta = allocations() - before;
        assert_eq!(delta, 0, "{}: {} allocations across 10k model steps", d.name, delta);
    }
}

/// Runs one full environment (reset + sequences + scoreboard +
/// coverage, waveform capture off) and returns (summary, allocations).
fn run_counted(
    design: &uvllm_designs::Design,
    cycles: usize,
    backend: SimBackend,
) -> (RunSummary, u64) {
    let iface = (design.iface)();
    let seqs: Vec<Box<dyn Sequence>> =
        vec![Box::new(RandomSequence::new(&iface.inputs, cycles, 0xA110C))];
    let env = Environment::from_source_with(
        design.source,
        design.name,
        iface,
        (design.model)(),
        seqs,
        backend,
    )
    .expect("env")
    .without_waveform();
    let before = allocations();
    let summary = env.run();
    (summary, allocations() - before)
}

/// The whole environment + refmodel + kernel loop, on **both**
/// backends: growing a run by 2,000 cycles must not grow its allocation
/// count — i.e. after the construction/warm-up phase, the per-cycle
/// cost is zero heap allocations. A single per-cycle allocation
/// anywhere in the loop would show up as a delta of ≥ 2,000.
#[test]
fn environment_steady_state_is_allocation_free_per_cycle() {
    let _guard = serial();
    for backend in SimBackend::ALL {
        // One design per category, sequential and combinational.
        for name in ["adder_8bit", "counter_12", "fifo_sync", "alu_8bit"] {
            let design = uvllm_designs::by_name(name).unwrap();
            // Prime process-wide caches (elaboration, compilation,
            // pooled instance) so both measured runs start from the
            // same state.
            let (warm, _) = run_counted(design, 64, backend);
            assert!(warm.all_passed(), "{name}[{backend}]: golden model must pass");
            let (short, short_allocs) = run_counted(design, 500, backend);
            let (long, long_allocs) = run_counted(design, 2500, backend);
            assert!(short.all_passed() && long.all_passed(), "{name}[{backend}]: runs must pass");
            assert_eq!(long.cycles, short.cycles + 2000, "{name}[{backend}]: cycle accounting");
            let delta = long_allocs.saturating_sub(short_allocs);
            assert!(
                delta < 64,
                "{name}[{backend}]: {delta} extra allocations across 2000 extra cycles \
                 (steady state must be allocation-free; short run: {short_allocs}, \
                 long run: {long_allocs})"
            );
        }
    }
}

/// Pool reuse keeps even environment *construction* allocation-light:
/// the second checkout of the same text must not re-instantiate the
/// arena. (Coarse bound — the point is to catch re-instantiation, which
/// costs hundreds of allocations for elaboration-scale structures.)
#[test]
fn pooled_checkout_rewinds_instead_of_rebuilding() {
    let _guard = serial();
    let design = uvllm_designs::by_name("gray_counter_4").unwrap();
    // Unique text so this test owns the pool key.
    let code = format!("{}// alloc-test probe\n", design.source);
    let build = |_tag: &str| uvllm_sim::checkout_sim(&code, design.name).expect("builds");
    drop(build("prime")); // compile + first instance, parked on drop
    let before = allocations();
    let sim = build("reuse");
    let delta = allocations() - before;
    assert_eq!(sim.time(), 0);
    assert!(
        delta < 40,
        "{delta} allocations for a pooled re-checkout (expected a rewind, not a rebuild)"
    );
}
