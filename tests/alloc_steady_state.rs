//! Allocation regression suite for the verification hot loop.
//!
//! The IoSpec/IoFrame refactor's whole point is that the steady-state
//! cycle loop — drive pre-resolved ports, settle, observe into reused
//! buffers, step the reference model through an [`uvllm_uvm::IoFrame`],
//! compare slot-by-slot, sample coverage — performs **zero heap
//! allocations per cycle**. A counting global allocator makes that an
//! enforced contract instead of a comment: if the frame API (or the
//! compiled kernel's scratch reuse) regresses, these tests fail with a
//! per-cycle allocation count, not a silent slowdown.
//!
//! The event-driven kernel is exempt from the strict zero bound (its
//! interpreter still allocates while executing process bodies), as is
//! waveform capture (one frame per cycle, by design, and disabled here
//! the way metric runs disable it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed
// atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counter is process-global, so the measuring tests must not run
/// concurrently — a sibling test's allocations inside a measurement
/// window would fail a strict delta for no real regression.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

use uvllm_sim::{Logic, SimBackend};
use uvllm_uvm::{Environment, IoFrame, RandomSequence, RunSummary, Sequence};

/// The reference-model boundary in isolation: every one of the 27
/// golden models, bound once, must step through its frame without a
/// single allocation.
#[test]
fn refmodel_step_is_allocation_free_for_all_designs() {
    let _guard = serial();
    for d in uvllm_designs::all() {
        let iface = (d.iface)();
        let spec = uvllm_uvm::IoSpec::from_interface(&iface);
        let mut model = (d.model)();
        model.bind(&spec);
        model.reset();
        let inputs: Vec<Logic> =
            iface.inputs.iter().map(|p| Logic::from_u128(p.width, 1)).collect();
        let mut outputs: Vec<Logic> = iface.outputs.iter().map(|p| Logic::xs(p.width)).collect();
        // Warm-up (nothing should allocate even here, but keep the
        // contract scoped to the steady state).
        for _ in 0..16 {
            let mut frame = IoFrame::new(&inputs, &mut outputs);
            model.step(&mut frame);
        }
        let before = allocations();
        for _ in 0..10_000 {
            let mut frame = IoFrame::new(&inputs, &mut outputs);
            model.step(&mut frame);
        }
        let delta = allocations() - before;
        assert_eq!(delta, 0, "{}: {} allocations across 10k model steps", d.name, delta);
    }
}

/// Runs one full environment (reset + sequences + scoreboard +
/// coverage, waveform capture off) and returns (summary, allocations).
fn run_counted(design: &uvllm_designs::Design, cycles: usize) -> (RunSummary, u64) {
    let iface = (design.iface)();
    let seqs: Vec<Box<dyn Sequence>> =
        vec![Box::new(RandomSequence::new(&iface.inputs, cycles, 0xA110C))];
    let env = Environment::from_source_with(
        design.source,
        design.name,
        iface,
        (design.model)(),
        seqs,
        SimBackend::Compiled,
    )
    .expect("env")
    .without_waveform();
    let before = allocations();
    let summary = env.run();
    (summary, allocations() - before)
}

/// The whole environment + refmodel + compiled-kernel loop: growing a
/// run by 2,000 cycles must not grow its allocation count — i.e. after
/// the construction/warm-up phase, the per-cycle cost is zero heap
/// allocations. A single per-cycle allocation anywhere in the loop
/// would show up as a delta of ≥ 2,000.
#[test]
fn environment_steady_state_is_allocation_free_per_cycle() {
    let _guard = serial();
    // One design per category, sequential and combinational.
    for name in ["adder_8bit", "counter_12", "fifo_sync", "alu_8bit"] {
        let design = uvllm_designs::by_name(name).unwrap();
        // Prime process-wide caches (elaboration, compilation, pooled
        // instance) so both measured runs start from the same state.
        let (warm, _) = run_counted(design, 64);
        assert!(warm.all_passed(), "{name}: golden model must pass");
        let (short, short_allocs) = run_counted(design, 500);
        let (long, long_allocs) = run_counted(design, 2500);
        assert!(short.all_passed() && long.all_passed(), "{name}: runs must pass");
        assert_eq!(long.cycles, short.cycles + 2000, "{name}: cycle accounting");
        let delta = long_allocs.saturating_sub(short_allocs);
        assert!(
            delta < 64,
            "{name}: {delta} extra allocations across 2000 extra cycles \
             (steady state must be allocation-free; short run: {short_allocs}, \
             long run: {long_allocs})"
        );
    }
}

/// Pool reuse keeps even environment *construction* allocation-light:
/// the second checkout of the same text must not re-instantiate the
/// arena. (Coarse bound — the point is to catch re-instantiation, which
/// costs hundreds of allocations for elaboration-scale structures.)
#[test]
fn pooled_checkout_rewinds_instead_of_rebuilding() {
    let _guard = serial();
    let design = uvllm_designs::by_name("gray_counter_4").unwrap();
    // Unique text so this test owns the pool key.
    let code = format!("{}// alloc-test probe\n", design.source);
    let build = |_tag: &str| uvllm_sim::checkout_sim(&code, design.name).expect("builds");
    drop(build("prime")); // compile + first instance, parked on drop
    let before = allocations();
    let sim = build("reuse");
    let delta = allocations() - before;
    assert_eq!(sim.time(), 0);
    assert!(
        delta < 40,
        "{delta} allocations for a pooled re-checkout (expected a rewind, not a rebuild)"
    );
}
